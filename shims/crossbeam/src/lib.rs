//! Offline shim for `crossbeam`: an MPMC unbounded channel.
//!
//! The workspace uses `crossbeam::channel::{unbounded, Sender, Receiver}`
//! with cloneable receivers (work-stealing fan-out in the engine and the
//! galaxy farm bench). This shim reimplements exactly that surface on a
//! `Mutex<VecDeque>` + `Condvar`. Throughput is adequate for the token
//! rates the engine moves (thousands/s); the API and the disconnect
//! semantics match crossbeam's.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "channel empty"),
                TryRecvError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half; cloneable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a value; fails if all receivers were dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.ready.wait(st).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            if let Some(v) = st.queue.pop_front() {
                Ok(v)
            } else if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator until disconnect (mirrors crossbeam).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().expect("channel poisoned");
            st.receivers -= 1;
        }
    }

    /// Iterator over received values; ends at disconnect.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_unblocks_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            let h = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(h.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn send_fails_when_receivers_gone() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn cloned_receivers_share_the_queue() {
            let (tx, rx1) = unbounded();
            let rx2 = rx1.clone();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx1.recv().unwrap();
            let b = rx2.recv().unwrap();
            let mut got = [a, b];
            got.sort_unstable();
            assert_eq!(got, [1, 2]);
        }

        #[test]
        fn try_recv_reports_empty_and_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(9).unwrap();
            assert_eq!(rx.try_recv(), Ok(9));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn many_producers_many_consumers() {
            let (tx, rx) = unbounded::<u64>();
            let n_prod = 4;
            let per = 500;
            std::thread::scope(|s| {
                for p in 0..n_prod {
                    let tx = tx.clone();
                    s.spawn(move || {
                        for i in 0..per {
                            tx.send((p * per + i) as u64).unwrap();
                        }
                    });
                }
                drop(tx);
                let mut sums = Vec::new();
                for _ in 0..3 {
                    let rx = rx.clone();
                    sums.push(s.spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    }));
                }
                drop(rx);
                let total: u64 = sums.into_iter().map(|h| h.join().unwrap()).sum();
                let expect: u64 = (0..(n_prod * per) as u64).sum();
                assert_eq!(total, expect);
            });
        }
    }
}
