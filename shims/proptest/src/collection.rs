//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy yielding `Vec`s whose length is uniform in `len` and whose
/// elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.len.start < self.len.end, "empty length range");
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(element, lo..hi)`: a vector of `lo..hi` elements.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Just;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::deterministic("vec");
        let s = vec(Just(7u8), 1..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7));
        }
    }
}
