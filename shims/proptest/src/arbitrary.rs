//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_uint!(u8, u16, u32, u64, usize);

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: uniform over a wide symmetric span.
        (rng.uniform() - 0.5) * 2e12
    }
}

macro_rules! arb_tuple {
    ($($name:ident),+) => {
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    };
}

arb_tuple!(A);
arb_tuple!(A, B);
arb_tuple!(A, B, C);
arb_tuple!(A, B, C, D);

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::deterministic("any-u64");
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn tuple_arbitrary_composes() {
        let mut rng = TestRng::deterministic("any-tuple");
        let (i, b): (usize, u8) = any::<(usize, u8)>().generate(&mut rng);
        let _ = (i, b);
    }
}
