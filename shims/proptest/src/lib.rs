//! Offline shim for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate supplies the
//! slice of the proptest API the workspace's property tests consume:
//!
//! * the [`Strategy`] trait with `prop_map`, ranges, tuples, [`Just`] and
//!   simple regex-class string strategies;
//! * [`collection::vec`] and [`arbitrary`] (`any::<T>()`);
//! * the `proptest!`, `prop_assert!`, `prop_assert_eq!` and `prop_oneof!`
//!   macros.
//!
//! Differences from real proptest, deliberately accepted: no shrinking
//! (failures report the panicking case's assertion only), a fixed
//! deterministic seed per test function (reproducible across runs and
//! machines), and a fixed case count ([`test_runner::CASES`]).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run one property test: `CASES` deterministic cases of `body`, where the
/// body generates its own inputs from the provided RNG.
///
/// This is the engine behind the `proptest!` macro; kept public so the
/// macro expansion stays tiny.
pub fn run_property(test_name: &str, mut body: impl FnMut(&mut test_runner::TestRng)) {
    let mut rng = test_runner::TestRng::deterministic(test_name);
    for case in 0..test_runner::CASES {
        let mut case_rng = rng.split(case as u64);
        body(&mut case_rng);
    }
}

/// The `proptest! { ... }` macro: expands each contained function into a
/// `#[test]` that replays [`test_runner::CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    (
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_property(stringify!($name), |__proptest_rng| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        __proptest_rng,
                    );
                )*
                $body
            });
        }
        $crate::proptest! { $($rest)* }
    };
}

/// `prop_assert!`: assertion inside a property body. Without shrinking the
/// right behaviour is to fail the test immediately, so this is `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => {
        assert!($($tt)*)
    };
}

/// `prop_assert_eq!` — see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => {
        assert_eq!($($tt)*)
    };
}

/// `prop_assert_ne!` — see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => {
        assert_ne!($($tt)*)
    };
}

/// `prop_oneof![s1, s2, ...]`: uniform choice among strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn oneof_covers_all_arms(k in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1u8..=3).contains(&k));
        }

        #[test]
        fn tuples_and_maps_compose(
            pair in (0u32..10, 0u32..10),
            mapped in (1u16..5).prop_map(|v| v * 100),
        ) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
            prop_assert!((100..500).contains(&mapped));
            prop_assert_eq!(mapped % 100, 0);
        }

        #[test]
        fn regex_class_strategy(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut first = Vec::new();
        crate::run_property("stability", |rng| first.push(rng.next_u64()));
        let mut second = Vec::new();
        crate::run_property("stability", |rng| second.push(rng.next_u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), crate::test_runner::CASES);
    }
}
