//! The [`Strategy`] trait and built-in strategies.

use crate::test_runner::TestRng;
use std::ops::Range;

/// A recipe for generating values of one type.
///
/// Object-safe: combinators that consume `self` are `Sized`-gated so
/// `Box<dyn Strategy<Value = T>>` works (needed by `prop_oneof!`).
pub trait Strategy {
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.uniform()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.uniform() as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);

/// String-pattern strategies: `"..."` used directly as a strategy.
///
/// Real proptest compiles the full regex; this shim supports the shape the
/// workspace uses — a single character class with a bounded repetition,
/// `[<ranges/chars>]{lo,hi}` — plus plain literals (generated verbatim).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((chars, lo, hi)) => {
                assert!(!chars.is_empty(), "empty character class in {self:?}");
                let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                (0..len)
                    .map(|_| chars[rng.below(chars.len() as u64) as usize])
                    .collect()
            }
            None => {
                assert!(
                    !self.contains(['[', ']', '{', '}', '*', '+', '?', '\\']),
                    "unsupported regex strategy {self:?} (shim supports \
                     literals and `[class]{{lo,hi}}`)"
                );
                (*self).to_string()
            }
        }
    }
}

/// Parse `[<class>]{lo,hi}` into (expanded characters, lo, hi).
fn parse_class_repeat(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match reps.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = reps.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    // Expand `a-z` ranges; everything else is literal.
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_cover_endpoints_inclusively_exclusively() {
        let mut r = rng();
        let s = 0u8..3;
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut r) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn map_applies() {
        let mut r = rng();
        let s = (1u32..2).prop_map(|v| v * 7);
        assert_eq!(s.generate(&mut r), 7);
    }

    #[test]
    fn union_picks_each_arm() {
        let mut r = rng();
        let u = Union::new(vec![
            Box::new(Just(0u8)) as Box<dyn Strategy<Value = u8>>,
            Box::new(Just(1u8)),
        ]);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[u.generate(&mut r) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn printable_class_parses() {
        let (chars, lo, hi) = parse_class_repeat("[ -~]{0,40}").unwrap();
        assert_eq!(lo, 0);
        assert_eq!(hi, 40);
        assert_eq!(chars.len(), 95); // all printable ASCII
    }

    #[test]
    fn negative_f64_ranges() {
        let mut r = rng();
        let s = -5.0f64..-1.0;
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((-5.0..-1.0).contains(&v));
        }
    }
}
