//! Deterministic RNG for property generation.
//!
//! A self-contained PCG-XSH-RR 64/32 (the workspace cannot depend on
//! `netsim::Pcg32` here — netsim *dev-depends* on this crate). Seeds derive
//! from the test function's name, so every test's case sequence is stable
//! across runs, machines and test orderings.

/// Number of cases each `proptest!` test replays.
pub const CASES: usize = 64;

const MULT: u64 = 6364136223846793005;

/// Deterministic generator handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
    inc: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng::from_seed(h, 0x5851f42d4c957f2d)
    }

    fn from_seed(seed: u64, stream: u64) -> Self {
        let mut rng = TestRng {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        rng.next_u32();
        rng
    }

    /// Derive an independent per-case stream.
    pub fn split(&mut self, stream: u64) -> TestRng {
        let seed = self.next_u64();
        TestRng::from_seed(seed, stream.wrapping_mul(2).wrapping_add(1))
    }

    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    pub fn next_u64(&mut self) -> u64 {
        (self.next_u32() as u64) << 32 | self.next_u32() as u64
    }

    /// Uniform in [0, 1).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Unbiased uniform integer in [0, n).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "TestRng::below(0)");
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let m = (x as u128) * (n as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo >= n || lo >= n.wrapping_neg() % n {
                return hi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable_and_distinct() {
        let a1: Vec<u64> = {
            let mut r = TestRng::deterministic("alpha");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = TestRng::deterministic("alpha");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("beta");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn below_in_range() {
        let mut r = TestRng::deterministic("below");
        for n in [1u64, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(r.below(n) < n);
            }
        }
    }
}
