//! Offline shim for `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning, guard-returning API, implemented over `std::sync`.
//!
//! parking_lot's behavioural contract that callers here rely on is just
//! "lock() returns a guard, no Result". Poisoning is converted to a panic,
//! which matches parking_lot's semantics closely enough for this workspace
//! (a panicked writer is a bug either way).

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn lock(&self) -> StdMutexGuard<'_, T> {
        self.inner.lock().expect("mutex poisoned")
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("mutex poisoned")
    }
}

/// A readers-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn read(&self) -> StdReadGuard<'_, T> {
        self.inner.read().expect("rwlock poisoned")
    }

    pub fn write(&self) -> StdWriteGuard<'_, T> {
        self.inner.write().expect("rwlock poisoned")
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("rwlock poisoned")
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().expect("rwlock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
