//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` 0.8 it actually consumes: the
//! [`RngCore`] trait (implemented by `netsim::Pcg32`) and the [`Error`]
//! type appearing in `try_fill_bytes`. All randomness in the workspace is
//! produced by the in-tree PCG32; this crate only supplies the trait
//! vocabulary so downstream code stays source-compatible with real `rand`.

use std::fmt;

/// Error type mirroring `rand::Error` (only its public face).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core RNG abstraction, mirroring `rand::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counting(u32);
    impl RngCore for Counting {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(1);
            self.0
        }
        fn next_u64(&mut self) -> u64 {
            (self.next_u32() as u64) << 32 | self.next_u32() as u64
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(4) {
                let w = self.next_u32().to_le_bytes();
                chunk.copy_from_slice(&w[..chunk.len()]);
            }
        }
    }

    #[test]
    fn default_try_fill_delegates() {
        let mut r = Counting(0);
        let mut buf = [0u8; 7];
        r.try_fill_bytes(&mut buf).unwrap();
        assert!(buf.iter().any(|&b| b != 0));
    }
}
