//! Offline shim for `criterion`.
//!
//! Supplies the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!` — over
//! a simple wall-clock harness: per benchmark it warms up once, then times
//! a bounded batch of iterations and prints mean time per iteration (plus
//! throughput when declared).
//!
//! No statistics, no HTML reports, no outlier rejection: the point in this
//! offline environment is that `cargo bench` runs and prints comparable
//! numbers, and `cargo test` (which executes harness-less bench targets in
//! test mode) completes quickly. Passing `--test` (as libtest-style runners
//! do) limits every benchmark to a single iteration.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declared units of work per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark's identifier: function name plus a parameter.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// Passed to bench closures; `iter` runs and times the workload.
pub struct Bencher<'a> {
    iters: u64,
    elapsed: &'a mut Duration,
}

impl Bencher<'_> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        *self.elapsed = start.elapsed();
    }
}

/// The harness entry point.
pub struct Criterion {
    test_mode: bool,
    max_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            max_iters: 20,
        }
    }
}

impl Criterion {
    /// Accepted for source compatibility with criterion's generated main.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let iters = self.iters();
        run_one(name, None, iters, f);
        self
    }

    fn iters(&self) -> u64 {
        if self.test_mode {
            1
        } else {
            self.max_iters
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for compatibility; the shim's iteration count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, name.into());
        let iters = self.criterion.iters();
        run_one(&full, self.throughput, iters, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        let iters = self.criterion.iters();
        run_one(&full, self.throughput, iters, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(name: &str, tp: Option<Throughput>, iters: u64, mut f: F) {
    let mut elapsed = Duration::ZERO;
    let mut b = Bencher {
        iters,
        elapsed: &mut elapsed,
    };
    f(&mut b);
    let per_iter = elapsed.as_secs_f64() / iters.max(1) as f64;
    let rate = match tp {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("bench {name:<48} {:>12.3} µs/iter{rate}", per_iter * 1e6);
}

/// Collect bench functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            test_mode: true,
            max_iters: 20,
        };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        // warm-up + 1 timed iteration in test mode
        assert_eq!(ran, 2);
    }

    #[test]
    fn group_with_input_and_throughput() {
        let mut c = Criterion {
            test_mode: true,
            max_iters: 20,
        };
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(100));
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).name, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").name, "x");
    }
}
