//! Quickstart: the paper's Figure 1 network, end to end.
//!
//! Builds Wave → GaussianNoise → PowerSpectrum → AccumStat → Grapher,
//! runs it 1 and 20 iterations, and prints the Figure 2 observation: the
//! tone is buried in noise after one iteration and clearly visible after
//! twenty. Also round-trips the workflow through the XML task-graph
//! dialect (Code Segment 1).
//!
//! Run with: `cargo run --release --example quickstart`

use consumer_grid::core::data::TrianaData;
use consumer_grid::core::unit::Params;
use consumer_grid::core::{run_graph, EngineConfig, TaskGraph};
use consumer_grid::taskgraph_xml;
use consumer_grid::toolbox::signal::spectrum_snr;
use consumer_grid::toolbox::standard_registry;

const FREQ: f64 = 64.0;

fn main() {
    let reg = standard_registry();
    let mut g = TaskGraph::new("Figure1");
    let wave = g
        .add_task(
            &reg,
            "Wave",
            "wave",
            Params::from([
                ("freq".to_string(), FREQ.to_string()),
                ("amplitude".to_string(), "0.25".to_string()),
            ]),
        )
        .expect("add Wave");
    let noise = g
        .add_task(
            &reg,
            "GaussianNoise",
            "noise",
            Params::from([("sigma".to_string(), "2".to_string())]),
        )
        .expect("add GaussianNoise");
    let ps = g
        .add_task(&reg, "PowerSpectrum", "pspec", Params::new())
        .expect("add PowerSpectrum");
    let acc = g
        .add_task(&reg, "AccumStat", "accum", Params::new())
        .expect("add AccumStat");
    let grapher = g
        .add_task(&reg, "Grapher", "grapher", Params::new())
        .expect("add Grapher");
    g.connect(wave, 0, noise, 0).expect("wire");
    g.connect(noise, 0, ps, 0).expect("wire");
    g.connect(ps, 0, acc, 0).expect("wire");
    g.connect(acc, 0, grapher, 0).expect("wire");

    g.validate().expect("valid graph");
    g.typecheck(&reg).expect("well-typed graph");

    println!("Figure 1 network: wave -> noise -> pspec -> accum -> grapher\n");

    for iterations in [1usize, 20] {
        let result = run_graph(
            &g,
            &reg,
            &EngineConfig {
                iterations,
                threaded: true,
            },
        )
        .expect("run");
        if let Some(TrianaData::Spectrum { df_hz, power }) = result.last_of(&g, "grapher") {
            let snr = spectrum_snr(power, *df_hz, FREQ);
            println!(
                "after {iterations:>2} iteration(s): tone at {FREQ} Hz stands {snr:.1} sigma above the noise floor{}",
                if snr > 8.0 { "  <- clearly visible (Figure 2, right)" } else { "  <- buried (Figure 2, left)" }
            );
            // A small ASCII rendering of the spectrum around the tone.
            let k0 = (FREQ / df_hz) as usize;
            let lo = k0.saturating_sub(12);
            let hi = (k0 + 13).min(power.len());
            let max = power[lo..hi].iter().cloned().fold(0.0f64, f64::max);
            print!("    ");
            for p in &power[lo..hi] {
                let level = (p / max * 7.0) as usize;
                print!("{}", [" ", ".", ":", "-", "=", "+", "*", "#"][level.min(7)]);
            }
            println!("   (bins {lo}..{hi})\n");
        }
    }

    // Code Segment 1: the same workflow as an XML task graph.
    let xml = taskgraph_xml::to_xml(&g);
    println!(
        "task-graph XML ({} bytes — the paper's \"limited overhead\"):\n\n{}",
        xml.len(),
        xml
    );
    let back = taskgraph_xml::from_xml(&xml).expect("parse back");
    assert_eq!(back, g);
    println!("round-trip through the XML dialect: OK");
}
