//! The Consumer Grid end to end, at scale.
//!
//! Everything the paper describes, in one run: 200 consumer volunteers
//! (mixed CPUs, DSL/cable/modem links, screensaver-idle availability)
//! enrol by advertising over a rendezvous overlay; a Triana Controller
//! discovers capable peers, groups them into a virtual peer group, farms a
//! matched-filter workload out with 15-minute checkpoints and triple-
//! redundant voting, migrates interrupted jobs, meters every volunteer's
//! donated CPU into billing ledgers, and reports the aggregate.
//!
//! Run with: `cargo run --release --example consumer_grid_scale`

use consumer_grid::core::checkpoint::CheckpointPolicy;
use consumer_grid::core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use consumer_grid::core::grid::redundancy::{Behaviour, RedundancyConfig, Verdict, VotingFarm};
use consumer_grid::core::grid::service::{TrianaController, TrianaService};
use consumer_grid::core::grid::{GridWorld, WorkerId, WorkerSetup};
use consumer_grid::netsim::avail::AvailabilityModel;
use consumer_grid::netsim::{Duration, HostSpec, Pcg32, SimTime};
use consumer_grid::p2p::{CapabilityPredicate, DiscoveryMode, PeerGroup};
use consumer_grid::resources::trust::ResourcePolicy;
use consumer_grid::toolbox::inspiral::cost;

fn main() {
    let volunteers = 200;
    let horizon = SimTime::from_secs(4 * 86_400);
    let mut world = GridWorld::new(2003, DiscoveryMode::Rendezvous);

    // --- The controller (the science lab, LAN-connected).
    let (ctrl_peer, _) = world.add_peer(HostSpec::lan_workstation());
    println!("consumer grid: {volunteers} volunteers enrolling…");

    // --- Volunteers: consumer host mix, each running a Triana Service.
    let mut rng = Pcg32::new(42, 0);
    let mut services = Vec::new();
    for _ in 0..volunteers {
        let spec = HostSpec::sample_consumer(&mut rng);
        let (peer, _) = world.add_peer(spec);
        services.push(TrianaService::new(
            peer,
            &[],
            ResourcePolicy::sandbox_default(256),
        ));
    }
    let mut wiring = Pcg32::new(7, 1);
    world.p2p.wire_random(4, &mut wiring);
    let n_rdv = (volunteers as f64).sqrt() as usize;
    world.p2p.assign_rendezvous(n_rdv, &mut wiring);
    for s in &services {
        s.advertise(&mut world, Duration::from_secs(7 * 86_400));
    }

    // --- A virtual peer group of capable machines (§3.7).
    let mut fast_group = PeerGroup::new(
        "inspiral-workers",
        CapabilityPredicate {
            min_cpu_ghz: 1.5,
            min_ram_mib: 128,
        },
    );
    let mut grouped = 0;
    for s in &services {
        if fast_group.enroll(
            &mut world.sim,
            &mut world.net,
            &mut world.p2p,
            s.peer,
            Duration::from_secs(7 * 86_400),
        ) {
            grouped += 1;
        }
    }
    println!("  virtual peer group `inspiral-workers`: {grouped}/{volunteers} qualify (>=1.5 GHz)");

    // --- Discovery: the controller finds group members over the overlay.
    let ctl = TrianaController::new(ctrl_peer, "gw-search");
    let q = ctl.discover(&mut world, fast_group.membership_query(), 8);
    ctl.drain(&mut world);
    let discovered = world.p2p.queries[&q].providers();
    let msgs = world.p2p.queries[&q].messages;
    println!(
        "  rendezvous discovery found {} providers with {} messages\n",
        discovered.len(),
        msgs
    );

    // --- Enrol the first 60 discovered peers as farm workers.
    let mut farm = FarmScheduler::new(
        &world,
        ctrl_peer,
        FarmConfig {
            checkpoint: Some(CheckpointPolicy::every(Duration::from_secs(900), 2 << 20)),
            swarm: None,
            trust: None,
        },
    );
    let pool: Vec<_> = discovered.into_iter().take(60).collect();
    let mut behaviours = Vec::new();
    let mut avail_rng = Pcg32::new(9, 2);
    for (i, &peer) in pool.iter().enumerate() {
        let spec = world.net.spec(world.p2p.host_of(peer)).clone();
        let trace =
            AvailabilityModel::typical_volunteer().trace(horizon, &mut avail_rng.split(i as u64));
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace,
                cache_bytes: 8 << 20,
            },
        );
        // A small fraction of volunteers return bad results.
        behaviours.push(if i % 17 == 0 {
            Behaviour::Cheater { cheat_prob: 0.7 }
        } else {
            Behaviour::Honest
        });
    }
    let n_cheaters = behaviours
        .iter()
        .filter(|b| matches!(b, Behaviour::Cheater { .. }))
        .count();
    println!(
        "farming 24 work units x3 replicas over {} volunteers ({} of them dishonest)…",
        pool.len(),
        n_cheaters
    );

    // --- The workload: scaled-down inspiral chunks, triple-redundant.
    let mut voting = VotingFarm::new(RedundancyConfig::triple(), behaviours, 99);
    for _ in 0..24 {
        voting.submit_unit(
            &mut farm,
            &mut world,
            JobSpec {
                work_gigacycles: cost::chunk_work_gigacycles(2_000), // ~2 h at 2 GHz
                input_bytes: cost::CHUNK_BYTES / 10,
                output_bytes: 10_000,
                module: None,
            },
        );
    }
    world.sim.set_horizon(horizon);
    run_farm(&mut world, &mut farm);

    // --- Voting + reputation.
    let (verdicts, reps) = voting.tally(&farm);
    let accepted = verdicts
        .iter()
        .filter(|v| matches!(v, Verdict::Accepted { .. }))
        .count();
    let caught: usize = verdicts
        .iter()
        .filter_map(|v| match v {
            Verdict::Accepted { dissenters } => Some(dissenters.len()),
            _ => None,
        })
        .sum();
    println!("\nresults:");
    let s = farm.stats();
    println!(
        "  {}/{} replica jobs completed; makespan {:.1} h; wasted {:.1} h CPU to churn; {} migrations",
        s.jobs_done,
        s.jobs_total,
        s.makespan.as_secs_f64() / 3600.0,
        s.wasted.as_secs_f64() / 3600.0,
        s.attempts - s.jobs_total,
    );
    println!("  {accepted}/24 units accepted by majority vote; {caught} bad replicas outvoted");
    let mut flagged: Vec<(WorkerId, f64)> = reps
        .iter()
        .filter(|(_, r)| r.score() < 0.9 && r.dissented > 0)
        .map(|(&w, r)| (w, r.score()))
        .collect();
    flagged.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores"));
    println!("  volunteers flagged by reputation: {flagged:?}");

    // --- Billing: donated CPU per volunteer.
    let billed = farm.total_billed_cpu();
    println!(
        "  billed to account `{}`: {:.1} h of donated CPU across the pool",
        farm.account.0,
        billed.as_secs_f64() / 3600.0
    );
    let top: Vec<(u32, f64)> = (0..pool.len() as u32)
        .map(|w| {
            (
                w,
                farm.worker_ledger(WorkerId(w)).total_cpu().as_secs_f64() / 3600.0,
            )
        })
        .filter(|(_, h)| *h > 0.0)
        .collect();
    let donors = top.len();
    let max_donor = top
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite hours"));
    println!(
        "  {donors} volunteers actually donated; top donor gave {:.1} h",
        max_donor.map(|(_, h)| h).unwrap_or(0.0)
    );
    println!("\n\"anybody can make their spare CPU cycles available\" — §2");
}
