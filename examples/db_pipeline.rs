//! Case 3 (§3.6.3): database access through discovered services.
//!
//! Providers advertise the four service types over the P2P overlay
//! (data-access, data-manipulate, data-visualise, data-verify); a Triana
//! Controller discovers each in turn, binds one provider per stage, and
//! then executes the pipeline over a synthetic astronomy catalogue.
//!
//! Run with: `cargo run --release --example db_pipeline`

use consumer_grid::core::data::TrianaData;
use consumer_grid::core::grid::service::{Selection, TrianaController, TrianaService};
use consumer_grid::core::grid::GridWorld;
use consumer_grid::core::unit::Params;
use consumer_grid::core::{run_graph, EngineConfig, TaskGraph};
use consumer_grid::netsim::{Duration, HostSpec, Pcg32};
use consumer_grid::p2p::DiscoveryMode;
use consumer_grid::resources::trust::ResourcePolicy;
use consumer_grid::toolbox::db::{sample_catalogue, TableStore};
use consumer_grid::toolbox::registry::standard_registry_with_store;

const SERVICES: [&str; 4] = [
    "data-access",
    "data-manipulate",
    "data-visualise",
    "data-verify",
];

fn main() {
    // --- A small consumer grid with two providers per service type.
    let mut world = GridWorld::new(2003, DiscoveryMode::Flooding);
    let (ctl_peer, _) = world.add_peer(HostSpec::lan_workstation());
    let mut providers = Vec::new();
    for kind in SERVICES {
        for _ in 0..2 {
            let (p, _) = world.add_peer(HostSpec::reference_pc());
            providers.push(TrianaService::new(
                p,
                &[kind],
                ResourcePolicy::sandbox_default(256),
            ));
        }
    }
    let mut rng = Pcg32::new(5, 1);
    world.p2p.wire_random(3, &mut rng);
    for s in &providers {
        s.advertise(&mut world, Duration::from_secs(24 * 3600));
    }

    // --- Discover and bind one provider per stage.
    let ctl = TrianaController::new(ctl_peer, "astronomer");
    let t0 = world.now();
    let bound = ctl
        .bind_service_pipeline(&mut world, &SERVICES, Selection::FirstHit, 8)
        .expect("all services discoverable");
    println!("service binding over the overlay:");
    for (kind, peer) in SERVICES.iter().zip(&bound) {
        println!("  {kind:<16} -> peer {peer}");
    }
    println!(
        "  bound in {:.1} ms of simulated time, {} overlay messages\n",
        world.now().since(t0).as_secs_f64() * 1e3,
        world.net.stats().messages
    );

    // --- Execute the pipeline on a 1 000-row synthetic catalogue.
    let store = TableStore::new();
    store.put("catalogue", sample_catalogue(1_000, 7));
    let reg = standard_registry_with_store(store);
    let mut g = TaskGraph::new("Case3");
    let access = g
        .add_task(
            &reg,
            "DataAccess",
            "access",
            Params::from([("table".to_string(), "catalogue".to_string())]),
        )
        .expect("build");
    let manip = g
        .add_task(
            &reg,
            "DataManipulate",
            "manip",
            Params::from([
                ("op".to_string(), "filter".to_string()),
                ("col".to_string(), "redshift".to_string()),
                ("max".to_string(), "0.3".to_string()),
            ]),
        )
        .expect("build");
    let vis = g
        .add_task(
            &reg,
            "DataVisualise",
            "vis",
            Params::from([
                ("col".to_string(), "magnitude".to_string()),
                ("bins".to_string(), "24".to_string()),
            ]),
        )
        .expect("build");
    let verify = g
        .add_task(&reg, "DataVerify", "verify", Params::new())
        .expect("build");
    g.connect(access, 0, manip, 0).expect("wire");
    g.connect(manip, 0, vis, 0).expect("wire");
    g.connect(manip, 0, verify, 0).expect("wire");
    let r = run_graph(
        &g,
        &reg,
        &EngineConfig {
            iterations: 1,
            threaded: true,
        },
    )
    .expect("pipeline executes");

    println!("pipeline: access(catalogue) -> filter(redshift <= 0.3) -> visualise + verify\n");
    if let Some(TrianaData::ImageFrame { pixels, .. }) = r.last_of(&g, "vis") {
        let max = pixels.iter().cloned().fold(0.0f64, f64::max).max(1.0);
        println!("magnitude histogram of the nearby (z <= 0.3) sample:");
        for (i, p) in pixels.iter().enumerate() {
            let bar = "#".repeat((p / max * 40.0) as usize);
            println!("  bin {i:>2} | {bar} {p:.0}");
        }
        println!();
    }
    if let Some(TrianaData::Text(report)) = r.last_of(&g, "verify") {
        println!("verification service: {report}");
    }
}
