//! Case 2 (§3.6.2): the inspiral search for coalescing binaries on the
//! Consumer Grid.
//!
//! Part 1 runs the *real* matched filter on a scaled-down synthetic chunk:
//! a chirp is injected into Gaussian noise and recovered by template,
//! offset, and SNR. Part 2 reproduces the paper's capacity arithmetic
//! (5 h/chunk on a 2 GHz PC ⇒ 20 PCs for real time) and then simulates the
//! streaming search on churny volunteers with checkpointing, showing how
//! many consumer PCs are really needed.
//!
//! Run with: `cargo run --release --example inspiral_search`

use consumer_grid::netsim::Pcg32;
use consumer_grid::toolbox::inspiral::{cost, inject_chirp, search, TemplateBank};
use consumer_grid_bench::e04_inspiral_realtime as e4;

fn main() {
    // --- Part 1: the real matched filter on a synthetic GEO600-like chunk.
    let rate = 256.0; // scaled-down stand-in for the paper's 2 kHz band
    let bank = TemplateBank::generate(32, 1.0, 4.0, 16.0, rate);
    let mut rng = Pcg32::new(2003, 0);
    let true_template = 21;
    let true_offset = 5_000;
    let chunk = inject_chirp(
        32_768,
        &bank.templates[true_template],
        14.0,
        true_offset,
        &mut rng,
    );
    println!(
        "matched-filter search: {} templates x {} samples ({}s at {} Hz)",
        bank.len(),
        chunk.len(),
        chunk.len() as f64 / rate,
        rate
    );
    let det = search(&chunk, &bank).expect("search ran");
    println!(
        "  injected: template {true_template} (tau={:.2}s) at offset {true_offset}",
        bank.templates[true_template].tau
    );
    println!(
        "  detected: template {} (tau={:.2}s) at offset {} with SNR {:.1}\n",
        det.template, bank.templates[det.template].tau, det.offset, det.snr
    );

    // --- Part 2: the paper's capacity arithmetic.
    println!("paper arithmetic (2 GHz reference PC):");
    for &templates in &[5_000usize, 7_500, 10_000] {
        println!(
            "  {:>6} templates: {:>5.1} h per 900 s chunk  ->  {:>4.0} PCs for real time",
            templates,
            cost::chunk_work_gigacycles(templates) / 2.0 / 3600.0,
            cost::pcs_for_real_time(templates, 2.0)
        );
    }
    println!("  (paper: \"about 5 hours on a 2 GHz PC … 20 PC's would need to be employed\")\n");

    // --- Part 3: the Consumer Grid simulation with churn.
    println!("streaming simulation: 30 chunks, 5 000 templates, 15-min checkpoints");
    println!(
        "{:>13}  {:>8}  {:>10}  {:>9}",
        "availability", "min PCs", "max lag h", "wasted h"
    );
    for o in e4::min_workers_series(&[1.0, 0.8, 0.6], 30) {
        println!(
            "{:>13.2}  {:>8}  {:>10.2}  {:>9.1}",
            o.availability,
            o.workers,
            o.max_latency_s / 3600.0,
            o.wasted_hours
        );
    }
    println!(
        "\n\"the number of PCs would need to be increased due to various types of\n\
         downtime … since it is a massively parallel problem we believe it can be\n\
         solved within such an environment\" — §3.6.2"
    );
}
