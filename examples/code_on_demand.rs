//! §3.3: dynamic, on-demand code download — the Consumer Grid's answer to
//! "inconsistent versions of executables" and resource-constrained devices.
//!
//! A user writes a unit in TVM assembly; it is assembled to a content-hashed
//! blob, published in the controller's module library, and shipped to a
//! volunteer peer the first time a job needs it. The peer runs it in the
//! sandbox (with metering for billing), caches it under LRU, and — when the
//! owner republishes a new version — transparently fetches the update.
//! A hostile module is shown being killed by the instruction budget.
//!
//! Run with: `cargo run --release --example code_on_demand`

use consumer_grid::core::data::TrianaData;
use consumer_grid::core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec, SwarmConfig};
use consumer_grid::core::grid::{GridWorld, WorkerSetup};
use consumer_grid::core::modules::ModuleKey;
use consumer_grid::core::unit::Unit;
use consumer_grid::netsim::avail::AvailabilityTrace;
use consumer_grid::netsim::{HostSpec, SimTime};
use consumer_grid::p2p::DiscoveryMode;
use consumer_grid::toolbox::tvm_unit::TvmUnit;
use consumer_grid::tvm::asm::assemble;
use consumer_grid::tvm::SandboxPolicy;

const SMOOTHER: &str = r#"
; 3-point moving average: y[i] = (x[i-1] + x[i] + x[i+1]) / 3
.module Smoother 1 1 1
.func main 2
    inlen 0
    store 0
    push 1
    store 1            ; i = 1
loop:
    load 1
    load 0
    push 1
    sub
    lt                 ; i < len-1 ?
    jz end
    load 1
    push 1
    sub
    inget 0
    load 1
    inget 0
    add
    load 1
    push 1
    add
    inget 0
    add
    push 3
    div
    outpush 0
    load 1
    push 1
    add
    store 1
    jmp loop
end:
    halt
"#;

const HOSTILE: &str = r#"
; a malicious module: spins forever trying to burn the host's CPU
.module CpuBurner 1 0 0
.func main 0
spin:
    jmp spin
"#;

fn main() {
    // --- 1. Assemble user code into a transferable, content-hashed blob.
    let module = assemble(SMOOTHER).expect("assembles");
    let blob = module.to_blob();
    println!(
        "assembled `Smoother`: {} instructions, {} bytes on the wire, hash {:016x}",
        module.instruction_count(),
        blob.len(),
        blob.hash
    );

    // --- 2. Execute it locally as a Triana unit under the sandbox.
    let mut unit = TvmUnit::from_blob(&blob, SandboxPolicy::standard()).expect("admitted");
    let input = TrianaData::SampleSet {
        rate_hz: 10.0,
        samples: vec![0.0, 3.0, 0.0, 3.0, 0.0, 3.0],
    };
    let out = unit.process(vec![input]).expect("runs");
    if let TrianaData::SampleSet { samples, .. } = &out[0] {
        println!("smoothed [0,3,0,3,0,3] -> {samples:?}");
    }
    println!(
        "metered for billing: {} TVM instructions\n",
        unit.last_stats.instructions
    );

    // --- 3. The sandbox kills hostile code.
    let hostile = assemble(HOSTILE).expect("assembles");
    let mut burner = TvmUnit::from_blob(
        &hostile.to_blob(),
        SandboxPolicy {
            max_instructions: 1_000_000,
            ..SandboxPolicy::standard()
        },
    )
    .expect("admitted");
    match burner.process(vec![]) {
        Err(e) => println!("hostile `CpuBurner` stopped by the sandbox: {e}\n"),
        Ok(_) => unreachable!("the burner never halts"),
    }

    // --- 4. On-demand distribution over the grid, with a version bump.
    let mut world = GridWorld::new(33, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
    let horizon = SimTime::from_secs(100_000);
    let spec = HostSpec::reference_pc();
    let (peer, _) = world.add_peer(spec.clone());
    let wid = farm.add_worker(
        &mut world,
        WorkerSetup {
            peer,
            spec,
            trace: AvailabilityTrace::always(horizon),
            cache_bytes: 1 << 20,
        },
    );
    let v1 = ModuleKey::new("Smoother", 1);
    farm.library.publish(v1.clone(), blob.clone());
    let job = |key: ModuleKey| JobSpec {
        work_gigacycles: 1.0,
        input_bytes: 10_000,
        output_bytes: 10_000,
        module: Some(key),
    };
    for _ in 0..3 {
        farm.submit(&mut world, job(v1.clone()));
    }
    run_farm(&mut world, &mut farm);
    let s = farm.worker_cache_stats(wid);
    println!(
        "3 jobs needing Smoother v1: {} download(s) of {} B (then {} cache hits)",
        s.misses, s.bytes_fetched, s.hits
    );

    // Republish as v2: the next job re-fetches exactly once.
    let v2 = ModuleKey::new("Smoother", 2);
    farm.library.publish(v2.clone(), blob.clone());
    farm.submit(&mut world, job(v2));
    run_farm(&mut world, &mut farm);
    let s2 = farm.worker_cache_stats(wid);
    println!(
        "after republishing v2, one more job: {} total download(s) — \"overcomes the\n\
         problem of having inconsistent versions of executables\" (§3.3)\n",
        s2.misses
    );

    // --- 5. Peer-assisted (swarm) distribution: the module is content-
    // addressed and chunked; workers that hold it advertise as providers,
    // and later workers pull chunks from them instead of the controller.
    let mut world = GridWorld::new(34, DiscoveryMode::Flooding);
    let obs = consumer_grid::obs::Obs::enabled();
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(
        &world,
        ctrl,
        FarmConfig {
            checkpoint: None,
            swarm: Some(SwarmConfig {
                chunk_bytes: 512,
                ..SwarmConfig::default()
            }),
            trust: None,
        },
    );
    farm.set_obs(obs.clone());
    for _ in 0..4 {
        let spec = HostSpec::lan_workstation();
        let (peer, _) = world.add_peer(spec.clone());
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 1 << 20,
            },
        );
    }
    let mut rng = consumer_grid::netsim::Pcg32::new(34, 1);
    world.p2p.wire_random(3, &mut rng);
    farm.library.publish(v1.clone(), blob.clone());
    // One long job per worker, staggered so each lands on a fresh worker
    // after the previous one has been seeded.
    farm.chunk_spec = Some(JobSpec {
        work_gigacycles: 2000.0,
        ..job(v1)
    });
    farm.schedule_chunks(
        &mut world.sim,
        consumer_grid::netsim::Duration::from_secs(30),
        4,
    );
    run_farm(&mut world, &mut farm);
    let reg = obs.registry().expect("enabled");
    println!(
        "swarm distribution to 4 workers: controller uplink shipped {} B (one seed copy);\n\
         peers exchanged {} B in 512 B chunks; {} reassembled blob(s) passed hash\n\
         verification before entering a module cache",
        reg.counter_value("farm.module_bytes_sent"),
        reg.counter_value("store.bytes_from_peers"),
        reg.counter_value("store.blobs_verified"),
    );
}
