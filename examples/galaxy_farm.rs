//! Case 1 (§3.6.1): farm galaxy-formation animation frames across a
//! simulated LAN of Triana peers — the All Hands Meeting demo.
//!
//! Generates synthetic merger snapshots, renders one frame locally with
//! the real SPH column-density renderer, then farms all frames over 1, 2,
//! 4 and 8 simulated workstation peers under the `parallel` distribution
//! policy and reports the speedup.
//!
//! Run with: `cargo run --release --example galaxy_farm`

use consumer_grid::core::data::TrianaData;
use consumer_grid::core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use consumer_grid::core::grid::{GridWorld, WorkerSetup};
use consumer_grid::core::unit::Unit;
use consumer_grid::netsim::avail::AvailabilityTrace;
use consumer_grid::netsim::{HostSpec, SimTime};
use consumer_grid::p2p::DiscoveryMode;
use consumer_grid::toolbox::galaxy::{
    render_column_density, synthesize_snapshots, RenderFrame, View,
};

fn main() {
    let frames = 24;
    let particles_per_cluster = 10_000;
    println!(
        "Case 1: {frames} frames of a {}-particle galaxy merger\n",
        2 * particles_per_cluster
    );

    // Render the first and last frame locally to show the science output.
    let snaps = synthesize_snapshots(frames, particles_per_cluster, 42);
    let view = View {
        pixels: 40,
        ..View::default()
    };
    for (label, idx) in [
        ("t=0 (separated clusters)", 0),
        ("t=1 (merged)", frames - 1),
    ] {
        let (w, _, img) = render_column_density(&snaps[idx], &view);
        println!("{label}:");
        let max = img.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
        for row in img.chunks(w as usize).step_by(2) {
            print!("    ");
            for p in row {
                let l = (p / max * 7.0).sqrt() * 3.0;
                print!(
                    "{}",
                    [" ", ".", ":", "-", "=", "+", "*", "#"][(l as usize).min(7)]
                );
            }
            println!();
        }
        println!();
    }

    // Job shape: real sizes and calibrated per-frame work.
    let render_view = View {
        pixels: 512,
        ..View::default()
    };
    let frame_token = TrianaData::Particles(snaps[0].clone());
    let work = RenderFrame { view: render_view }.work_estimate(std::slice::from_ref(&frame_token));
    let image_bytes = TrianaData::ImageFrame {
        width: 512,
        height: 512,
        pixels: vec![0.0; 512 * 512],
    }
    .wire_size();
    println!(
        "per frame: {:.2} gigacycles of SPH work, {} B in, {} B out\n",
        work,
        frame_token.wire_size(),
        image_bytes
    );

    println!("farming over simulated LAN peers (parallel policy):");
    println!(
        "{:>6}  {:>11}  {:>8}  {:>10}",
        "peers", "makespan s", "speedup", "efficiency"
    );
    let mut base = None;
    for k in [1usize, 2, 4, 8] {
        let mut world = GridWorld::new(7 + k as u64, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
        let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
        let horizon = SimTime::from_secs(100_000);
        for _ in 0..k {
            let spec = HostSpec::lan_workstation();
            let (peer, _) = world.add_peer(spec.clone());
            farm.add_worker(
                &mut world,
                WorkerSetup {
                    peer,
                    spec,
                    trace: AvailabilityTrace::always(horizon),
                    cache_bytes: 16 << 20,
                },
            );
        }
        for _ in 0..frames {
            farm.submit(
                &mut world,
                JobSpec {
                    work_gigacycles: work,
                    input_bytes: frame_token.wire_size(),
                    output_bytes: image_bytes,
                    module: None,
                },
            );
        }
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let makespan = farm.stats().makespan.as_secs_f64();
        let b = *base.get_or_insert(makespan);
        println!(
            "{:>6}  {:>11.1}  {:>8.2}  {:>10.2}",
            k,
            makespan,
            b / makespan,
            b / makespan / k as f64
        );
    }
    println!(
        "\n\"the user can visualise the galaxy formation in a fraction of the time\" — §3.6.1"
    );
}
