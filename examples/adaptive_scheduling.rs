//! §3.7: from static adverts to learned behaviour — peer profiling,
//! straggler speculation, and the blacklist, end to end.
//!
//! The controller of the paper knows only what a volunteer *advertises*
//! ("machine type, speed, memory"). This example builds a small consumer
//! grid where two volunteers advertise 3 GHz, deliver half of it, and
//! churn away every ten simulated minutes — then runs the same streamed
//! workload under the legacy first-idle policy and under the
//! reliability-weighted policy fed by `triana-trust` peer profiles, and
//! prints what the profiles learned. A cheating volunteer is voted down
//! until the blacklist floor removes it from dispatch.
//!
//! Run with: `cargo run --release --example adaptive_scheduling`

use consumer_grid::core::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use consumer_grid::core::grid::{GridWorld, WorkerId, WorkerSetup};
use consumer_grid::netsim::avail::{AvailabilityModel, AvailabilityTrace};
use consumer_grid::netsim::{Duration, HostSpec, SimTime};
use consumer_grid::p2p::DiscoveryMode;
use consumer_grid::trust::{GridTrustConfig, PolicyHandle};

const SEED: u64 = 0xADA;
const BRAGGARTS: u32 = 2;
const WORKERS: u32 = 6;

/// Build the world and farm, stream 30 chunks through it, return the farm.
fn run_policy(policy: PolicyHandle) -> FarmScheduler {
    let horizon = SimTime::from_secs(100_000);
    let mut world = GridWorld::new(SEED, DiscoveryMode::Flooding);
    let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
    let mut farm = FarmScheduler::new(
        &world,
        ctrl,
        FarmConfig {
            // The full bundle (straggler speculation + blacklist floor),
            // with the policy under comparison swapped in.
            trust: Some(GridTrustConfig::adaptive().with_policy(policy)),
            ..FarmConfig::default()
        },
    );
    let mut rng = world.sim.stream(0xC0FFEE);
    for i in 0..WORKERS {
        let mut spec = HostSpec::lan_workstation();
        let (ghz, eff, trace) = if i < BRAGGARTS {
            // Advertise 3 GHz, deliver 1.5, walk away every ~10 min.
            let model = AvailabilityModel::Exponential {
                mean_up: Duration::from_secs(600),
                mean_down: Duration::from_secs(300),
            };
            (3.0, 0.5, model.trace(horizon, &mut rng))
        } else {
            (2.0, 1.0, AvailabilityTrace::always(horizon))
        };
        spec.cpu_ghz = ghz;
        let (peer, _) = world.add_peer(spec.clone());
        let wid = farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace,
                cache_bytes: 1 << 20,
            },
        );
        farm.set_worker_efficiency(wid, eff);
    }
    farm.chunk_spec = Some(JobSpec {
        work_gigacycles: 150.0, // 75 s delivered on an honest 2 GHz peer
        input_bytes: 100_000,
        output_bytes: 10_000,
        module: None,
    });
    farm.schedule_chunks(&mut world.sim, Duration::from_secs(60), 30);
    run_farm(&mut world, &mut farm);
    farm
}

fn main() {
    println!("== Same workload, two policies ==\n");
    let mut header = true;
    for policy in [
        PolicyHandle::first_idle(),
        PolicyHandle::reliability_weighted(),
    ] {
        let name = policy.name();
        let farm = run_policy(policy);
        let s = farm.stats();
        if header {
            println!(
                "{:<22} {:>8} {:>10} {:>10} {:>10} {:>6}",
                "policy", "jobs", "mean lat s", "wasted s", "spec wins", "migr"
            );
            header = false;
        }
        println!(
            "{:<22} {:>8} {:>10.1} {:>10.1} {:>10} {:>6}",
            name,
            s.jobs_done,
            s.total_latency.as_secs_f64() / s.jobs_done as f64,
            s.wasted.as_secs_f64(),
            s.spec_wins,
            s.attempts - s.jobs_done,
        );
    }

    println!("\n== What the profiles learned (reliability-weighted run) ==\n");
    let farm = run_policy(PolicyHandle::reliability_weighted());
    println!(
        "{:<8} {:>9} {:>12} {:>7} {:>9} {:>6} {:>7}",
        "worker", "advert", "learned GHz", "avail", "trust", "jobs", "lost"
    );
    for w in 0..WORKERS {
        let p = farm.profiles().get(w);
        let learned = if p.runtime_observed() {
            // expected_runtime(1 Gc) is learned seconds-per-gigacycle.
            format!("{:.2}", 1.0 / p.expected_runtime(1.0).as_secs_f64())
        } else {
            "-".into()
        };
        println!(
            "{:<8} {:>7.1}GHz {:>12} {:>7.2} {:>9.2} {:>6} {:>7}",
            format!("w{w}"),
            if w < BRAGGARTS { 3.0 } else { 2.0 },
            learned,
            farm.profiles().availability(w),
            farm.profiles().trust(w),
            p.completions,
            p.abandons,
        );
    }
    println!(
        "\nThe braggarts advertised 3 GHz; the profiles pinned their delivered\n\
         clock near 1.5 GHz and their availability near 2/3, so the policy\n\
         routes work to the honest 2 GHz peers instead."
    );

    println!("\n== Voting a cheater out ==\n");
    let mut farm = run_policy(PolicyHandle::reliability_weighted());
    // w4 ran nothing above: it starts at the neutral 0.5 with zero
    // accumulated goodwill to spend.
    let cheater = WorkerId(4);
    for round in 1..=5u32 {
        farm.record_vote(cheater, false);
        println!(
            "dissent {round}: trust(w4) = {:.3}  blacklisted = {}",
            farm.profiles().trust(cheater.0),
            farm.worker_blacklisted(cheater),
        );
    }
    println!(
        "\nEach dissenting replica vote costs 4x the evidence of a completion.\n\
         The floor (trust < 0.25) needs at least 4 observations before it\n\
         condemns anyone; from then on the worker receives no jobs at all."
    );
}
