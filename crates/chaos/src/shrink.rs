//! Plan shrinking: reduce a failing fault plan to a minimal reproducer.
//!
//! Two passes run to a fixpoint. First a ddmin-style structural pass
//! removes contiguous chunks of events, largest chunks first, keeping any
//! removal that still fails. Then a weakening pass replaces each surviving
//! event with a strictly weaker version (see [`FaultEvent::weaken`]) while
//! the plan keeps failing. The predicate is re-run on every candidate, so
//! the result is 1-minimal: deleting any single remaining event, or
//! weakening any remaining event one more notch, makes the failure vanish.

use crate::plan::FaultPlan;

/// Shrink `plan` against `fails` (returns `true` while the failure still
/// reproduces). `fails(plan)` must be deterministic; the original plan is
/// assumed to fail.
pub fn shrink_plan(plan: &FaultPlan, mut fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut cur = plan.clone();
    loop {
        let before = cur.clone();
        cur = remove_chunks(cur, &mut fails);
        cur = weaken_events(cur, &mut fails);
        if cur == before {
            return cur;
        }
    }
}

/// ddmin-style pass: try dropping contiguous chunks, halving the chunk
/// size whenever no chunk of the current size can be removed.
fn remove_chunks(mut plan: FaultPlan, fails: &mut impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    let mut chunk = plan.len().max(1);
    while chunk >= 1 && !plan.is_empty() {
        let mut removed_any = false;
        let mut start = 0;
        while start < plan.len() {
            let end = (start + chunk).min(plan.len());
            let mut candidate = plan.clone();
            candidate.events.drain(start..end);
            if fails(&candidate) {
                plan = candidate;
                removed_any = true;
                // Same `start` now points at the next chunk.
            } else {
                start = end;
            }
        }
        if !removed_any {
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        } else {
            chunk = chunk.min(plan.len().max(1));
        }
    }
    plan
}

/// Weakening pass: repeatedly weaken individual events while the plan
/// still fails, so the reproducer carries the mildest intensities that
/// trigger the bug.
fn weaken_events(mut plan: FaultPlan, fails: &mut impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    loop {
        let mut progressed = false;
        for i in 0..plan.len() {
            while let Some(weaker) = plan.events[i].weaken() {
                let mut candidate = plan.clone();
                candidate.events[i] = weaker.clone();
                if fails(&candidate) {
                    plan.events[i] = weaker;
                    progressed = true;
                } else {
                    break;
                }
            }
        }
        if !progressed {
            return plan;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultEvent, FaultKind};

    fn ev(at_ms: u64, kind: FaultKind) -> FaultEvent {
        FaultEvent { at_ms, kind }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        // "Fails" iff the plan still contains the crash of worker 2.
        let plan = FaultPlan {
            events: vec![
                ev(100, FaultKind::Lie { worker: 0 }),
                ev(200, FaultKind::Drop { pct: 50, secs: 5 }),
                ev(300, FaultKind::Crash { worker: 2 }),
                ev(400, FaultKind::Skew { worker: 1, pct: 30 }),
                ev(500, FaultKind::Restart { worker: 2 }),
            ],
        };
        let culprit = |p: &FaultPlan| {
            p.events
                .iter()
                .any(|e| e.kind == FaultKind::Crash { worker: 2 })
        };
        let min = shrink_plan(&plan, culprit);
        assert_eq!(min.len(), 1);
        assert_eq!(min.events[0].kind, FaultKind::Crash { worker: 2 });
    }

    #[test]
    fn weakens_intensities_to_the_threshold() {
        // "Fails" while the drop percentage is at least 20.
        let plan = FaultPlan {
            events: vec![ev(0, FaultKind::Drop { pct: 80, secs: 8 })],
        };
        let min = shrink_plan(&plan, |p| {
            p.events
                .iter()
                .any(|e| matches!(e.kind, FaultKind::Drop { pct, .. } if pct >= 20))
        });
        assert_eq!(min.len(), 1);
        let FaultKind::Drop { pct, .. } = min.events[0].kind else {
            panic!("kind changed during shrink");
        };
        assert!((20..40).contains(&pct), "pct={pct} not minimal");
    }

    #[test]
    fn shrink_is_deterministic() {
        let plan = FaultPlan::generate(99, 5, 60_000);
        let pred = |p: &FaultPlan| p.len() >= 2;
        let a = shrink_plan(&plan, pred);
        let b = shrink_plan(&plan, pred);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }
}
