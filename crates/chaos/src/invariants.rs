//! Cross-layer invariants a correct grid must uphold *under any plan the
//! generator can produce* — the oracle side of the harness.
//!
//! Each check runs after the world drains and returns the violations it
//! found. The identities lean on the observability counters, which makes
//! them double as a consistency audit of the obs layer itself: a counter
//! that drifts from the scheduler's ground truth fails the same check as
//! a genuine scheduling bug.

use obs::Registry;
use orch::{Delta, OrchestratorHandle};
use std::collections::BTreeSet;
use std::fmt;
use triana_core::grid::farm::FarmScheduler;
use triana_core::grid::pipeline::PipelineScheduler;
use triana_core::grid::redundancy::{Behaviour, Verdict, VotingFarm};
use triana_core::grid::{GridWorld, JobId, WorkerId};

use crate::oracle::ChaosCounters;

/// One broken invariant, with enough detail to debug from the report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable identifier of the invariant (used in reports and tests).
    pub invariant: &'static str,
    pub detail: String,
}

impl Violation {
    pub fn new(invariant: &'static str, detail: String) -> Self {
        Violation { invariant, detail }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Every job completes-or-stays-queued exactly once: the completion
/// counter, the per-job completion records, and the stats aggregate must
/// all agree.
pub fn check_exactly_once(farm: &FarmScheduler, reg: &Registry, out: &mut Vec<Violation>) {
    let by_latency = (0..farm.n_jobs())
        .filter(|&j| farm.job_latency(JobId(j as u64)).is_some())
        .count() as u64;
    let counter = reg.counter_value("farm.completions");
    if counter != by_latency {
        out.push(Violation::new(
            "exactly-once",
            format!("farm.completions={counter} but {by_latency} jobs have a completion record"),
        ));
    }
    let stats_done = farm.stats().jobs_done;
    if stats_done != by_latency {
        out.push(Violation::new(
            "exactly-once",
            format!("stats.jobs_done={stats_done} but {by_latency} jobs completed"),
        ));
    }
}

/// Every iterative overlay lookup must resolve by drain: each in-flight
/// DHT request either completes, fails over to the next candidate, or is
/// reaped by its scheduled timeout — a lookup still open once the event
/// queue is empty is wedged forever. Trivially green in flooding mode
/// (no lookups ever start), so safe to run on every scenario.
pub fn check_overlay_converged(p2p: &p2p::P2p, out: &mut Vec<Violation>) {
    let open = p2p.active_lookups();
    if open != 0 {
        out.push(Violation::new(
            "overlay-lookup-converges",
            format!("{open} iterative lookup(s) still active at drain"),
        ));
    }
}

/// No job may be stranded at drain: once the event queue is empty, every
/// job is either done or back in the pending queue — never still assigned
/// to a worker with no event left to move it.
pub fn check_no_stranded_jobs(farm: &FarmScheduler, out: &mut Vec<Violation>) {
    for j in 0..farm.n_jobs() {
        let job = JobId(j as u64);
        if farm.job_is_done(job) {
            continue;
        }
        if let Some(w) = farm.job_assignment(job) {
            out.push(Violation::new(
                "stranded-job",
                format!("job {j} still assigned to worker {} at drain", w.0),
            ));
        }
    }
}

/// No starvation at drain: a pending job while an up, non-blacklisted
/// worker has a free slot means the scheduler stopped scheduling. Only
/// sound when jobs carry no placement conflicts (the farm scenario);
/// voting replicas may legitimately starve when conflicts exclude every
/// free worker.
pub fn check_no_starvation(farm: &FarmScheduler, out: &mut Vec<Violation>) {
    let any_pending = (0..farm.n_jobs()).any(|j| farm.job_is_pending(JobId(j as u64)));
    if !any_pending {
        return;
    }
    for w in 0..farm.n_workers() {
        let wid = WorkerId(w as u32);
        if farm.worker_is_up(wid)
            && !farm.worker_blacklisted(wid)
            && farm.worker_active(wid) < farm.worker_capacity(wid)
        {
            out.push(Violation::new(
                "starvation",
                format!("pending jobs at drain while worker {w} is up with a free slot"),
            ));
            return;
        }
    }
}

/// Assignment-flow conservation: every dispatch ends in exactly one of
/// completion, requeue, or migration (a speculative win both completes
/// the job and retires its primary assignment, so the terms cancel).
/// Only exact once nothing is stranded — check after
/// [`check_no_stranded_jobs`] passes.
pub fn check_dispatch_conservation(reg: &Registry, out: &mut Vec<Violation>) {
    let dispatches = reg.counter_value("farm.dispatches");
    let completions = reg.counter_value("farm.completions");
    let requeues = reg.counter_value("farm.requeues");
    let migrations = reg.counter_value("farm.migrations");
    if dispatches != completions + requeues + migrations {
        out.push(Violation::new(
            "dispatch-conservation",
            format!(
                "dispatches={dispatches} != completions={completions} \
                 + requeues={requeues} + migrations={migrations}"
            ),
        ));
    }
    let spec = reg.counter_value("trust.speculative_dispatches");
    let wins = reg.counter_value("trust.speculative_wins");
    let cancelled = reg.counter_value("trust.speculative_cancelled");
    if spec != wins + cancelled {
        out.push(Violation::new(
            "speculation-conservation",
            format!("speculative_dispatches={spec} != wins={wins} + cancelled={cancelled}"),
        ));
    }
}

/// Overlay message conservation: at drain, every sent message was either
/// received or lost; oracle-injected duplicates add to the delivered side,
/// oracle-filtered sends were never counted as sent.
pub fn check_message_conservation(reg: &Registry, chaos: ChaosCounters, out: &mut Vec<Violation>) {
    let sent = reg.counter_value("p2p.messages_sent");
    let received = reg.counter_value("p2p.messages_received");
    let lost = reg.counter_value("p2p.messages_lost");
    if sent + chaos.dups != received + lost {
        out.push(Violation::new(
            "message-conservation",
            format!(
                "sent={sent} + injected_dups={} != received={received} + lost={lost}",
                chaos.dups
            ),
        ));
    }
}

/// Module-cache integrity: no worker's cache may hold bytes whose content
/// hash disagrees with the controller library's blob for that key, and no
/// prepared (verify-once) module may outlive or disagree with the blob it
/// was prepared from. Chunk corruption and Byzantine providers must be
/// stopped at swarm-assembly verification, before the cache.
pub fn check_cache_integrity(farm: &FarmScheduler, world: &GridWorld, out: &mut Vec<Violation>) {
    let _ = world;
    for w in 0..farm.n_workers() {
        let wid = WorkerId(w as u32);
        for (key, blob) in farm.worker_cache(wid).entries() {
            let cached = store::BlobId::of_blob(blob);
            if let Some(p) = farm.worker_cache(wid).prepared_of(key) {
                if p.source_hash() != cached.0 {
                    out.push(Violation::new(
                        "cache-integrity",
                        format!(
                            "worker {w} holds a prepared module for {key:?} built from hash \
                             {:#018x} but the resident blob is {cached}",
                            p.source_hash()
                        ),
                    ));
                }
                // Tier-2 artifacts must be deterministic: re-admitting the
                // resident blob reproduces the same tier with the same
                // translated-region count. A divergence means region
                // detection or translation depends on something besides
                // the blob bytes — a nondeterminism no chaos schedule is
                // allowed to surface.
                if p.tier_name() == "tier2" {
                    match tvm::tier::admit(blob, tvm::TierPolicy::Auto) {
                        Ok(again)
                            if again.tier_name() == p.tier_name()
                                && again.regions_translated() == p.regions_translated()
                                && again.source_hash() == p.source_hash() => {}
                        Ok(again) => out.push(Violation::new(
                            "cache-integrity",
                            format!(
                                "worker {w} tier2 artifact for {key:?} is not reproducible: \
                                 resident ({}, {} regions) vs re-admitted ({}, {} regions)",
                                p.tier_name(),
                                p.regions_translated(),
                                again.tier_name(),
                                again.regions_translated()
                            ),
                        )),
                        Err(e) => out.push(Violation::new(
                            "cache-integrity",
                            format!(
                                "worker {w} holds a tier2 artifact for {key:?} whose blob no \
                                 longer re-admits: {e:?}"
                            ),
                        )),
                    }
                }
            }
            let Some(truth) = farm.library.fetch(key) else {
                continue; // library republished under us; nothing to compare
            };
            let expect = store::BlobId::of_blob(truth);
            if cached != expect {
                out.push(Violation::new(
                    "cache-integrity",
                    format!(
                        "worker {w} caches {key:?} with hash {cached} but the library says {expect}"
                    ),
                ));
            }
        }
    }
}

/// A drained pipeline with every stage up must have finished every token,
/// and the obs counter must agree with the per-token records.
pub fn check_pipeline(
    pl: &PipelineScheduler,
    n_tokens: u64,
    reg: &Registry,
    out: &mut Vec<Violation>,
) {
    let all_up = (0..pl.n_stages()).all(|s| pl.stage_is_up(s));
    if all_up && !pl.all_done() {
        out.push(Violation::new(
            "pipeline-liveness",
            "drained with all stages up but not all tokens done".to_string(),
        ));
    }
    let by_latency = (0..n_tokens)
        .filter(|&t| pl.token_latency(t).is_some())
        .count() as u64;
    let counter = reg.counter_value("pipeline.tokens_done");
    if counter != by_latency {
        out.push(Violation::new(
            "pipeline-exactly-once",
            format!("pipeline.tokens_done={counter} but {by_latency} tokens have latency records"),
        ));
    }
    let stats = pl.stats();
    if stats.tokens_done != by_latency {
        out.push(Violation::new(
            "pipeline-exactly-once",
            format!(
                "stats.tokens_done={} but {by_latency} tokens completed",
                stats.tokens_done
            ),
        ));
    }
}

/// With at most `quorum - 1` cheaters among the volunteers, no accepted
/// unit may carry a wrong digest: a minority cannot form a quorum.
pub fn check_voting(voting: &VotingFarm, farm: &FarmScheduler, out: &mut Vec<Violation>) {
    let cheaters = voting
        .behaviours()
        .iter()
        .filter(|b| matches!(b, Behaviour::Cheater { .. }))
        .count();
    if cheaters >= voting.config.quorum {
        return; // cheaters could legitimately out-vote honesty
    }
    for u in 0..voting.units.len() {
        if let Verdict::Accepted { .. } = voting.verdict(farm, u) {
            if voting.accepted_digest_is_wrong(farm, u) {
                out.push(Violation::new(
                    "voting-soundness",
                    format!(
                        "unit {u}: a wrong digest won the vote with only {cheaters} cheater(s)"
                    ),
                ));
            }
        }
    }
}

/// Replicated exactly-once: the authoritative delta log records each
/// unit's completion exactly once, and the set of completions agrees with
/// the scheduler's ground truth (`done` — finished job ids for a farm,
/// finished token ids for a pipeline). A double `Complete` means a
/// failover re-ran a finished unit; a missing one means a handoff lost a
/// completion the old leader had already accepted.
pub fn check_orch_exactly_once(orch: &OrchestratorHandle, done: &[u64], out: &mut Vec<Violation>) {
    let o = orch.inner();
    let mut completed: BTreeSet<u64> = BTreeSet::new();
    for d in o.log() {
        if let Delta::Complete { job } = *d {
            if !completed.insert(job) {
                out.push(Violation::new(
                    "orch-exactly-once",
                    format!("unit {job} completed more than once in the replicated log"),
                ));
            }
        }
    }
    let truth: BTreeSet<u64> = done.iter().copied().collect();
    if completed != truth {
        let logged_only: Vec<u64> = completed.difference(&truth).copied().collect();
        let truth_only: Vec<u64> = truth.difference(&completed).copied().collect();
        out.push(Violation::new(
            "orch-exactly-once",
            format!(
                "replicated completion set disagrees with the scheduler: \
                 log-only={logged_only:?} scheduler-only={truth_only:?}"
            ),
        ));
    }
}

/// No orphaned partition of the task graph at drain: every unfinished
/// unit's data-plane owner is an up member, and every up member's replica
/// has converged onto the full authoritative log (anti-entropy finished
/// its job before the tick stopped).
pub fn check_orch_replication(orch: &OrchestratorHandle, out: &mut Vec<Violation>) {
    let o = orch.inner();
    let auth = o.authority();
    for (&job, &owner) in &auth.owners {
        if auth.done.contains(&job) {
            continue;
        }
        if !o.member_up(owner as usize) {
            out.push(Violation::new(
                "orch-orphaned-owner",
                format!("unit {job} still owned by down orchestrator {owner} at drain"),
            ));
        }
    }
    let log_len = o.log_len();
    for i in 0..o.n_members() {
        if !o.member_up(i) {
            continue;
        }
        let r = o.replica(i);
        if r.applied() != log_len || r.buffered() != 0 {
            out.push(Violation::new(
                "orch-replication-divergence",
                format!(
                    "up orchestrator {i} drained with applied={}/{log_len} \
                     and {} buffered deliveries",
                    r.applied(),
                    r.buffered()
                ),
            ));
        } else if r.owners != auth.owners || r.dispatch != auth.dispatch || r.done != auth.done {
            out.push(Violation::new(
                "orch-replication-divergence",
                format!("up orchestrator {i} applied the full log but disagrees with authority"),
            ));
        }
    }
}

/// No new assignment may go to a blacklisted worker. The driver calls this
/// after every step with the assignments it saw before the step; a fresh
/// `(job, worker)` pairing on a currently-blacklisted worker is a breach.
pub fn check_blacklist_respected(
    farm: &FarmScheduler,
    before: &[Option<WorkerId>],
    out: &mut Vec<Violation>,
) {
    for (j, prev) in before.iter().enumerate().take(farm.n_jobs()) {
        let now = farm.job_assignment(JobId(j as u64));
        if let Some(w) = now {
            if *prev != now && farm.worker_blacklisted(w) {
                out.push(Violation::new(
                    "blacklist",
                    format!("job {j} newly assigned to blacklisted worker {}", w.0),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_formats_with_invariant_tag() {
        let v = Violation::new("stranded-job", "job 3".to_string());
        assert_eq!(v.to_string(), "[stranded-job] job 3");
    }
}
