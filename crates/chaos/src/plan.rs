//! Fault plans: a seeded, serializable, shrinkable schedule of faults.
//!
//! A plan is a list of timestamped fault events. It round-trips through a
//! compact one-line text form (`kind@ms:args` joined with `;`) so a failing
//! run can be replayed from its printed command alone, and every event
//! supports *weakening* (halving intensities) so the shrinker can minimise
//! a reproducer beyond just deleting events.

use netsim::Pcg32;
use std::fmt;
use std::str::FromStr;

/// One kind of injected fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The worker's host vanishes (volunteer walks away, §3.6.2).
    Crash { worker: u32 },
    /// A previously crashed worker returns.
    Restart { worker: u32 },
    /// Sever the controller↔worker path for `secs` (routing partition:
    /// both ends stay online, transfers between them fail).
    Partition { worker: u32, secs: u32 },
    /// Drop discovery messages (Query/QueryHit/Publish) with probability
    /// `pct`% for `secs`.
    Drop { pct: u8, secs: u32 },
    /// Duplicate discovery deliveries with probability `pct`% for `secs`.
    Duplicate { pct: u8, secs: u32 },
    /// Defer overlay deliveries by up to `max_ms` with probability `pct`%
    /// for `secs` (message reorder).
    Delay { pct: u8, max_ms: u32, secs: u32 },
    /// Flip a byte in a chunk the worker's store holds (bit-rot / hostile
    /// peer serving garbage).
    Corrupt { worker: u32 },
    /// Clock-skewed straggler: the worker silently delivers only `pct`% of
    /// its advertised clock from now on.
    Skew { worker: u32, pct: u8 },
    /// Byzantine advert: publish a provider claim for content the worker
    /// does not actually hold.
    Lie { worker: u32 },
    /// An orchestrator crashes (host offline): the active controller if it
    /// holds the lease, forcing an election; a follower otherwise.
    OrchCrash { orch: u32 },
    /// A previously crashed orchestrator returns (its replica catches up
    /// through anti-entropy).
    OrchRestart { orch: u32 },
    /// Partition an orchestrator away from the whole grid for `secs`: its
    /// host stays up but every route to workers and fellow orchestrators
    /// is severed.
    OrchPartition { orch: u32, secs: u32 },
    /// Poison the worker's routed-mode routing table: roughly half its
    /// contacts are replaced with fabricated (node-id, peer) mappings.
    /// No-op unless the world runs `DiscoveryMode::Routed`; the overlay
    /// must self-heal (fabricated contacts fail and are evicted).
    RoutePoison { worker: u32 },
    /// Kill the worker for `secs` *if* its peer serves as a hot super-peer
    /// rendezvous in routed mode (no-op otherwise): delegated publishes
    /// and lookups through it must fail over, not wedge.
    SuperPeerFail { worker: u32, secs: u32 },
}

/// A fault scheduled at a virtual-time offset (milliseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    pub at_ms: u64,
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A strictly weaker version of this event (halved intensity /
    /// duration), or `None` if it is already minimal.
    pub fn weaken(&self) -> Option<FaultEvent> {
        use FaultKind::*;
        let kind = match self.kind {
            Crash { .. }
            | Restart { .. }
            | Corrupt { .. }
            | Lie { .. }
            | OrchCrash { .. }
            | OrchRestart { .. }
            | RoutePoison { .. } => return None,
            SuperPeerFail { worker, secs } if secs > 1 => SuperPeerFail {
                worker,
                secs: secs / 2,
            },
            Partition { worker, secs } if secs > 1 => Partition {
                worker,
                secs: secs / 2,
            },
            OrchPartition { orch, secs } if secs > 1 => OrchPartition {
                orch,
                secs: secs / 2,
            },
            Drop { pct, secs } if pct > 1 || secs > 1 => Drop {
                pct: (pct / 2).max(1),
                secs: (secs / 2).max(1),
            },
            Duplicate { pct, secs } if pct > 1 || secs > 1 => Duplicate {
                pct: (pct / 2).max(1),
                secs: (secs / 2).max(1),
            },
            Delay { pct, max_ms, secs } if pct > 1 || max_ms > 1 || secs > 1 => Delay {
                pct: (pct / 2).max(1),
                max_ms: (max_ms / 2).max(1),
                secs: (secs / 2).max(1),
            },
            Skew { worker, pct } if pct < 50 => Skew {
                worker,
                pct: (pct * 2).min(99), // weaker skew = closer to honest
            },
            _ => return None,
        };
        Some(FaultEvent {
            at_ms: self.at_ms,
            kind,
        })
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use FaultKind::*;
        match &self.kind {
            Crash { worker } => write!(f, "crash@{}:w{}", self.at_ms, worker),
            Restart { worker } => write!(f, "restart@{}:w{}", self.at_ms, worker),
            Partition { worker, secs } => write!(f, "part@{}:w{},{}s", self.at_ms, worker, secs),
            Drop { pct, secs } => write!(f, "drop@{}:{}%,{}s", self.at_ms, pct, secs),
            Duplicate { pct, secs } => write!(f, "dup@{}:{}%,{}s", self.at_ms, pct, secs),
            Delay { pct, max_ms, secs } => {
                write!(f, "delay@{}:{}%,{}ms,{}s", self.at_ms, pct, max_ms, secs)
            }
            Corrupt { worker } => write!(f, "corrupt@{}:w{}", self.at_ms, worker),
            Skew { worker, pct } => write!(f, "skew@{}:w{},{}%", self.at_ms, worker, pct),
            Lie { worker } => write!(f, "lie@{}:w{}", self.at_ms, worker),
            OrchCrash { orch } => write!(f, "octl@{}:o{}", self.at_ms, orch),
            OrchRestart { orch } => write!(f, "orest@{}:o{}", self.at_ms, orch),
            OrchPartition { orch, secs } => write!(f, "opart@{}:o{},{}s", self.at_ms, orch, secs),
            RoutePoison { worker } => write!(f, "rtbl@{}:w{}", self.at_ms, worker),
            SuperPeerFail { worker, secs } => {
                write!(f, "spfl@{}:w{},{}s", self.at_ms, worker, secs)
            }
        }
    }
}

/// Plan (de)serialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanParseError(pub String);

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanParseError {}

fn parse_num<T: FromStr>(s: &str, what: &str) -> Result<T, PlanParseError> {
    s.parse()
        .map_err(|_| PlanParseError(format!("`{s}` is not a valid {what}")))
}

fn strip<'a>(s: &'a str, prefix: &str, suffix: &str) -> Result<&'a str, PlanParseError> {
    s.strip_prefix(prefix)
        .and_then(|s| s.strip_suffix(suffix))
        .ok_or_else(|| PlanParseError(format!("`{s}` missing `{prefix}…{suffix}`")))
}

impl FromStr for FaultEvent {
    type Err = PlanParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (head, args) = s
            .split_once(':')
            .ok_or_else(|| PlanParseError(format!("`{s}` has no `:`")))?;
        let (kind, at) = head
            .split_once('@')
            .ok_or_else(|| PlanParseError(format!("`{head}` has no `@`")))?;
        let at_ms: u64 = parse_num(at, "time (ms)")?;
        let parts: Vec<&str> = args.split(',').collect();
        let kind = match (kind, parts.as_slice()) {
            ("crash", [w]) => FaultKind::Crash {
                worker: parse_num(strip(w, "w", "")?, "worker")?,
            },
            ("restart", [w]) => FaultKind::Restart {
                worker: parse_num(strip(w, "w", "")?, "worker")?,
            },
            ("part", [w, d]) => FaultKind::Partition {
                worker: parse_num(strip(w, "w", "")?, "worker")?,
                secs: parse_num(strip(d, "", "s")?, "duration (s)")?,
            },
            ("drop", [p, d]) => FaultKind::Drop {
                pct: parse_num(strip(p, "", "%")?, "percentage")?,
                secs: parse_num(strip(d, "", "s")?, "duration (s)")?,
            },
            ("dup", [p, d]) => FaultKind::Duplicate {
                pct: parse_num(strip(p, "", "%")?, "percentage")?,
                secs: parse_num(strip(d, "", "s")?, "duration (s)")?,
            },
            ("delay", [p, m, d]) => FaultKind::Delay {
                pct: parse_num(strip(p, "", "%")?, "percentage")?,
                max_ms: parse_num(strip(m, "", "ms")?, "delay (ms)")?,
                secs: parse_num(strip(d, "", "s")?, "duration (s)")?,
            },
            ("corrupt", [w]) => FaultKind::Corrupt {
                worker: parse_num(strip(w, "w", "")?, "worker")?,
            },
            ("skew", [w, p]) => FaultKind::Skew {
                worker: parse_num(strip(w, "w", "")?, "worker")?,
                pct: parse_num(strip(p, "", "%")?, "percentage")?,
            },
            ("lie", [w]) => FaultKind::Lie {
                worker: parse_num(strip(w, "w", "")?, "worker")?,
            },
            ("octl", [o]) => FaultKind::OrchCrash {
                orch: parse_num(strip(o, "o", "")?, "orchestrator")?,
            },
            ("orest", [o]) => FaultKind::OrchRestart {
                orch: parse_num(strip(o, "o", "")?, "orchestrator")?,
            },
            ("opart", [o, d]) => FaultKind::OrchPartition {
                orch: parse_num(strip(o, "o", "")?, "orchestrator")?,
                secs: parse_num(strip(d, "", "s")?, "duration (s)")?,
            },
            ("rtbl", [w]) => FaultKind::RoutePoison {
                worker: parse_num(strip(w, "w", "")?, "worker")?,
            },
            ("spfl", [w, d]) => FaultKind::SuperPeerFail {
                worker: parse_num(strip(w, "w", "")?, "worker")?,
                secs: parse_num(strip(d, "", "s")?, "duration (s)")?,
            },
            _ => return Err(PlanParseError(format!("unknown event `{s}`"))),
        };
        Ok(FaultEvent { at_ms, kind })
    }
}

/// An ordered schedule of fault events.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultPlan {
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Generate a random plan for a world of `n_workers`, with fault times
    /// spread over `[0, horizon_ms)`. Fully determined by `seed`.
    pub fn generate(seed: u64, n_workers: u32, horizon_ms: u64) -> FaultPlan {
        let mut rng = Pcg32::new(seed, 0xFA17);
        let n = 1 + rng.below(8) as usize;
        let mut events = Vec::with_capacity(n * 2);
        for _ in 0..n {
            let at_ms = rng.below(horizon_ms.max(1));
            let worker = rng.below(n_workers.max(1) as u64) as u32;
            let kind = match rng.below(9) {
                0 => FaultKind::Crash { worker },
                1 => FaultKind::Restart { worker },
                2 => FaultKind::Partition {
                    worker,
                    secs: 1 + rng.below(10) as u32,
                },
                3 => FaultKind::Drop {
                    pct: 10 + rng.below(80) as u8,
                    secs: 1 + rng.below(10) as u32,
                },
                4 => FaultKind::Duplicate {
                    pct: 10 + rng.below(80) as u8,
                    secs: 1 + rng.below(10) as u32,
                },
                5 => FaultKind::Delay {
                    pct: 10 + rng.below(80) as u8,
                    max_ms: 1 + rng.below(2_000) as u32,
                    secs: 1 + rng.below(10) as u32,
                },
                6 => FaultKind::Corrupt { worker },
                7 => FaultKind::Skew {
                    worker,
                    pct: 5 + rng.below(70) as u8,
                },
                _ => FaultKind::Lie { worker },
            };
            events.push(FaultEvent { at_ms, kind });
            // Most crashes come back: volunteers rejoin after a while.
            if let FaultKind::Crash { worker } = events.last().unwrap().kind {
                if rng.below(100) < 75 {
                    events.push(FaultEvent {
                        at_ms: at_ms + 500 + rng.below(20_000),
                        kind: FaultKind::Restart { worker },
                    });
                }
            }
        }
        let mut plan = FaultPlan { events };
        plan.sort();
        plan
    }

    /// Generate a plan that also exercises the orchestrator set: the base
    /// worker/network fault mix of [`FaultPlan::generate`] (drawn from the
    /// same stream, so worker chaos stays comparable) plus 1–3 orchestrator
    /// crashes/partitions over `n_orch` members. Crashed orchestrators
    /// always come back (possibly after the horizon), so a run can always
    /// re-elect and drain.
    pub fn generate_orch(seed: u64, n_workers: u32, n_orch: u32, horizon_ms: u64) -> FaultPlan {
        let mut plan = FaultPlan::generate(seed, n_workers, horizon_ms);
        let mut rng = Pcg32::new(seed, 0x0C71);
        let n = 1 + rng.below(3) as usize;
        for _ in 0..n {
            let at_ms = rng.below(horizon_ms.max(1));
            let orch = rng.below(n_orch.max(1) as u64) as u32;
            match rng.below(2) {
                0 => {
                    plan.events.push(FaultEvent {
                        at_ms,
                        kind: FaultKind::OrchCrash { orch },
                    });
                    plan.events.push(FaultEvent {
                        at_ms: at_ms + 500 + rng.below(20_000),
                        kind: FaultKind::OrchRestart { orch },
                    });
                }
                _ => plan.events.push(FaultEvent {
                    at_ms,
                    kind: FaultKind::OrchPartition {
                        orch,
                        secs: 1 + rng.below(15) as u32,
                    },
                }),
            }
        }
        plan.sort();
        plan
    }

    /// Worker chaos (from [`FaultPlan::generate`], same stream) plus 1–3
    /// routed-overlay faults: routing-table poisonings and super-peer
    /// outages. Super-peer outages always end within the horizon so the
    /// worker's jobs can still drain.
    pub fn generate_routed(seed: u64, n_workers: u32, horizon_ms: u64) -> FaultPlan {
        let mut plan = FaultPlan::generate(seed, n_workers, horizon_ms);
        let mut rng = Pcg32::new(seed, 0x07B1);
        let n = 1 + rng.below(3) as usize;
        for _ in 0..n {
            let at_ms = rng.below(horizon_ms.max(1));
            let worker = rng.below(n_workers.max(1) as u64) as u32;
            let kind = match rng.below(2) {
                0 => FaultKind::RoutePoison { worker },
                _ => FaultKind::SuperPeerFail {
                    worker,
                    secs: 1 + rng.below(10) as u32,
                },
            };
            plan.events.push(FaultEvent { at_ms, kind });
        }
        plan.sort();
        plan
    }

    /// Sort by time (stable, so equal-time events keep generation order).
    pub fn sort(&mut self) {
        self.events.sort_by_key(|e| e.at_ms);
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "-");
        }
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = PlanParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.is_empty() || s == "-" {
            return Ok(FaultPlan::empty());
        }
        let events = s
            .split(';')
            .map(|e| e.trim().parse())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(FaultPlan { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_sorted() {
        let a = FaultPlan::generate(42, 5, 60_000);
        let b = FaultPlan::generate(42, 5, 60_000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.events.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        assert_ne!(a, FaultPlan::generate(43, 5, 60_000));
    }

    #[test]
    fn plan_round_trips_through_text() {
        for seed in 0..50 {
            let plan = FaultPlan::generate(seed, 4, 30_000);
            let text = plan.to_string();
            let back: FaultPlan = text.parse().unwrap();
            assert_eq!(back, plan, "plan `{text}` did not round-trip");
        }
        let empty: FaultPlan = "-".parse().unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.to_string(), "-");
    }

    #[test]
    fn orch_plans_include_orchestrator_faults_and_round_trip() {
        let mut any_orch = false;
        for seed in 0..50 {
            let plan = FaultPlan::generate_orch(seed, 4, 3, 30_000);
            assert_eq!(plan, FaultPlan::generate_orch(seed, 4, 3, 30_000));
            let crashes = plan
                .events
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::OrchCrash { .. }))
                .count();
            let restarts = plan
                .events
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::OrchRestart { .. }))
                .count();
            // Every crashed orchestrator eventually returns.
            assert_eq!(crashes, restarts);
            any_orch |= plan.events.iter().any(|e| {
                matches!(
                    e.kind,
                    FaultKind::OrchCrash { .. } | FaultKind::OrchPartition { .. }
                )
            });
            let back: FaultPlan = plan.to_string().parse().unwrap();
            assert_eq!(back, plan);
        }
        assert!(any_orch, "orch generator never produced an orch fault");
        let e: FaultEvent = "opart@100:o2,8s".parse().unwrap();
        assert_eq!(
            e.weaken().unwrap().kind,
            FaultKind::OrchPartition { orch: 2, secs: 4 }
        );
        assert!("octl@5:o0"
            .parse::<FaultEvent>()
            .unwrap()
            .weaken()
            .is_none());
    }

    #[test]
    fn routed_plans_include_overlay_faults_and_round_trip() {
        let mut any_routed = false;
        for seed in 0..50 {
            let plan = FaultPlan::generate_routed(seed, 4, 30_000);
            assert_eq!(plan, FaultPlan::generate_routed(seed, 4, 30_000));
            any_routed |= plan.events.iter().any(|e| {
                matches!(
                    e.kind,
                    FaultKind::RoutePoison { .. } | FaultKind::SuperPeerFail { .. }
                )
            });
            let back: FaultPlan = plan.to_string().parse().unwrap();
            assert_eq!(back, plan);
        }
        assert!(
            any_routed,
            "routed generator never produced an overlay fault"
        );
        let e: FaultEvent = "spfl@250:w3,8s".parse().unwrap();
        assert_eq!(
            e.weaken().unwrap().kind,
            FaultKind::SuperPeerFail { worker: 3, secs: 4 }
        );
        assert!("rtbl@5:w1"
            .parse::<FaultEvent>()
            .unwrap()
            .weaken()
            .is_none());
        assert_eq!(
            "rtbl@5:w1".parse::<FaultEvent>().unwrap().kind,
            FaultKind::RoutePoison { worker: 1 }
        );
    }

    #[test]
    fn bad_plans_are_rejected() {
        assert!("crash500:w0".parse::<FaultPlan>().is_err());
        assert!("crash@500".parse::<FaultPlan>().is_err());
        assert!("nuke@500:w0".parse::<FaultPlan>().is_err());
        assert!("drop@500:x%,3s".parse::<FaultPlan>().is_err());
    }

    #[test]
    fn weaken_halves_intensities_until_minimal() {
        let e = FaultEvent {
            at_ms: 10,
            kind: FaultKind::Drop { pct: 40, secs: 8 },
        };
        let w = e.weaken().unwrap();
        assert_eq!(w.kind, FaultKind::Drop { pct: 20, secs: 4 });
        let mut cur = e;
        let mut steps = 0;
        while let Some(next) = cur.weaken() {
            cur = next;
            steps += 1;
            assert!(steps < 20, "weaken must reach a fixpoint");
        }
        assert_eq!(cur.kind, FaultKind::Drop { pct: 1, secs: 1 });
        let crash = FaultEvent {
            at_ms: 0,
            kind: FaultKind::Crash { worker: 1 },
        };
        assert!(crash.weaken().is_none());
    }
}
