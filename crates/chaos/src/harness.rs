//! The chaos harness: builds a grid scenario, replays a [`FaultPlan`]
//! against it through the [`FaultOracle`], checks invariants at drain,
//! and digests the whole run for byte-identical seed-replay.
//!
//! Three scenarios cover the grid's execution modes: `farm` (FarmScheduler
//! with swarm module distribution, checkpointing and adaptive trust),
//! `pipeline` (PipelineExec over bound pipes), and `voting` (redundant
//! execution with result voting over the farm). A seed picks the scenario,
//! generates the plan, and fully determines the run — the digest of two
//! runs of the same config must match byte-for-byte.

use netsim::avail::AvailabilityTrace;
use netsim::{Duration, HostId, HostSpec, Pcg32, SimTime};
use obs::Obs;
use orch::{OrchConfig, OrchestratorHandle, OrchestratorSpec, Orchestrators};
use p2p::{AdvertBody, Advertisement, BlobAdvert, DiscoveryMode, Incoming, PeerId};
use store::{BlobId, ChunkLayout};
use triana_core::checkpoint::CheckpointPolicy;
use triana_core::grid::farm::{FarmConfig, FarmScheduler, JobSpec, SwarmConfig};
use triana_core::grid::pipeline::{PipelineScheduler, StageSpec};
use triana_core::grid::redundancy::{Behaviour, RedundancyConfig, VotingFarm};
use triana_core::grid::{GridEvent, GridWorld, JobId, WorkerId, WorkerSetup};
use triana_core::modules::ModuleKey;
use trust::{orchestrator_eligibility, GridTrustConfig};

use crate::invariants::{
    check_blacklist_respected, check_cache_integrity, check_dispatch_conservation,
    check_exactly_once, check_message_conservation, check_no_starvation, check_no_stranded_jobs,
    check_orch_exactly_once, check_orch_replication, check_overlay_converged, check_pipeline,
    check_voting, Violation,
};
use crate::oracle::FaultOracle;
use crate::plan::{FaultKind, FaultPlan};

/// Workers in the farm/voting scenarios (plan worker indices wrap here).
pub const N_WORKERS: usize = 5;
/// Orchestrator-set members in decentralised (`--orch`) runs.
pub const N_ORCH: usize = 3;
/// Stages in the pipeline scenario.
pub const N_STAGES: usize = 3;
/// Jobs submitted in the farm scenario.
pub const N_JOBS: usize = 12;
/// Tokens pushed through the pipeline scenario.
pub const N_TOKENS: u64 = 8;
/// Horizon the plan generator spreads fault times over.
pub const PLAN_HORIZON_MS: u64 = 60_000;

/// Which grid execution mode a chaos run exercises.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scenario {
    Farm,
    Pipeline,
    Voting,
}

impl Scenario {
    /// Deterministic scenario choice for a sweep seed.
    pub fn for_seed(seed: u64) -> Scenario {
        match seed % 3 {
            0 => Scenario::Farm,
            1 => Scenario::Pipeline,
            _ => Scenario::Voting,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Scenario::Farm => "farm",
            Scenario::Pipeline => "pipeline",
            Scenario::Voting => "voting",
        }
    }

    pub fn parse(s: &str) -> Option<Scenario> {
        match s {
            "farm" => Some(Scenario::Farm),
            "pipeline" => Some(Scenario::Pipeline),
            "voting" => Some(Scenario::Voting),
            _ => None,
        }
    }
}

/// One fully-specified chaos run.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    pub seed: u64,
    pub scenario: Scenario,
    pub plan: FaultPlan,
    /// Arm the intentional `drop-output` bug (mutation testing: the
    /// harness must catch, shrink, and replay it).
    pub mutate_drop_output: bool,
    /// Run the scenario under a decentralised [`N_ORCH`]-member
    /// orchestrator set instead of a single controller; orchestrator
    /// faults in the plan then crash/partition members of that set.
    pub orch: bool,
    /// Run discovery over the structured overlay (`DiscoveryMode::Routed`)
    /// instead of flooding; `rtbl`/`spfl` faults in the plan then poison
    /// routing tables and fell super-peer rendezvous nodes.
    pub routed: bool,
}

impl ChaosConfig {
    /// The sweep's derivation: the seed picks the scenario and generates
    /// the plan.
    pub fn from_seed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            scenario: Scenario::for_seed(seed),
            plan: FaultPlan::generate(seed, N_WORKERS as u32, PLAN_HORIZON_MS),
            mutate_drop_output: false,
            orch: false,
            routed: false,
        }
    }

    /// The orchestrator-fault sweep: the same scenario choice, but the
    /// world runs a decentralised orchestrator set and the plan mixes in
    /// orchestrator crashes and partitions.
    pub fn from_seed_orch(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            scenario: Scenario::for_seed(seed),
            plan: FaultPlan::generate_orch(seed, N_WORKERS as u32, N_ORCH as u32, PLAN_HORIZON_MS),
            mutate_drop_output: false,
            orch: true,
            routed: false,
        }
    }

    /// The structured-overlay sweep: the same scenario choice, but the
    /// world discovers over the Kademlia DHT and the plan mixes in
    /// routing-table poisonings and super-peer outages.
    pub fn from_seed_routed(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            scenario: Scenario::for_seed(seed),
            plan: FaultPlan::generate_routed(seed, N_WORKERS as u32, PLAN_HORIZON_MS),
            mutate_drop_output: false,
            orch: false,
            routed: true,
        }
    }
}

/// What a chaos run produced.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// FNV-1a digest of `report`; equal digests mean byte-identical runs.
    pub digest: u64,
    /// Deterministic full-run report (stats, counters, obs snapshot,
    /// violations).
    pub report: String,
    pub violations: Vec<Violation>,
}

impl RunOutcome {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The one-line command that reproduces a failing run byte-for-byte.
pub fn replay_command(cfg: &ChaosConfig) -> String {
    let mut cmd = format!(
        "cargo run --release -p consumer-grid-bench --bin chaos -- replay \
         --seed {} --scenario {} --plan \"{}\"",
        cfg.seed,
        cfg.scenario.name(),
        cfg.plan,
    );
    if cfg.mutate_drop_output {
        cmd.push_str(" --mutate drop-output");
    }
    if cfg.orch {
        cmd.push_str(" --orch");
    }
    if cfg.routed {
        cmd.push_str(" --routed");
    }
    cmd
}

/// FNV-1a 64-bit: tiny, dependency-free, good enough to compare runs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Plan expansion: FaultEvents become driver actions
// ---------------------------------------------------------------------------

/// A fault plan lowered to the operations the driver applies at runtime.
/// Windowed faults (`Drop`/`Duplicate`/`Delay`) become oracle window
/// updates whose end is anchored at the event's *nominal* time; a
/// `Partition` becomes a cut/uncut pair.
#[derive(Clone, Debug)]
enum Action {
    Down(u32),
    Up(u32),
    Cut(u32),
    Uncut(u32),
    DropWindow { until_ms: u64, pct: u8 },
    DupWindow { until_ms: u64, pct: u8 },
    DelayWindow { until_ms: u64, pct: u8, max_ms: u32 },
    Corrupt(u32),
    Skew { worker: u32, pct: u8 },
    Lie(u32),
    OrchDown(u32),
    OrchUp(u32),
    OrchCut(u32),
    OrchUncut(u32),
    Poison(u32),
    SuperDown(u32),
    SuperUp(u32),
}

/// The plan, expanded and sorted, consumed progressively as the driver
/// steps the sim (shared across waves in the voting scenario).
pub struct PlanRuntime {
    actions: Vec<(u64, Action)>,
    next: usize,
}

impl PlanRuntime {
    pub fn new(plan: &FaultPlan, scenario: Scenario) -> PlanRuntime {
        let n = match scenario {
            Scenario::Pipeline => N_STAGES as u32,
            _ => N_WORKERS as u32,
        };
        let mut actions: Vec<(u64, Action)> = Vec::with_capacity(plan.len() * 2);
        for ev in &plan.events {
            let at = ev.at_ms;
            match ev.kind {
                FaultKind::Crash { worker } => actions.push((at, Action::Down(worker % n))),
                FaultKind::Restart { worker } => actions.push((at, Action::Up(worker % n))),
                FaultKind::Partition { worker, secs } => {
                    if scenario == Scenario::Pipeline {
                        // The pipe protocol has no retry for lost tokens on
                        // a live-but-unreachable stage; a partition there
                        // is indistinguishable from a permanent hang, so
                        // the pipeline scenario maps it to stage churn.
                        actions.push((at, Action::Down(worker % n)));
                        actions.push((at + u64::from(secs) * 1_000, Action::Up(worker % n)));
                    } else {
                        actions.push((at, Action::Cut(worker % n)));
                        actions.push((at + u64::from(secs) * 1_000, Action::Uncut(worker % n)));
                    }
                }
                FaultKind::Drop { pct, secs } => actions.push((
                    at,
                    Action::DropWindow {
                        until_ms: at + u64::from(secs) * 1_000,
                        pct,
                    },
                )),
                FaultKind::Duplicate { pct, secs } => actions.push((
                    at,
                    Action::DupWindow {
                        until_ms: at + u64::from(secs) * 1_000,
                        pct,
                    },
                )),
                FaultKind::Delay { pct, max_ms, secs } => actions.push((
                    at,
                    Action::DelayWindow {
                        until_ms: at + u64::from(secs) * 1_000,
                        pct,
                        max_ms,
                    },
                )),
                FaultKind::Corrupt { worker } => {
                    if scenario != Scenario::Pipeline {
                        actions.push((at, Action::Corrupt(worker % n)));
                    }
                }
                FaultKind::Skew { worker, pct } => {
                    if scenario != Scenario::Pipeline {
                        actions.push((
                            at,
                            Action::Skew {
                                worker: worker % n,
                                pct,
                            },
                        ));
                    }
                }
                FaultKind::Lie { worker } => {
                    if scenario != Scenario::Pipeline {
                        actions.push((at, Action::Lie(worker % n)));
                    }
                }
                FaultKind::OrchCrash { orch } => {
                    actions.push((at, Action::OrchDown(orch % N_ORCH as u32)));
                }
                FaultKind::OrchRestart { orch } => {
                    actions.push((at, Action::OrchUp(orch % N_ORCH as u32)));
                }
                FaultKind::OrchPartition { orch, secs } => {
                    let o = orch % N_ORCH as u32;
                    actions.push((at, Action::OrchCut(o)));
                    actions.push((at + u64::from(secs) * 1_000, Action::OrchUncut(o)));
                }
                FaultKind::RoutePoison { worker } => {
                    if scenario != Scenario::Pipeline {
                        actions.push((at, Action::Poison(worker % n)));
                    }
                }
                FaultKind::SuperPeerFail { worker, secs } => {
                    // Overlay faults target the farm's worker peers (the
                    // pipeline's stage peers have no farm churn handler for
                    // a rendezvous outage, so pipelines skip them — they
                    // still exercise routed discovery per se).
                    if scenario != Scenario::Pipeline {
                        let w = worker % n;
                        actions.push((at, Action::SuperDown(w)));
                        actions.push((at + u64::from(secs) * 1_000, Action::SuperUp(w)));
                    }
                }
            }
        }
        actions.sort_by_key(|(t, _)| *t);
        {
            // An orchestrator that never comes back leaves its log entries
            // unrepairable and can park ownership forever: guarantee every
            // OrchDown has a matching later OrchUp, mirroring the pipeline
            // stage balance below.
            let last = actions.last().map_or(0, |(t, _)| *t);
            let mut balance = [0i32; N_ORCH];
            for (_, a) in &actions {
                match a {
                    Action::OrchDown(o) => balance[*o as usize] -= 1,
                    Action::OrchUp(o) => balance[*o as usize] = 0,
                    _ => {}
                }
            }
            for (o, b) in balance.iter().enumerate() {
                if *b < 0 {
                    actions.push((last + 10_000, Action::OrchUp(o as u32)));
                }
            }
        }
        if scenario == Scenario::Pipeline {
            // A stage that never comes back makes lost tokens recirculate
            // forever (emit → dead stage → re-emit): guarantee every Down
            // has a matching later Up so the pipeline can drain.
            let last = actions.last().map_or(0, |(t, _)| *t);
            let mut balance = vec![0i32; n as usize];
            for (_, a) in &actions {
                match a {
                    Action::Down(s) => balance[*s as usize] -= 1,
                    Action::Up(s) => balance[*s as usize] = 0,
                    _ => {}
                }
            }
            for (s, b) in balance.iter().enumerate() {
                if *b < 0 {
                    actions.push((last + 10_000, Action::Up(s as u32)));
                }
            }
        }
        PlanRuntime { actions, next: 0 }
    }

    /// Move the churn actions (worker/stage down and up) out of the action
    /// list and into the sim queue as real grid events at their exact
    /// times. Everything else (oracle windows, link cuts, state edits)
    /// only takes effect at the next event handler anyway, so it can keep
    /// the apply-at-horizon path — but churn handlers read `sim.now()`
    /// (checkpoint credit, trust profiling), which must be the fault's
    /// nominal time, not whenever the driver gets around to it.
    pub fn schedule_churn(&mut self, sim: &mut netsim::Sim<GridEvent>) {
        debug_assert_eq!(self.next, 0, "schedule churn before driving");
        let mut rest = Vec::with_capacity(self.actions.len());
        for (at, a) in self.actions.drain(..) {
            match a {
                Action::Down(w) => {
                    sim.schedule_at(ms_to_time(at), GridEvent::WorkerDown(WorkerId(w)));
                }
                Action::Up(w) => {
                    sim.schedule_at(ms_to_time(at), GridEvent::WorkerUp(WorkerId(w)));
                }
                other => rest.push((at, other)),
            }
        }
        self.actions = rest;
    }

    fn pop_due(&mut self, horizon_ms: Option<u64>) -> Option<Action> {
        let (at, _) = self.actions.get(self.next)?;
        if let Some(h) = horizon_ms {
            if *at > h {
                return None;
            }
        }
        let a = self.actions[self.next].1.clone();
        self.next += 1;
        Some(a)
    }

    fn pending(&self) -> bool {
        self.next < self.actions.len()
    }
}

fn ms_to_time(ms: u64) -> SimTime {
    SimTime::ZERO + Duration::from_millis(ms)
}

/// Static facts the farm driver needs to apply plan actions, plus the
/// mutable reachability bookkeeping for the orchestrator set (a member is
/// usable only while its host is online *and* unpartitioned).
pub struct FarmCtx {
    ctrl_host: HostId,
    worker_hosts: Vec<HostId>,
    module_blob: BlobId,
    module_len: u64,
    module_chunks: u32,
    /// Hosts of the orchestrator set; empty when the world runs the
    /// classic single controller (orch plan actions are then ignored).
    orch_hosts: Vec<HostId>,
    orch_offline: Vec<bool>,
    orch_cuts: Vec<u32>,
    /// Seed-derived stream for routing-table poisonings (`rtbl` faults).
    poison_rng: Pcg32,
}

impl FarmCtx {
    /// Cut or heal every link between orchestrator `o` and the rest of
    /// the grid (workers and fellow orchestrators).
    fn set_orch_partitioned(&self, world: &mut GridWorld, o: usize, cut: bool) {
        for &wh in &self.worker_hosts {
            world.net.set_link_cut(self.orch_hosts[o], wh, cut);
        }
        for (j, &oh) in self.orch_hosts.iter().enumerate() {
            if j != o {
                world.net.set_link_cut(self.orch_hosts[o], oh, cut);
            }
        }
    }

    /// Push the membership view to match reachability and let the farm
    /// react (election, ownership reassignment, resumed returns, kick).
    fn sync_orch_member(&self, world: &mut GridWorld, farm: &mut FarmScheduler, o: usize) {
        let up = !self.orch_offline[o] && self.orch_cuts[o] == 0;
        let orch = farm.orchestrators().clone();
        if up {
            orch.set_member_up(&mut world.sim, &mut world.net, &mut world.p2p, o);
        } else {
            orch.set_member_down(&mut world.sim, &mut world.net, &mut world.p2p, o);
        }
        farm.on_orch_change(world);
    }
}

fn apply_farm_action(
    world: &mut GridWorld,
    farm: &mut FarmScheduler,
    oracle: &FaultOracle,
    ctx: &mut FarmCtx,
    act: Action,
) {
    match act {
        Action::Down(w) => farm.handle(world, GridEvent::WorkerDown(WorkerId(w))),
        Action::Up(w) => farm.handle(world, GridEvent::WorkerUp(WorkerId(w))),
        Action::Cut(w) => {
            world
                .net
                .set_link_cut(ctx.ctrl_host, ctx.worker_hosts[w as usize], true);
        }
        Action::Uncut(w) => {
            world
                .net
                .set_link_cut(ctx.ctrl_host, ctx.worker_hosts[w as usize], false);
            // Link repairs are not grid events; nudge the queue so jobs
            // bounced off the severed route get rescheduled.
            farm.kick(world);
        }
        Action::DropWindow { until_ms, pct } => oracle.set_drop_window(ms_to_time(until_ms), pct),
        Action::DupWindow { until_ms, pct } => oracle.set_dup_window(ms_to_time(until_ms), pct),
        Action::DelayWindow {
            until_ms,
            pct,
            max_ms,
        } => oracle.set_delay_window(
            ms_to_time(until_ms),
            pct,
            Duration::from_millis(u64::from(max_ms)),
        ),
        Action::Corrupt(w) => {
            // No-op unless the blob is resident — exactly like real bit-rot.
            farm.worker_store_mut(WorkerId(w))
                .corrupt_chunk(ctx.module_blob, 0);
        }
        Action::Skew { worker, pct } => {
            farm.set_worker_efficiency(WorkerId(worker), f64::from(pct.max(5)) / 100.0);
        }
        Action::Lie(w) => {
            // Byzantine provider claim: advertise the module blob from a
            // worker that may not hold a single chunk of it. Swarm pulls
            // against it fail and must reroute to the controller.
            let provider = farm.worker_peer(WorkerId(w));
            let ad = Advertisement {
                body: AdvertBody::Blob(BlobAdvert {
                    blob: ctx.module_blob.0,
                    size_bytes: ctx.module_len,
                    chunks: ctx.module_chunks,
                    provider,
                }),
                expires: world.sim.now() + Duration::from_secs(3_600),
            };
            world
                .p2p
                .publish(&mut world.sim, &mut world.net, provider, ad);
        }
        Action::OrchDown(o) => {
            let o = o as usize;
            if o < ctx.orch_hosts.len() && !ctx.orch_offline[o] {
                ctx.orch_offline[o] = true;
                world.net.set_online(ctx.orch_hosts[o], false);
                ctx.sync_orch_member(world, farm, o);
            }
        }
        Action::OrchUp(o) => {
            let o = o as usize;
            if o < ctx.orch_hosts.len() && ctx.orch_offline[o] {
                ctx.orch_offline[o] = false;
                world.net.set_online(ctx.orch_hosts[o], true);
                ctx.sync_orch_member(world, farm, o);
            }
        }
        Action::OrchCut(o) => {
            let o = o as usize;
            if o < ctx.orch_hosts.len() {
                ctx.orch_cuts[o] += 1;
                if ctx.orch_cuts[o] == 1 {
                    ctx.set_orch_partitioned(world, o, true);
                }
                ctx.sync_orch_member(world, farm, o);
            }
        }
        Action::OrchUncut(o) => {
            let o = o as usize;
            if o < ctx.orch_hosts.len() && ctx.orch_cuts[o] > 0 {
                ctx.orch_cuts[o] -= 1;
                if ctx.orch_cuts[o] == 0 {
                    ctx.set_orch_partitioned(world, o, false);
                }
                ctx.sync_orch_member(world, farm, o);
            }
        }
        Action::Poison(w) => {
            // No-op outside routed mode (a flooding peer has no routing
            // table), exactly like Corrupt on a non-resident blob.
            let peer = farm.worker_peer(WorkerId(w));
            world.p2p.poison_routing_table(peer, &mut ctx.poison_rng);
        }
        Action::SuperDown(w) => {
            // Only fell the worker if its peer actually serves as a hot
            // rendezvous — the fault is about super-peer outage, not plain
            // worker churn (the Crash kind already covers that). Roles are
            // assigned at bootstrap and stable for the whole run, so the
            // matching SuperUp sees the same verdict.
            if world.p2p.is_rendezvous(farm.worker_peer(WorkerId(w))) {
                farm.handle(world, GridEvent::WorkerDown(WorkerId(w)));
            }
        }
        Action::SuperUp(w) => {
            if world.p2p.is_rendezvous(farm.worker_peer(WorkerId(w))) {
                farm.handle(world, GridEvent::WorkerUp(WorkerId(w)));
            }
        }
    }
}

/// Step the farm world to drain, interleaving plan actions at their due
/// times and auditing the blacklist after every handled event. Actions due
/// before the next sim event apply first; once the queue is empty the
/// remaining actions apply immediately (there is no natural event left to
/// wait for).
pub fn drive_farm(
    world: &mut GridWorld,
    farm: &mut FarmScheduler,
    rt: &mut PlanRuntime,
    oracle: &FaultOracle,
    ctx: &mut FarmCtx,
    violations: &mut Vec<Violation>,
) {
    let mut before: Vec<Option<WorkerId>> = (0..farm.n_jobs())
        .map(|j| farm.job_assignment(JobId(j as u64)))
        .collect();
    loop {
        let horizon_ms = world.sim.peek_time().map(|t| t.as_micros() / 1_000);
        while let Some(act) = rt.pop_due(horizon_ms) {
            apply_farm_action(world, farm, oracle, ctx, act);
        }
        match world.sim.step() {
            Some(GridEvent::P2p(pe)) => {
                for inc in world.p2p.handle(&mut world.sim, &mut world.net, pe) {
                    if let Incoming::Orch {
                        to,
                        seq,
                        count,
                        sync,
                    } = inc
                    {
                        farm.orch_deliver(to, seq, count, sync);
                    }
                }
            }
            Some(ev) => farm.handle(world, ev),
            None => {
                if rt.pending() {
                    continue; // actions beyond the last event still apply
                }
                break;
            }
        }
        check_blacklist_respected(farm, &before, violations);
        for (j, slot) in before.iter_mut().enumerate() {
            *slot = farm.job_assignment(JobId(j as u64));
        }
    }
}

/// Static facts and orchestrator reachability bookkeeping for the
/// pipeline driver (the pipeline analogue of [`FarmCtx`]).
pub struct PipeCtx {
    stage_hosts: Vec<HostId>,
    orch_hosts: Vec<HostId>,
    orch_offline: Vec<bool>,
    orch_cuts: Vec<u32>,
}

impl PipeCtx {
    fn set_orch_partitioned(&self, world: &mut GridWorld, o: usize, cut: bool) {
        for &sh in &self.stage_hosts {
            world.net.set_link_cut(self.orch_hosts[o], sh, cut);
        }
        for (j, &oh) in self.orch_hosts.iter().enumerate() {
            if j != o {
                world.net.set_link_cut(self.orch_hosts[o], oh, cut);
            }
        }
    }

    fn sync_orch_member(&self, world: &mut GridWorld, pl: &mut PipelineScheduler, o: usize) {
        let up = !self.orch_offline[o] && self.orch_cuts[o] == 0;
        let orch = pl.orchestrators().clone();
        if up {
            orch.set_member_up(&mut world.sim, &mut world.net, &mut world.p2p, o);
        } else {
            orch.set_member_down(&mut world.sim, &mut world.net, &mut world.p2p, o);
        }
        pl.on_orch_change(&mut world.sim, &mut world.net, &mut world.p2p);
    }
}

/// Step the pipeline world to drain (same action protocol as
/// [`drive_farm`]; only churn, message chaos, and orchestrator faults
/// reach a pipeline).
pub fn drive_pipeline(
    world: &mut GridWorld,
    pl: &mut PipelineScheduler,
    rt: &mut PlanRuntime,
    oracle: &FaultOracle,
    ctx: &mut PipeCtx,
) {
    loop {
        let horizon_ms = world.sim.peek_time().map(|t| t.as_micros() / 1_000);
        while let Some(act) = rt.pop_due(horizon_ms) {
            match act {
                Action::Down(s) => pl.handle(
                    &mut world.sim,
                    &mut world.net,
                    &mut world.p2p,
                    GridEvent::WorkerDown(WorkerId(s)),
                ),
                Action::Up(s) => pl.handle(
                    &mut world.sim,
                    &mut world.net,
                    &mut world.p2p,
                    GridEvent::WorkerUp(WorkerId(s)),
                ),
                Action::DropWindow { until_ms, pct } => {
                    oracle.set_drop_window(ms_to_time(until_ms), pct);
                }
                Action::DupWindow { until_ms, pct } => {
                    oracle.set_dup_window(ms_to_time(until_ms), pct);
                }
                Action::DelayWindow {
                    until_ms,
                    pct,
                    max_ms,
                } => oracle.set_delay_window(
                    ms_to_time(until_ms),
                    pct,
                    Duration::from_millis(u64::from(max_ms)),
                ),
                Action::OrchDown(o) => {
                    let o = o as usize;
                    if o < ctx.orch_hosts.len() && !ctx.orch_offline[o] {
                        ctx.orch_offline[o] = true;
                        world.net.set_online(ctx.orch_hosts[o], false);
                        ctx.sync_orch_member(world, pl, o);
                    }
                }
                Action::OrchUp(o) => {
                    let o = o as usize;
                    if o < ctx.orch_hosts.len() && ctx.orch_offline[o] {
                        ctx.orch_offline[o] = false;
                        world.net.set_online(ctx.orch_hosts[o], true);
                        ctx.sync_orch_member(world, pl, o);
                    }
                }
                Action::OrchCut(o) => {
                    let o = o as usize;
                    if o < ctx.orch_hosts.len() {
                        ctx.orch_cuts[o] += 1;
                        if ctx.orch_cuts[o] == 1 {
                            ctx.set_orch_partitioned(world, o, true);
                        }
                        ctx.sync_orch_member(world, pl, o);
                    }
                }
                Action::OrchUncut(o) => {
                    let o = o as usize;
                    if o < ctx.orch_hosts.len() && ctx.orch_cuts[o] > 0 {
                        ctx.orch_cuts[o] -= 1;
                        if ctx.orch_cuts[o] == 0 {
                            ctx.set_orch_partitioned(world, o, false);
                        }
                        ctx.sync_orch_member(world, pl, o);
                    }
                }
                // Filtered out by PlanRuntime::new for pipelines.
                _ => unreachable!("farm-only action in a pipeline plan"),
            }
        }
        match world.sim.step() {
            Some(GridEvent::P2p(pe)) => {
                let incoming = world.p2p.handle(&mut world.sim, &mut world.net, pe);
                for inc in incoming {
                    pl.on_incoming(&mut world.sim, &mut world.net, &mut world.p2p, inc);
                }
            }
            Some(ev) => pl.handle(&mut world.sim, &mut world.net, &mut world.p2p, ev),
            None => {
                if rt.pending() {
                    continue;
                }
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario builders
// ---------------------------------------------------------------------------

fn host(cpu_ghz: f64) -> HostSpec {
    let mut spec = HostSpec::lan_workstation();
    spec.cpu_ghz = cpu_ghz;
    spec
}

/// A real assembled module blob of roughly `approx` bytes, so corruption
/// and hash verification run against genuine TVM bytes. Ends in a small
/// countdown loop so Auto admission produces a tier-2 artifact and the
/// cache-integrity invariant's re-admission determinism check has
/// translated regions to bite on.
fn sized_blob(name: &str, approx: usize) -> tvm::ModuleBlob {
    let mut src = format!(".module {name} 1 0 0\n.func main 1\n");
    for _ in 0..approx / 10 {
        src.push_str(" push 1\n pop\n");
    }
    src.push_str(
        " push 4\n store 0\nloop:\n load 0\n push 1\n sub\n store 0\n load 0\n jnz loop\n halt\n",
    );
    tvm::asm::assemble(&src)
        .expect("static chaos module")
        .to_blob()
}

struct FarmWorld {
    world: GridWorld,
    farm: FarmScheduler,
    ctx: FarmCtx,
    obs: Obs,
    module_key: ModuleKey,
}

/// Build the [`N_ORCH`]-member orchestrator set for a decentralised run:
/// `lead` (the classic controller peer, fastest host) plus two slower
/// peers, eligibility scored from advertised clock at full trust.
fn build_orch_set(
    world: &mut GridWorld,
    lead: PeerId,
    lead_host: HostId,
    seed: u64,
) -> (OrchestratorHandle, Vec<HostId>) {
    let mut specs = vec![OrchestratorSpec {
        peer: lead,
        host: lead_host,
        eligibility: orchestrator_eligibility(2.0, 1.0, 1.0),
    }];
    let mut hosts = vec![lead_host];
    for i in 1..N_ORCH {
        let cpu = 2.0 - i as f64 * 0.2;
        let (peer, h) = world.add_peer(host(cpu));
        hosts.push(h);
        specs.push(OrchestratorSpec {
            peer,
            host: h,
            eligibility: orchestrator_eligibility(cpu, 1.0, 1.0),
        });
    }
    let handle = OrchestratorHandle::new(Orchestrators::new(&specs, seed, OrchConfig::default()));
    (handle, hosts)
}

fn build_farm_world(seed: u64, oracle: &FaultOracle, use_orch: bool, routed: bool) -> FarmWorld {
    let mode = if routed {
        DiscoveryMode::Routed
    } else {
        DiscoveryMode::Flooding
    };
    let mut world = GridWorld::new(seed, mode);
    let obs = Obs::enabled();
    world.sim.set_tap(oracle.tap());
    world.p2p.set_obs(obs.clone());
    world.p2p.set_send_filter(oracle.send_filter());
    let (ctrl, ctrl_host) = world.add_peer(host(2.0));
    let cfg = FarmConfig {
        checkpoint: Some(CheckpointPolicy::every(Duration::from_secs(5), 2_000)),
        swarm: Some(SwarmConfig {
            chunk_bytes: 256,
            ..SwarmConfig::default()
        }),
        trust: Some(GridTrustConfig::adaptive()),
    };
    let mut orch_hosts = Vec::new();
    let mut farm = if use_orch {
        let (handle, hosts) = build_orch_set(&mut world, ctrl, ctrl_host, seed);
        handle.set_obs(obs.clone());
        orch_hosts = hosts;
        FarmScheduler::with_orchestrators(handle, cfg)
    } else {
        FarmScheduler::new(&world, ctrl, cfg)
    };
    farm.set_obs(obs.clone());
    let horizon = SimTime::from_secs(200_000);
    let mut worker_hosts = Vec::with_capacity(N_WORKERS);
    for i in 0..N_WORKERS {
        let spec = host(1.0 + i as f64 * 0.5);
        let (peer, h) = world.add_peer(spec.clone());
        worker_hosts.push(h);
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                // All churn comes from the plan, so runs without faults
                // are a clean baseline.
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 1 << 20,
            },
        );
    }
    let mut rng = Pcg32::new(seed, 0x3333);
    world.p2p.wire_random(3, &mut rng);
    if routed {
        // Bootstrap the DHT up-front (neutral trust profiles: everyone
        // warm, the hot quota promoted deterministically) so rendezvous
        // roles exist before the first publish and `spfl` faults can find
        // a super-peer to fell.
        let profiles = vec![(0.7, 1.0); world.p2p.len()];
        world.p2p.enable_routed(&profiles, &mut rng);
    }
    let module_key = ModuleKey::new("Chaos", 1);
    let blob = sized_blob("Chaos", 2_000);
    let module_blob = BlobId::of_blob(&blob);
    let layout = ChunkLayout::new(blob.len() as u64, 256);
    let module_len = blob.len() as u64;
    farm.library.publish(module_key.clone(), blob);
    FarmWorld {
        world,
        farm,
        ctx: FarmCtx {
            ctrl_host,
            worker_hosts,
            module_blob,
            module_len,
            module_chunks: layout.count(),
            orch_offline: vec![false; orch_hosts.len()],
            orch_cuts: vec![0; orch_hosts.len()],
            orch_hosts,
            poison_rng: Pcg32::new(seed, 0x0007_B150),
        },
        obs,
        module_key,
    }
}

fn farm_job(i: usize, module_key: &ModuleKey) -> JobSpec {
    JobSpec {
        work_gigacycles: 10.0 + (i % 5) as f64 * 8.0,
        input_bytes: 50_000,
        output_bytes: 5_000,
        // Every other job needs the shared module: the swarm, the cache,
        // and the corruption/lie faults all get traffic to chew on.
        module: i.is_multiple_of(2).then(|| module_key.clone()),
    }
}

fn finish_report(
    cfg: &ChaosConfig,
    obs: &Obs,
    stats_line: String,
    oracle: &FaultOracle,
    violations: Vec<Violation>,
) -> RunOutcome {
    let mut report = String::with_capacity(2_048);
    report.push_str("chaos-report v1\n");
    report.push_str(&format!(
        "scenario={} seed={} mutate={} orch={} routed={} plan={}\n",
        cfg.scenario.name(),
        cfg.seed,
        cfg.mutate_drop_output,
        cfg.orch,
        cfg.routed,
        cfg.plan
    ));
    report.push_str(&stats_line);
    report.push('\n');
    let c = oracle.counters();
    report.push_str(&format!(
        "oracle: drops={} dups={} delays={} mutations={}\n",
        c.drops, c.dups, c.delays, c.mutations
    ));
    report.push_str("obs=");
    report.push_str(&obs.snapshot_json().unwrap_or_default());
    report.push('\n');
    if violations.is_empty() {
        report.push_str("violations: none\n");
    } else {
        for v in &violations {
            report.push_str(&format!("violation: {v}\n"));
        }
    }
    RunOutcome {
        digest: fnv1a64(report.as_bytes()),
        report,
        violations,
    }
}

/// Jobs the farm has actually completed, the ground truth the replicated
/// completion set must agree with.
fn farm_done_jobs(farm: &FarmScheduler) -> Vec<u64> {
    (0..farm.n_jobs() as u64)
        .filter(|&j| farm.job_is_done(JobId(j)))
        .collect()
}

fn run_farm_scenario(cfg: &ChaosConfig) -> RunOutcome {
    let oracle = FaultOracle::new(cfg.seed);
    oracle.set_mutate_drop_output(cfg.mutate_drop_output);
    let mut fw = build_farm_world(cfg.seed, &oracle, cfg.orch, cfg.routed);
    for i in 0..N_JOBS {
        let spec = farm_job(i, &fw.module_key);
        fw.farm.submit(&mut fw.world, spec);
    }
    let mut rt = PlanRuntime::new(&cfg.plan, Scenario::Farm);
    rt.schedule_churn(&mut fw.world.sim);
    let mut violations = Vec::new();
    drive_farm(
        &mut fw.world,
        &mut fw.farm,
        &mut rt,
        &oracle,
        &mut fw.ctx,
        &mut violations,
    );
    let reg = fw.obs.registry().expect("obs enabled").clone();
    check_no_stranded_jobs(&fw.farm, &mut violations);
    check_no_starvation(&fw.farm, &mut violations);
    check_exactly_once(&fw.farm, &reg, &mut violations);
    check_dispatch_conservation(&reg, &mut violations);
    check_message_conservation(&reg, oracle.counters(), &mut violations);
    check_cache_integrity(&fw.farm, &fw.world, &mut violations);
    check_overlay_converged(&fw.world.p2p, &mut violations);
    if cfg.orch {
        let done = farm_done_jobs(&fw.farm);
        check_orch_exactly_once(fw.farm.orchestrators(), &done, &mut violations);
        check_orch_replication(fw.farm.orchestrators(), &mut violations);
    }
    let s = fw.farm.stats();
    let stats_line = format!(
        "farm: jobs_done={}/{} attempts={} wasted_us={} makespan_us={}",
        s.jobs_done,
        s.jobs_total,
        s.attempts,
        s.wasted.as_micros(),
        s.makespan.as_micros()
    );
    finish_report(cfg, &fw.obs, stats_line, &oracle, violations)
}

fn run_voting_scenario(cfg: &ChaosConfig) -> RunOutcome {
    let oracle = FaultOracle::new(cfg.seed);
    oracle.set_mutate_drop_output(cfg.mutate_drop_output);
    let mut fw = build_farm_world(cfg.seed, &oracle, cfg.orch, cfg.routed);
    let mut behaviours = vec![Behaviour::Honest; N_WORKERS];
    behaviours[0] = Behaviour::Cheater { cheat_prob: 1.0 };
    let mut voting = VotingFarm::new(RedundancyConfig::triple(), behaviours, cfg.seed);
    voting.set_obs(fw.obs.clone());
    let mut rt = PlanRuntime::new(&cfg.plan, Scenario::Voting);
    rt.schedule_churn(&mut fw.world.sim);
    let mut violations = Vec::new();
    let unit_spec = JobSpec {
        work_gigacycles: 12.0,
        input_bytes: 20_000,
        output_bytes: 2_000,
        module: Some(fw.module_key.clone()),
    };
    // Two waves of units share one plan runtime, so faults land across
    // submission boundaries too.
    for _wave in 0..2 {
        for _ in 0..2 {
            voting.submit_unit(&mut fw.farm, &mut fw.world, unit_spec.clone());
        }
        drive_farm(
            &mut fw.world,
            &mut fw.farm,
            &mut rt,
            &oracle,
            &mut fw.ctx,
            &mut violations,
        );
        for u in 0..voting.units.len() {
            voting.apply_unit(&mut fw.farm, u);
        }
    }
    let reg = fw.obs.registry().expect("obs enabled").clone();
    check_no_stranded_jobs(&fw.farm, &mut violations);
    // No starvation check: replica conflicts can legitimately leave jobs
    // pending while a conflicting worker idles.
    check_exactly_once(&fw.farm, &reg, &mut violations);
    check_dispatch_conservation(&reg, &mut violations);
    check_message_conservation(&reg, oracle.counters(), &mut violations);
    check_cache_integrity(&fw.farm, &fw.world, &mut violations);
    check_overlay_converged(&fw.world.p2p, &mut violations);
    check_voting(&voting, &fw.farm, &mut violations);
    if cfg.orch {
        let done = farm_done_jobs(&fw.farm);
        check_orch_exactly_once(fw.farm.orchestrators(), &done, &mut violations);
        check_orch_replication(fw.farm.orchestrators(), &mut violations);
    }
    let s = fw.farm.stats();
    let stats_line = format!(
        "voting: units={} replicas={} jobs_done={}/{} attempts={}",
        voting.units.len(),
        voting.total_replicas(),
        s.jobs_done,
        s.jobs_total,
        s.attempts
    );
    finish_report(cfg, &fw.obs, stats_line, &oracle, violations)
}

fn run_pipeline_scenario(cfg: &ChaosConfig) -> RunOutcome {
    let oracle = FaultOracle::new(cfg.seed);
    oracle.set_mutate_drop_output(cfg.mutate_drop_output);
    let mode = if cfg.routed {
        // Pipelines take the lazy-bootstrap path: the overlay assembles
        // itself (neutral profiles) on the first publish or query.
        DiscoveryMode::Routed
    } else {
        DiscoveryMode::Flooding
    };
    let mut world = GridWorld::new(cfg.seed, mode);
    let obs = Obs::enabled();
    world.sim.set_tap(oracle.tap());
    world.p2p.set_obs(obs.clone());
    world.p2p.set_send_filter(oracle.send_filter());
    let (ctrl, ctrl_host) = world.add_peer(host(2.0));
    let (orch_set, orch_hosts) = if cfg.orch {
        let (handle, hosts) = build_orch_set(&mut world, ctrl, ctrl_host, cfg.seed);
        handle.set_obs(obs.clone());
        (Some(handle), hosts)
    } else {
        (None, Vec::new())
    };
    let mut stages = Vec::with_capacity(N_STAGES);
    let mut stage_hosts: Vec<HostId> = Vec::with_capacity(N_STAGES);
    for i in 0..N_STAGES {
        let spec = host(1.5 + i as f64 * 0.25);
        let (peer, h) = world.add_peer(spec.clone());
        stage_hosts.push(h);
        stages.push(StageSpec {
            peer,
            spec,
            work_gigacycles: 5.0,
        });
    }
    let mut pl = match orch_set {
        Some(handle) => PipelineScheduler::with_orchestrators(
            &mut world,
            handle,
            "chaos",
            stages,
            10_000,
            Vec::new(),
        ),
        None => PipelineScheduler::new(&mut world, ctrl, "chaos", stages, 10_000),
    };
    pl.set_obs(obs.clone());
    pl.emit_tokens(&mut world.sim, N_TOKENS, Duration::from_secs(1));
    let mut rt = PlanRuntime::new(&cfg.plan, Scenario::Pipeline);
    rt.schedule_churn(&mut world.sim);
    let mut ctx = PipeCtx {
        stage_hosts,
        orch_offline: vec![false; orch_hosts.len()],
        orch_cuts: vec![0; orch_hosts.len()],
        orch_hosts,
    };
    drive_pipeline(&mut world, &mut pl, &mut rt, &oracle, &mut ctx);
    let reg = obs.registry().expect("obs enabled").clone();
    let mut violations = Vec::new();
    check_pipeline(&pl, N_TOKENS, &reg, &mut violations);
    check_message_conservation(&reg, oracle.counters(), &mut violations);
    check_overlay_converged(&world.p2p, &mut violations);
    if cfg.orch {
        let done: Vec<u64> = (0..N_TOKENS)
            .filter(|&t| pl.token_latency(t).is_some())
            .collect();
        check_orch_exactly_once(pl.orchestrators(), &done, &mut violations);
        check_orch_replication(pl.orchestrators(), &mut violations);
    }
    let s = pl.stats();
    let stats_line = format!(
        "pipeline: tokens_done={}/{} emissions={} max_latency_us={}",
        s.tokens_done,
        N_TOKENS,
        s.emissions,
        s.max_latency.as_micros()
    );
    finish_report(cfg, &obs, stats_line, &oracle, violations)
}

/// Run one chaos configuration to completion and audit it.
pub fn run_chaos(cfg: &ChaosConfig) -> RunOutcome {
    match cfg.scenario {
        Scenario::Farm => run_farm_scenario(cfg),
        Scenario::Pipeline => run_pipeline_scenario(cfg),
        Scenario::Voting => run_voting_scenario(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_round_trips_names() {
        for s in [Scenario::Farm, Scenario::Pipeline, Scenario::Voting] {
            assert_eq!(Scenario::parse(s.name()), Some(s));
        }
        assert_eq!(Scenario::parse("nope"), None);
    }

    #[test]
    fn replay_command_is_parseable_back() {
        let cfg = ChaosConfig::from_seed(7);
        let cmd = replay_command(&cfg);
        assert!(cmd.contains("--seed 7"));
        assert!(cmd.contains(&format!("--scenario {}", cfg.scenario.name())));
        assert!(cmd.contains(&format!("\"{}\"", cfg.plan)));
    }

    #[test]
    fn fault_free_scenarios_complete_cleanly() {
        for scenario in [Scenario::Farm, Scenario::Pipeline, Scenario::Voting] {
            let cfg = ChaosConfig {
                seed: 11,
                scenario,
                plan: FaultPlan::empty(),
                mutate_drop_output: false,
                orch: false,
                routed: false,
            };
            let out = run_chaos(&cfg);
            assert!(
                out.ok(),
                "{} baseline violated: {:?}",
                scenario.name(),
                out.violations
            );
        }
    }

    #[test]
    fn fault_free_orch_scenarios_complete_cleanly() {
        // A decentralised orchestrator set with no faults must behave like
        // the single controller: every scenario drains green, no election
        // ever runs, and every replica converges.
        for scenario in [Scenario::Farm, Scenario::Pipeline, Scenario::Voting] {
            let cfg = ChaosConfig {
                seed: 11,
                scenario,
                plan: FaultPlan::empty(),
                mutate_drop_output: false,
                orch: true,
                routed: false,
            };
            let out = run_chaos(&cfg);
            assert!(
                out.ok(),
                "{} orch baseline violated: {:?}",
                scenario.name(),
                out.violations
            );
        }
    }

    #[test]
    fn same_config_replays_byte_identically() {
        for seed in [0, 1, 2, 17, 42] {
            let cfg = ChaosConfig::from_seed(seed);
            let a = run_chaos(&cfg);
            let b = run_chaos(&cfg);
            assert_eq!(a.digest, b.digest, "seed {seed} diverged");
            assert_eq!(a.report, b.report);
        }
    }

    #[test]
    fn mutation_is_caught_shrunk_and_replayable() {
        // The acceptance gate: arm the intentional drop-output bug, prove
        // the invariant checker flags it, shrink the plan to a minimal
        // reproducer, and show the reproducer replays byte-identically.
        let mut cfg = ChaosConfig::from_seed(0); // seed 0 → farm scenario
        cfg.mutate_drop_output = true;
        let out = run_chaos(&cfg);
        assert!(
            !out.ok(),
            "mutation must trip an invariant:\n{}",
            out.report
        );

        let fails = |p: &FaultPlan| {
            let candidate = ChaosConfig {
                plan: p.clone(),
                ..cfg.clone()
            };
            !run_chaos(&candidate).ok()
        };
        let shrunk = crate::shrink::shrink_plan(&cfg.plan, fails);
        // The bug fires with no faults at all, so ddmin strips the plan
        // entirely.
        assert!(
            shrunk.is_empty(),
            "expected empty reproducer, got `{shrunk}`"
        );

        let min_cfg = ChaosConfig {
            plan: shrunk,
            ..cfg.clone()
        };
        let cmd = replay_command(&min_cfg);
        assert!(cmd.contains("--mutate drop-output"), "{cmd}");
        assert!(cmd.contains("--plan \"-\""), "{cmd}");
        let a = run_chaos(&min_cfg);
        let b = run_chaos(&min_cfg);
        assert!(!a.ok());
        assert_eq!(
            a.digest, b.digest,
            "reproducer must replay byte-identically"
        );
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn checkpoint_restart_preserves_progress_under_crash() {
        // Satellite: a mid-run crash with periodic checkpointing must lose
        // at most the work since the last checkpoint, and the job must
        // finish after the restart. One worker, one ~50 s job, checkpoints
        // every 5 s, crash at 26 s, restart at 30 s.
        let oracle = FaultOracle::new(5);
        let mut world = GridWorld::new(5, DiscoveryMode::Flooding);
        world.sim.set_tap(oracle.tap());
        let obs = Obs::enabled();
        world.p2p.set_obs(obs.clone());
        world.p2p.set_send_filter(oracle.send_filter());
        let (ctrl, ctrl_host) = world.add_peer(host(2.0));
        let cfg = FarmConfig {
            checkpoint: Some(CheckpointPolicy::every(Duration::from_secs(5), 2_000)),
            swarm: None,
            trust: None,
        };
        let mut farm = FarmScheduler::new(&world, ctrl, cfg);
        farm.set_obs(obs.clone());
        let spec = host(1.0);
        let (peer, worker_host) = world.add_peer(spec.clone());
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer,
                spec,
                trace: AvailabilityTrace::always(SimTime::from_secs(10_000)),
                cache_bytes: 1 << 20,
            },
        );
        farm.submit(
            &mut world,
            JobSpec {
                work_gigacycles: 50.0,
                input_bytes: 10_000,
                output_bytes: 1_000,
                module: None,
            },
        );
        let plan: FaultPlan = "crash@26000:w0;restart@30000:w0".parse().unwrap();
        let mut rt = PlanRuntime::new(&plan, Scenario::Farm);
        rt.schedule_churn(&mut world.sim);
        let mut ctx = FarmCtx {
            ctrl_host,
            worker_hosts: vec![worker_host],
            module_blob: BlobId::of(&[]),
            module_len: 0,
            module_chunks: 0,
            orch_hosts: Vec::new(),
            orch_offline: Vec::new(),
            orch_cuts: Vec::new(),
            poison_rng: Pcg32::new(5, 0x0007_B150),
        };
        let mut violations = Vec::new();
        drive_farm(
            &mut world,
            &mut farm,
            &mut rt,
            &oracle,
            &mut ctx,
            &mut violations,
        );
        assert!(violations.is_empty(), "{violations:?}");
        let s = farm.stats();
        assert_eq!(s.jobs_done, 1, "job must finish after the restart");
        assert!(
            s.wasted < Duration::from_secs(10),
            "lost more than two checkpoint intervals: {}",
            s.wasted
        );
        assert!(
            s.wasted > Duration::ZERO,
            "a mid-interval crash must waste the uncheckpointed tail"
        );
    }

    #[test]
    fn seed_sweep_smoke_holds_invariants() {
        for seed in 0..30 {
            let cfg = ChaosConfig::from_seed(seed);
            let out = run_chaos(&cfg);
            assert!(
                out.ok(),
                "seed {seed} ({}) violated invariants:\n{}",
                cfg.scenario.name(),
                out.report
            );
        }
    }

    #[test]
    fn orch_seed_sweep_smoke_holds_invariants() {
        for seed in 0..18 {
            let cfg = ChaosConfig::from_seed_orch(seed);
            let out = run_chaos(&cfg);
            assert!(
                out.ok(),
                "orch seed {seed} ({}) violated invariants:\n{}",
                cfg.scenario.name(),
                out.report
            );
            if seed < 6 {
                let again = run_chaos(&cfg);
                assert_eq!(out.digest, again.digest, "orch seed {seed} diverged");
                assert_eq!(out.report, again.report);
            }
        }
    }

    #[test]
    fn leader_crash_handoff_resumes_at_exact_times() {
        // Satellite regression for the handoff/kick fix: crash the active
        // leader (member 0, who owns in-flight jobs and their data plane)
        // mid-run at an exact time and revive it later. The successor must
        // re-elect, reassign orphaned ownership, re-drive Returning jobs,
        // and — crucially — kick the queue so the farm actually finishes
        // instead of stalling until (absent) worker churn.
        let cfg = ChaosConfig {
            seed: 3, // 3 % 3 == 0 → farm scenario
            scenario: Scenario::Farm,
            plan: "octl@26000:o0;orest@30000:o0".parse().unwrap(),
            mutate_drop_output: false,
            orch: true,
            routed: false,
        };
        let out = run_chaos(&cfg);
        assert!(out.ok(), "handoff run violated invariants:\n{}", out.report);
        assert!(
            out.report.contains(&format!("jobs_done={N_JOBS}/{N_JOBS}")),
            "farm must finish every job after the handoff:\n{}",
            out.report
        );
        assert!(
            out.report.contains("\"orch.elections\":1"),
            "the leader crash must run exactly one election:\n{}",
            out.report
        );
        let again = run_chaos(&cfg);
        assert_eq!(
            out.digest, again.digest,
            "handoff run must be deterministic"
        );
    }

    #[test]
    fn requeued_replica_cannot_revote_through_one_cheater() {
        // Regression (long-sweep seed 1697): job conflicts used to be
        // one-directional — a unit's *first* replica carried no conflict
        // entries, so when its worker crashed the requeued job could land
        // on the cheater that had already completed a sibling replica.
        // One bad volunteer then cast two identical wrong digests and won
        // the vote. Conflicts are now symmetric at submit time.
        let cfg = ChaosConfig {
            seed: 1697,
            scenario: Scenario::Voting,
            plan: "crash@7580:w4;skew@37796:w1,28%;skew@45106:w2,10%"
                .parse()
                .unwrap(),
            mutate_drop_output: false,
            orch: false,
            routed: false,
        };
        let out = run_chaos(&cfg);
        assert!(
            out.ok(),
            "one cheater formed a quorum on a requeued replica:\n{}",
            out.report
        );
    }

    #[test]
    fn fault_free_routed_scenarios_complete_cleanly() {
        // The acceptance criterion for structured discovery under the
        // chaos harness: every scenario drains green when discovery runs
        // over the Kademlia overlay instead of flooding, with no faults.
        for scenario in [Scenario::Farm, Scenario::Pipeline, Scenario::Voting] {
            let cfg = ChaosConfig {
                seed: 11,
                scenario,
                plan: FaultPlan::empty(),
                mutate_drop_output: false,
                orch: false,
                routed: true,
            };
            let out = run_chaos(&cfg);
            assert!(
                out.ok(),
                "{} routed baseline violated: {:?}",
                scenario.name(),
                out.violations
            );
        }
    }

    #[test]
    fn routed_seed_sweep_smoke_holds_invariants() {
        let mut any_overlay_fault = false;
        for seed in 0..18 {
            let cfg = ChaosConfig::from_seed_routed(seed);
            any_overlay_fault |= cfg.plan.events.iter().any(|e| {
                matches!(
                    e.kind,
                    FaultKind::RoutePoison { .. } | FaultKind::SuperPeerFail { .. }
                )
            });
            let out = run_chaos(&cfg);
            assert!(
                out.ok(),
                "routed seed {seed} ({}) violated invariants:\n{}",
                cfg.scenario.name(),
                out.report
            );
            if seed < 6 {
                let again = run_chaos(&cfg);
                assert_eq!(out.digest, again.digest, "routed seed {seed} diverged");
                assert_eq!(out.report, again.report);
            }
        }
        assert!(any_overlay_fault, "sweep never exercised an overlay fault");
    }
}
