//! `triana-chaos`: deterministic fault-injection testing for the consumer
//! grid.
//!
//! The paper's volunteers are "unreliable by contract": they crash, lose
//! messages, straggle, and occasionally lie. This crate turns that into a
//! repeatable test discipline over the simulation substrate:
//!
//! 1. [`plan`] — a seeded, serializable, shrinkable schedule of faults
//!    (crash/restart, partitions, discovery drop/duplication, delivery
//!    delay, chunk corruption, clock skew, Byzantine adverts).
//! 2. [`oracle`] — the runtime injector: an event tap on the sim loop plus
//!    a send filter on the p2p overlay, gated by the plan's windows.
//! 3. [`harness`] — builds a grid scenario (farm / pipeline / voting),
//!    replays the plan against it, and digests the run so identical seeds
//!    produce byte-identical reports.
//! 4. [`invariants`] — cross-layer checks at drain: exactly-once
//!    completion, no stranded jobs, no starvation, dispatch/speculation/
//!    message conservation, cache integrity, pipeline liveness, voting
//!    soundness, blacklist respect.
//! 5. [`shrink`] — ddmin + weakening to turn a failing plan into a minimal
//!    reproducer, replayable from one printed command line.
//!
//! The entry points are [`ChaosConfig::from_seed`] → [`run_chaos`]; on
//! failure, [`shrink_plan`] minimises the plan and [`replay_command`]
//! prints the reproduction line.

pub mod harness;
pub mod invariants;
pub mod oracle;
pub mod plan;
pub mod shrink;

pub use harness::{
    replay_command, run_chaos, ChaosConfig, RunOutcome, Scenario, N_ORCH, PLAN_HORIZON_MS,
};
pub use invariants::Violation;
pub use oracle::{ChaosCounters, FaultOracle};
pub use plan::{FaultEvent, FaultKind, FaultPlan, PlanParseError};
pub use shrink::shrink_plan;
