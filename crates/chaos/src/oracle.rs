//! The fault oracle: the runtime half of a fault plan.
//!
//! The oracle owns the message-chaos state (drop/duplicate/delay windows)
//! and plugs into the two injection points the substrate exposes:
//!
//! * [`FaultOracle::tap`] — a [`netsim::EventTap`] installed on the event
//!   loop; it can swallow, duplicate or defer events *between* the queue
//!   and the handler.
//! * [`FaultOracle::send_filter`] — a predicate installed on the p2p
//!   overlay send path; it can discard a message before it ever touches
//!   the network.
//!
//! Safety taxonomy (why each fault is recoverable by design):
//! **drops** are restricted to discovery traffic (`Query`/`QueryHit`/
//! `Publish`) — losing discovery degrades to the controller fallback,
//! while dropping a `PipeData` or a local completion callback would strand
//! a token/job with no recovery path in the protocol; **duplicates** are
//! likewise restricted to discovery messages (receivers dedup hits and
//! adverts); **delays** may hit any overlay delivery because reordering is
//! something every handler must already tolerate. The `drop-output`
//! mutation deliberately breaks this taxonomy to prove the invariant
//! checker catches protocol-level loss.

use netsim::{Duration, EventTap, Intercept, Pcg32, SimTime};
use p2p::{Message, P2pEvent, PeerId};
use std::cell::RefCell;
use std::rc::Rc;
use triana_core::grid::GridEvent;

fn is_discovery(msg: &Message) -> bool {
    // Flood-mode discovery plus the routed overlay's lookup/store traffic:
    // all of it is loss-tolerant (requests re-fire via lookup timeouts,
    // provider stores are republished) and idempotent under duplication,
    // so the oracle may drop and dup it freely without wedging the grid.
    matches!(
        msg,
        Message::Query { .. }
            | Message::QueryHit { .. }
            | Message::Publish { .. }
            | Message::FindNode { .. }
            | Message::FindNodeReply { .. }
            | Message::FindValue { .. }
            | Message::FindValueReply { .. }
            | Message::StoreProvider { .. }
    )
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosCounters {
    /// Discovery messages discarded at the send path.
    pub drops: u64,
    /// Extra overlay deliveries injected (each adds one receive).
    pub dups: u64,
    /// Overlay deliveries deferred at least once.
    pub delays: u64,
    /// Events swallowed by the `drop-output` mutation.
    pub mutations: u64,
}

struct OracleState {
    rng: Pcg32,
    drop_until: SimTime,
    drop_pct: u8,
    dup_until: SimTime,
    dup_pct: u8,
    delay_until: SimTime,
    delay_pct: u8,
    delay_max: Duration,
    counters: ChaosCounters,
    mutate_drop_output: bool,
}

/// Shared handle over the oracle state: the tap, the send filter, the
/// driver (window updates) and the invariant checker (counters) all hold
/// clones of it.
#[derive(Clone)]
pub struct FaultOracle {
    state: Rc<RefCell<OracleState>>,
}

impl FaultOracle {
    pub fn new(seed: u64) -> Self {
        FaultOracle {
            state: Rc::new(RefCell::new(OracleState {
                rng: Pcg32::new(seed, 0x0DDC),
                drop_until: SimTime::ZERO,
                drop_pct: 0,
                dup_until: SimTime::ZERO,
                dup_pct: 0,
                delay_until: SimTime::ZERO,
                delay_pct: 0,
                delay_max: Duration::ZERO,
                counters: ChaosCounters::default(),
                mutate_drop_output: false,
            })),
        }
    }

    /// Arm the `drop-output` mutation: the tap swallows the first
    /// `OutputArrived` it sees, losing a delivered result at the protocol
    /// layer. Used to prove the invariant checker + shrinker catch it.
    pub fn set_mutate_drop_output(&self, on: bool) {
        self.state.borrow_mut().mutate_drop_output = on;
    }

    pub fn set_drop_window(&self, until: SimTime, pct: u8) {
        let mut s = self.state.borrow_mut();
        s.drop_until = until;
        s.drop_pct = pct;
    }

    pub fn set_dup_window(&self, until: SimTime, pct: u8) {
        let mut s = self.state.borrow_mut();
        s.dup_until = until;
        s.dup_pct = pct;
    }

    pub fn set_delay_window(&self, until: SimTime, pct: u8, max: Duration) {
        let mut s = self.state.borrow_mut();
        s.delay_until = until;
        s.delay_pct = pct;
        s.delay_max = max;
    }

    pub fn counters(&self) -> ChaosCounters {
        self.state.borrow().counters
    }

    /// The overlay send filter half: install with `P2p::set_send_filter`.
    #[allow(clippy::type_complexity)]
    pub fn send_filter(&self) -> Box<dyn FnMut(SimTime, PeerId, PeerId, &Message) -> bool> {
        let state = Rc::clone(&self.state);
        Box::new(move |now, _from, _to, msg| {
            let mut s = state.borrow_mut();
            if now < s.drop_until && is_discovery(msg) {
                let pct = s.drop_pct as u64;
                if s.rng.below(100) < pct {
                    s.counters.drops += 1;
                    return false;
                }
            }
            true
        })
    }

    /// The event-tap half: install with `Sim::set_tap`.
    pub fn tap(&self) -> Box<dyn EventTap<GridEvent>> {
        struct Tap(Rc<RefCell<OracleState>>);
        impl EventTap<GridEvent> for Tap {
            fn intercept(&mut self, now: SimTime, ev: GridEvent) -> Intercept<GridEvent> {
                let mut s = self.0.borrow_mut();
                if s.mutate_drop_output && s.counters.mutations == 0 {
                    if let GridEvent::OutputArrived { .. } = ev {
                        s.counters.mutations += 1;
                        return Intercept::Drop;
                    }
                }
                if let GridEvent::P2p(P2pEvent::Delivered { msg, .. }) = &ev {
                    if now < s.dup_until && is_discovery(msg) {
                        let pct = s.dup_pct as u64;
                        if s.rng.below(100) < pct {
                            s.counters.dups += 1;
                            let jitter = Duration::from_micros(1_000 + s.rng.below(50_000));
                            let copy = ev.clone();
                            return Intercept::DeliverAndSchedule(ev, jitter, copy);
                        }
                    }
                    if now < s.delay_until {
                        let pct = s.delay_pct as u64;
                        if s.rng.below(100) < pct {
                            s.counters.delays += 1;
                            let max = s.delay_max.as_micros().max(1);
                            let d = Duration::from_micros(1 + s.rng.below(max));
                            return Intercept::Reschedule(d, ev);
                        }
                    }
                }
                Intercept::Deliver(ev)
            }
        }
        Box::new(Tap(Rc::clone(&self.state)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_gate_the_filter() {
        let oracle = FaultOracle::new(1);
        let mut filter = oracle.send_filter();
        let q = Message::Query {
            id: p2p::QueryId(1),
            origin: PeerId(0),
            prev_hop: PeerId(0),
            ttl: 2,
            kind: p2p::QueryKind::ByService("x".into()),
        };
        // No window armed: everything passes.
        for _ in 0..50 {
            assert!(filter(SimTime::ZERO, PeerId(0), PeerId(1), &q));
        }
        // A 100% drop window eats every discovery message inside it…
        oracle.set_drop_window(SimTime::from_secs(10), 100);
        assert!(!filter(SimTime::from_secs(1), PeerId(0), PeerId(1), &q));
        // …but not past its end.
        assert!(filter(SimTime::from_secs(10), PeerId(0), PeerId(1), &q));
        assert_eq!(oracle.counters().drops, 1);
    }

    #[test]
    fn drop_filter_never_touches_pipe_data() {
        let oracle = FaultOracle::new(2);
        oracle.set_drop_window(SimTime::from_secs(1_000), 100);
        let mut filter = oracle.send_filter();
        let data = Message::PipeData {
            pipe: p2p::PipeId(3),
            tag: 7,
            bytes: 100,
        };
        for _ in 0..50 {
            assert!(filter(SimTime::ZERO, PeerId(0), PeerId(1), &data));
        }
        assert_eq!(oracle.counters().drops, 0);
    }
}
