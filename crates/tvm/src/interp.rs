//! The interpreter: executes a verified module under a sandbox policy.
//!
//! Execution is fully deterministic: f64 arithmetic only, no clock, no
//! randomness, no host state (unless `HostIo` is granted, and even then the
//! simulated syscall is a pure function). The instruction count returned in
//! [`ExecStats`] doubles as the *work metering* signal the Consumer Grid
//! uses for billing (paper §2: "the shell would also maintain billing
//! information for resources used").

use crate::isa::Op;
use crate::module::Module;
use crate::sandbox::SandboxPolicy;
use crate::verify::{verify, VerifyError};
use std::fmt;

/// Runtime failure of a sandboxed execution.
#[derive(Clone, Debug, PartialEq)]
pub enum TvmError {
    /// Static verification failed; the module was never started.
    Verify(VerifyError),
    /// Supplied input port count does not match the module signature.
    BadArity {
        expected: u8,
        got: usize,
    },
    StackUnderflow,
    StackOverflow,
    CallDepthExceeded,
    /// The sandbox instruction budget was exhausted (runaway / hostile code).
    BudgetExceeded,
    /// Output ports exceeded the sandbox cell cap.
    OutputLimitExceeded,
    /// An `InGet`/`OutSet` index was negative, non-finite, or out of bounds.
    IndexOutOfBounds {
        port: u8,
        index: f64,
    },
    /// `HostIo` executed without the capability.
    HostIoDenied,
}

impl fmt::Display for TvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TvmError::*;
        match self {
            Verify(e) => write!(f, "verification failed: {e}"),
            BadArity { expected, got } => {
                write!(f, "expected {expected} input ports, got {got}")
            }
            StackUnderflow => write!(f, "operand stack underflow"),
            StackOverflow => write!(f, "operand stack overflow"),
            CallDepthExceeded => write!(f, "call depth exceeded"),
            BudgetExceeded => write!(f, "instruction budget exceeded"),
            OutputLimitExceeded => write!(f, "output cell limit exceeded"),
            IndexOutOfBounds { port, index } => {
                write!(f, "index {index} out of bounds on port {port}")
            }
            HostIoDenied => write!(f, "host I/O denied by sandbox"),
        }
    }
}

impl std::error::Error for TvmError {}

/// Metering results from a completed run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired.
    pub instructions: u64,
    /// High-water operand stack depth.
    pub max_stack: usize,
}

struct Frame {
    func: usize,
    pc: usize,
    locals: Vec<f64>,
}

/// Execute `module` on `inputs` under `policy`. Verifies first, then runs
/// function 0 from instruction 0. Returns the output ports and metering.
pub fn execute(
    module: &Module,
    inputs: &[&[f64]],
    policy: &SandboxPolicy,
) -> Result<(Vec<Vec<f64>>, ExecStats), TvmError> {
    verify(module).map_err(TvmError::Verify)?;
    if inputs.len() != module.n_inputs as usize {
        return Err(TvmError::BadArity {
            expected: module.n_inputs,
            got: inputs.len(),
        });
    }
    let mut outputs: Vec<Vec<f64>> = vec![Vec::new(); module.n_outputs as usize];
    let mut out_cells = 0usize;
    let mut stack: Vec<f64> = Vec::with_capacity(64);
    let mut stats = ExecStats::default();
    // The running frame lives outside the frame stack so the hot loop can
    // mutate it without re-fetching `frames.last_mut()` per instruction;
    // `frames` holds only suspended callers (depth = frames.len() + 1).
    let mut cur = Frame {
        func: 0,
        pc: 0,
        locals: vec![0.0; module.functions[0].n_locals as usize],
    };
    let mut frames: Vec<Frame> = Vec::new();

    macro_rules! pop {
        () => {
            stack.pop().ok_or(TvmError::StackUnderflow)?
        };
    }
    macro_rules! push {
        ($v:expr) => {{
            if stack.len() >= policy.max_stack {
                return Err(TvmError::StackOverflow);
            }
            stack.push($v);
            stats.max_stack = stats.max_stack.max(stack.len());
        }};
    }
    macro_rules! binop {
        ($f:expr) => {{
            let b = pop!();
            let a = pop!();
            push!($f(a, b));
        }};
    }
    macro_rules! unop {
        ($f:expr) => {{
            let a = pop!();
            push!($f(a));
        }};
    }

    'run: loop {
        // Re-borrow the current function's code only when the frame
        // changes (call/return), not per instruction.
        let code = &module.functions[cur.func].code;
        loop {
            if stats.instructions >= policy.max_instructions {
                return Err(TvmError::BudgetExceeded);
            }
            stats.instructions += 1;
            // The verifier guarantees the last instruction is a terminator
            // and jumps are in range, so pc is always valid.
            let op = code[cur.pc];
            cur.pc += 1;
            match op {
                Op::Push(x) => push!(x),
                Op::Pop => {
                    pop!();
                }
                Op::Dup => {
                    let a = *stack.last().ok_or(TvmError::StackUnderflow)?;
                    push!(a);
                }
                Op::Swap => {
                    let n = stack.len();
                    if n < 2 {
                        return Err(TvmError::StackUnderflow);
                    }
                    stack.swap(n - 1, n - 2);
                }
                Op::Over => {
                    let n = stack.len();
                    if n < 2 {
                        return Err(TvmError::StackUnderflow);
                    }
                    let a = stack[n - 2];
                    push!(a);
                }
                Op::Load(i) => {
                    let v = cur.locals[i as usize];
                    push!(v);
                }
                Op::Store(i) => {
                    let v = pop!();
                    cur.locals[i as usize] = v;
                }
                Op::Add => binop!(|a: f64, b: f64| a + b),
                Op::Sub => binop!(|a: f64, b: f64| a - b),
                Op::Mul => binop!(|a: f64, b: f64| a * b),
                Op::Div => binop!(|a: f64, b: f64| a / b),
                Op::Rem => binop!(|a: f64, b: f64| a % b),
                Op::Min => binop!(|a: f64, b: f64| a.min(b)),
                Op::Max => binop!(|a: f64, b: f64| a.max(b)),
                Op::Pow => binop!(|a: f64, b: f64| a.powf(b)),
                Op::Neg => unop!(|a: f64| -a),
                Op::Abs => unop!(|a: f64| a.abs()),
                Op::Floor => unop!(|a: f64| a.floor()),
                Op::Sqrt => unop!(|a: f64| a.sqrt()),
                Op::Sin => unop!(|a: f64| a.sin()),
                Op::Cos => unop!(|a: f64| a.cos()),
                Op::Exp => unop!(|a: f64| a.exp()),
                Op::Ln => unop!(|a: f64| a.ln()),
                Op::Eq => binop!(|a, b| bool_f(a == b)),
                Op::Ne => binop!(|a, b| bool_f(a != b)),
                Op::Lt => binop!(|a, b| bool_f(a < b)),
                Op::Le => binop!(|a, b| bool_f(a <= b)),
                Op::Gt => binop!(|a, b| bool_f(a > b)),
                Op::Ge => binop!(|a, b| bool_f(a >= b)),
                Op::Jmp(t) => cur.pc = t as usize,
                Op::Jz(t) => {
                    let c = pop!();
                    if c == 0.0 {
                        cur.pc = t as usize;
                    }
                }
                Op::Jnz(t) => {
                    let c = pop!();
                    if c != 0.0 {
                        cur.pc = t as usize;
                    }
                }
                Op::Call(t) => {
                    if frames.len() + 1 >= policy.max_call_depth {
                        return Err(TvmError::CallDepthExceeded);
                    }
                    let callee = Frame {
                        func: t as usize,
                        pc: 0,
                        locals: vec![0.0; module.functions[t as usize].n_locals as usize],
                    };
                    frames.push(std::mem::replace(&mut cur, callee));
                    continue 'run;
                }
                Op::Ret => match frames.pop() {
                    Some(f) => {
                        cur = f;
                        continue 'run;
                    }
                    None => break 'run,
                },
                Op::Halt => break 'run,
                Op::InLen(p) => push!(inputs[p as usize].len() as f64),
                Op::InGet(p) => {
                    let idx = pop!();
                    let port = inputs[p as usize];
                    let i = to_index(idx, port.len()).ok_or(TvmError::IndexOutOfBounds {
                        port: p,
                        index: idx,
                    })?;
                    push!(port[i]);
                }
                Op::OutPush(p) => {
                    let v = pop!();
                    if out_cells >= policy.max_output_cells {
                        return Err(TvmError::OutputLimitExceeded);
                    }
                    out_cells += 1;
                    outputs[p as usize].push(v);
                }
                Op::OutSet(p) => {
                    let v = pop!();
                    let idx = pop!();
                    let out = &mut outputs[p as usize];
                    let i = to_raw_index(idx).ok_or(TvmError::IndexOutOfBounds {
                        port: p,
                        index: idx,
                    })?;
                    if i >= out.len() {
                        let grow = i + 1 - out.len();
                        if out_cells + grow > policy.max_output_cells {
                            return Err(TvmError::OutputLimitExceeded);
                        }
                        out_cells += grow;
                        out.resize(i + 1, 0.0);
                    }
                    out[i] = v;
                }
                Op::OutLen(p) => push!(outputs[p as usize].len() as f64),
                Op::HostIo(_) => {
                    if !policy.allow_host_io {
                        return Err(TvmError::HostIoDenied);
                    }
                    let _arg = pop!();
                    push!(0.0); // simulated syscall result
                }
            }
        }
    }
    Ok((outputs, stats))
}

/// Instrumented variant of [`execute`]: identical semantics, but records
/// metering counters into `observer` (a no-op when the handle is disabled).
///
/// Counters: `tvm.executions`, `tvm.instructions`, `tvm.errors`, plus
/// per-kind sandbox violation counters (`tvm.violations.budget`,
/// `tvm.violations.stack`, `tvm.violations.output`, `tvm.violations.host_io`).
/// `tvm.max_stack` tracks the high-water operand stack depth as a gauge and
/// `tvm.instructions_per_run` the per-run instruction histogram.
pub fn execute_obs(
    module: &Module,
    inputs: &[&[f64]],
    policy: &SandboxPolicy,
    observer: &obs::Obs,
) -> Result<(Vec<Vec<f64>>, ExecStats), TvmError> {
    let result = execute(module, inputs, policy);
    if observer.is_enabled() {
        let slim = result.as_ref().map(|(_, s)| *s).map_err(Clone::clone);
        record_execution(observer, &slim);
    }
    result
}

/// Shared metering for both execution paths ([`execute_obs`] and
/// [`crate::prepared::PreparedModule::execute_obs`]), so the prepared
/// pipeline moves exactly the same `tvm.*` counters as the legacy one.
pub(crate) fn record_execution(observer: &obs::Obs, result: &Result<ExecStats, TvmError>) {
    observer.incr("tvm.executions");
    match result {
        Ok(stats) => {
            observer.add("tvm.instructions", stats.instructions);
            observer.gauge_max("tvm.max_stack", stats.max_stack as i64);
            observer.observe("tvm.instructions_per_run", stats.instructions);
        }
        Err(e) => {
            observer.incr("tvm.errors");
            match e {
                TvmError::BudgetExceeded => observer.incr("tvm.violations.budget"),
                TvmError::StackOverflow | TvmError::CallDepthExceeded => {
                    observer.incr("tvm.violations.stack")
                }
                TvmError::OutputLimitExceeded => observer.incr("tvm.violations.output"),
                TvmError::HostIoDenied => observer.incr("tvm.violations.host_io"),
                _ => {}
            }
        }
    }
}

fn bool_f(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

fn to_index(x: f64, len: usize) -> Option<usize> {
    let i = to_raw_index(x)?;
    (i < len).then_some(i)
}

fn to_raw_index(x: f64) -> Option<usize> {
    if !x.is_finite() || x < 0.0 || x > (1u64 << 52) as f64 {
        return None;
    }
    Some(x as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Function;
    use Op::*;

    fn module1(code: Vec<Op>, n_locals: u16, n_inputs: u8, n_outputs: u8) -> Module {
        Module {
            name: "t".into(),
            version: 1,
            n_inputs,
            n_outputs,
            functions: vec![Function {
                name: "main".into(),
                n_locals,
                code,
            }],
        }
    }

    #[test]
    fn execute_obs_records_metering_and_violations() {
        let observer = obs::Obs::enabled();
        let m = module1(
            vec![Push(3.0), Push(4.0), Add, Push(2.0), Mul, OutPush(0), Halt],
            0,
            0,
            1,
        );
        let (out, stats) = execute_obs(&m, &[], &SandboxPolicy::standard(), &observer).unwrap();
        assert_eq!(out, vec![vec![14.0]]);
        let reg = observer.registry().unwrap();
        assert_eq!(reg.counter_value("tvm.executions"), 1);
        assert_eq!(reg.counter_value("tvm.instructions"), stats.instructions);
        assert!(reg.gauge_value("tvm.max_stack").unwrap() >= 2);

        // A runaway loop trips the budget and is tallied per violation kind.
        let runaway = module1(vec![Jmp(0), Halt], 0, 0, 0);
        let tight = SandboxPolicy {
            max_instructions: 100,
            ..SandboxPolicy::standard()
        };
        let err = execute_obs(&runaway, &[], &tight, &observer).unwrap_err();
        assert_eq!(err, TvmError::BudgetExceeded);
        assert_eq!(reg.counter_value("tvm.executions"), 2);
        assert_eq!(reg.counter_value("tvm.errors"), 1);
        assert_eq!(reg.counter_value("tvm.violations.budget"), 1);

        // Disabled handle records nothing and changes nothing.
        let (out2, _) = execute_obs(&m, &[], &SandboxPolicy::standard(), &obs::Obs::disabled())
            .expect("disabled observer must not affect execution");
        assert_eq!(out2, vec![vec![14.0]]);
        assert_eq!(reg.counter_value("tvm.executions"), 2);
    }

    #[test]
    fn arithmetic_and_output() {
        // (3 + 4) * 2 -> out0
        let m = module1(
            vec![Push(3.0), Push(4.0), Add, Push(2.0), Mul, OutPush(0), Halt],
            0,
            0,
            1,
        );
        let (out, stats) = execute(&m, &[], &SandboxPolicy::standard()).unwrap();
        assert_eq!(out, vec![vec![14.0]]);
        assert_eq!(stats.instructions, 7);
        assert!(stats.max_stack >= 2);
    }

    #[test]
    fn doubler_loop_over_input() {
        let m = module1(
            vec![
                InLen(0),
                Store(0),
                Push(0.0),
                Store(1),
                // loop head @4
                Load(1),
                Load(0),
                Lt,
                Jz(18),
                Load(1),
                InGet(0),
                Push(2.0),
                Mul,
                OutPush(0),
                Load(1),
                Push(1.0),
                Add,
                Store(1),
                Jmp(4),
                Halt,
            ],
            2,
            1,
            1,
        );
        let input = [1.0, 2.5, -3.0];
        let (out, _) = execute(&m, &[&input], &SandboxPolicy::standard()).unwrap();
        assert_eq!(out[0], vec![2.0, 5.0, -6.0]);
    }

    #[test]
    fn function_calls_share_the_operand_stack() {
        // fn1 squares top of stack; main calls it twice on 3 -> 81.
        let m = Module {
            name: "sq".into(),
            version: 1,
            n_inputs: 0,
            n_outputs: 1,
            functions: vec![
                Function {
                    name: "main".into(),
                    n_locals: 0,
                    code: vec![Push(3.0), Call(1), Call(1), OutPush(0), Halt],
                },
                Function {
                    name: "square".into(),
                    n_locals: 0,
                    code: vec![Dup, Mul, Ret],
                },
            ],
        };
        let (out, _) = execute(&m, &[], &SandboxPolicy::standard()).unwrap();
        assert_eq!(out[0], vec![81.0]);
    }

    #[test]
    fn budget_kills_infinite_loop() {
        let m = module1(vec![Jmp(0)], 0, 0, 0);
        let policy = SandboxPolicy {
            max_instructions: 10_000,
            ..SandboxPolicy::standard()
        };
        assert_eq!(execute(&m, &[], &policy), Err(TvmError::BudgetExceeded));
    }

    #[test]
    fn stack_overflow_detected() {
        // push forever
        let m = module1(vec![Push(1.0), Jmp(0)], 0, 0, 0);
        let policy = SandboxPolicy {
            max_stack: 100,
            ..SandboxPolicy::standard()
        };
        assert_eq!(execute(&m, &[], &policy), Err(TvmError::StackOverflow));
    }

    #[test]
    fn output_limit_enforced_for_push_and_set() {
        let m = module1(vec![Push(1.0), OutPush(0), Jmp(0)], 0, 0, 1);
        let policy = SandboxPolicy {
            max_output_cells: 50,
            ..SandboxPolicy::standard()
        };
        assert_eq!(
            execute(&m, &[], &policy),
            Err(TvmError::OutputLimitExceeded)
        );
        // OutSet with a huge index must also be capped (no OOM from one op).
        let m = module1(vec![Push(1e9), Push(7.0), OutSet(0), Halt], 0, 0, 1);
        assert_eq!(
            execute(&m, &[], &policy),
            Err(TvmError::OutputLimitExceeded)
        );
    }

    #[test]
    fn outset_zero_extends() {
        let m = module1(
            vec![Push(3.0), Push(9.0), OutSet(0), OutLen(0), OutPush(0), Halt],
            0,
            0,
            1,
        );
        let (out, _) = execute(&m, &[], &SandboxPolicy::standard()).unwrap();
        assert_eq!(out[0], vec![0.0, 0.0, 0.0, 9.0, 4.0]);
    }

    #[test]
    fn host_io_requires_capability() {
        let m = module1(vec![Push(1.0), HostIo(0), Pop, Halt], 0, 0, 0);
        assert_eq!(
            execute(&m, &[], &SandboxPolicy::standard()),
            Err(TvmError::HostIoDenied)
        );
        assert!(execute(&m, &[], &SandboxPolicy::trusted()).is_ok());
    }

    #[test]
    fn bad_input_index_is_an_error_not_ub() {
        let input = [1.0, 2.0];
        for idx in [5.0, -1.0, f64::NAN, f64::INFINITY] {
            let m = module1(vec![Push(idx), InGet(0), Pop, Halt], 0, 1, 0);
            let r = execute(&m, &[&input], &SandboxPolicy::standard());
            assert!(
                matches!(r, Err(TvmError::IndexOutOfBounds { port: 0, .. })),
                "idx {idx}: {r:?}"
            );
        }
    }

    #[test]
    fn arity_mismatch_rejected() {
        let m = module1(vec![Halt], 0, 2, 0);
        let one = [1.0];
        assert_eq!(
            execute(&m, &[&one], &SandboxPolicy::standard()),
            Err(TvmError::BadArity {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn unverifiable_module_never_runs() {
        let m = module1(vec![Jmp(99)], 0, 0, 0);
        assert!(matches!(
            execute(&m, &[], &SandboxPolicy::standard()),
            Err(TvmError::Verify(_))
        ));
    }

    #[test]
    fn call_depth_limited() {
        // main calls itself forever.
        let m = module1(vec![Call(0), Ret], 0, 0, 0);
        let policy = SandboxPolicy {
            max_call_depth: 8,
            ..SandboxPolicy::standard()
        };
        assert_eq!(execute(&m, &[], &policy), Err(TvmError::CallDepthExceeded));
    }

    #[test]
    fn comparisons_push_unit_floats() {
        let m = module1(
            vec![
                Push(2.0),
                Push(3.0),
                Lt,
                OutPush(0),
                Push(2.0),
                Push(3.0),
                Ge,
                OutPush(0),
                Halt,
            ],
            0,
            0,
            1,
        );
        let (out, _) = execute(&m, &[], &SandboxPolicy::standard()).unwrap();
        assert_eq!(out[0], vec![1.0, 0.0]);
    }

    #[test]
    fn determinism_same_inputs_same_outputs() {
        let m = module1(
            vec![Push(0.5), Sin, Push(1.5), Pow, Sqrt, OutPush(0), Halt],
            0,
            0,
            1,
        );
        let a = execute(&m, &[], &SandboxPolicy::standard()).unwrap();
        let b = execute(&m, &[], &SandboxPolicy::standard()).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }
}
