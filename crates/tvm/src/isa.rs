//! Instruction set and bytecode encoding.
//!
//! A compact, fixed-meaning ISA: all arithmetic is on `f64`; comparisons
//! push 1.0/0.0; control flow uses absolute instruction indices (validated
//! by the verifier). Port I/O instructions are the unit ABI.

use std::fmt;

/// One TVM instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    // --- stack ---
    /// Push a constant.
    Push(f64),
    Pop,
    /// Duplicate the top of stack.
    Dup,
    /// Swap the two top elements.
    Swap,
    /// Push a copy of the second element.
    Over,

    // --- locals ---
    Load(u16),
    Store(u16),

    // --- arithmetic (pop b, pop a, push a∘b) ---
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Neg,
    Abs,
    Min,
    Max,
    Floor,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Ln,
    /// pop b, pop a, push a^b
    Pow,

    // --- comparisons (push 1.0 or 0.0) ---
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,

    // --- control flow (absolute target within the function) ---
    Jmp(u32),
    /// Jump if popped value == 0.0.
    Jz(u32),
    /// Jump if popped value != 0.0.
    Jnz(u32),
    /// Call function by index in the module's function table.
    Call(u16),
    Ret,
    Halt,

    // --- port I/O (the unit ABI) ---
    /// Push the length of input port `p`.
    InLen(u8),
    /// Pop index, push `inputs[p][index]`.
    InGet(u8),
    /// Pop value, append it to output port `p`.
    OutPush(u8),
    /// Pop value, pop index, set `outputs[p][index] = value`
    /// (zero-extending the port if needed, subject to the sandbox cap).
    OutSet(u8),
    /// Push the current length of output port `p`.
    OutLen(u8),

    // --- host access (capability-gated) ---
    /// Simulated host system call `n`; denied unless the sandbox grants
    /// `allow_host_io`. Pops one argument, pushes one result (0.0).
    HostIo(u8),
}

impl Op {
    /// Bytecode opcode byte.
    fn opcode(&self) -> u8 {
        use Op::*;
        match self {
            Push(_) => 0x01,
            Pop => 0x02,
            Dup => 0x03,
            Swap => 0x04,
            Over => 0x05,
            Load(_) => 0x10,
            Store(_) => 0x11,
            Add => 0x20,
            Sub => 0x21,
            Mul => 0x22,
            Div => 0x23,
            Rem => 0x24,
            Neg => 0x25,
            Abs => 0x26,
            Min => 0x27,
            Max => 0x28,
            Floor => 0x29,
            Sqrt => 0x2A,
            Sin => 0x2B,
            Cos => 0x2C,
            Exp => 0x2D,
            Ln => 0x2E,
            Pow => 0x2F,
            Eq => 0x30,
            Ne => 0x31,
            Lt => 0x32,
            Le => 0x33,
            Gt => 0x34,
            Ge => 0x35,
            Jmp(_) => 0x40,
            Jz(_) => 0x41,
            Jnz(_) => 0x42,
            Call(_) => 0x43,
            Ret => 0x44,
            Halt => 0x45,
            InLen(_) => 0x50,
            InGet(_) => 0x51,
            OutPush(_) => 0x52,
            OutSet(_) => 0x53,
            OutLen(_) => 0x54,
            HostIo(_) => 0x60,
        }
    }

    /// Append the binary encoding to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        use Op::*;
        out.push(self.opcode());
        match *self {
            Push(x) => out.extend_from_slice(&x.to_le_bytes()),
            Load(i) | Store(i) | Call(i) => out.extend_from_slice(&i.to_le_bytes()),
            Jmp(t) | Jz(t) | Jnz(t) => out.extend_from_slice(&t.to_le_bytes()),
            InLen(p) | InGet(p) | OutPush(p) | OutSet(p) | OutLen(p) | HostIo(p) => out.push(p),
            _ => {}
        }
    }

    /// Decode one instruction from `bytes[*pos..]`, advancing `pos`.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Result<Op, DecodeError> {
        use Op::*;
        let op = *bytes.get(*pos).ok_or(DecodeError::Truncated)?;
        *pos += 1;
        let f64_arg = |pos: &mut usize| -> Result<f64, DecodeError> {
            let b = bytes.get(*pos..*pos + 8).ok_or(DecodeError::Truncated)?;
            *pos += 8;
            Ok(f64::from_le_bytes(b.try_into().unwrap()))
        };
        let u16_arg = |pos: &mut usize| -> Result<u16, DecodeError> {
            let b = bytes.get(*pos..*pos + 2).ok_or(DecodeError::Truncated)?;
            *pos += 2;
            Ok(u16::from_le_bytes(b.try_into().unwrap()))
        };
        let u32_arg = |pos: &mut usize| -> Result<u32, DecodeError> {
            let b = bytes.get(*pos..*pos + 4).ok_or(DecodeError::Truncated)?;
            *pos += 4;
            Ok(u32::from_le_bytes(b.try_into().unwrap()))
        };
        let u8_arg = |pos: &mut usize| -> Result<u8, DecodeError> {
            let b = *bytes.get(*pos).ok_or(DecodeError::Truncated)?;
            *pos += 1;
            Ok(b)
        };
        Ok(match op {
            0x01 => Push(f64_arg(pos)?),
            0x02 => Pop,
            0x03 => Dup,
            0x04 => Swap,
            0x05 => Over,
            0x10 => Load(u16_arg(pos)?),
            0x11 => Store(u16_arg(pos)?),
            0x20 => Add,
            0x21 => Sub,
            0x22 => Mul,
            0x23 => Div,
            0x24 => Rem,
            0x25 => Neg,
            0x26 => Abs,
            0x27 => Min,
            0x28 => Max,
            0x29 => Floor,
            0x2A => Sqrt,
            0x2B => Sin,
            0x2C => Cos,
            0x2D => Exp,
            0x2E => Ln,
            0x2F => Pow,
            0x30 => Eq,
            0x31 => Ne,
            0x32 => Lt,
            0x33 => Le,
            0x34 => Gt,
            0x35 => Ge,
            0x40 => Jmp(u32_arg(pos)?),
            0x41 => Jz(u32_arg(pos)?),
            0x42 => Jnz(u32_arg(pos)?),
            0x43 => Call(u16_arg(pos)?),
            0x44 => Ret,
            0x45 => Halt,
            0x50 => InLen(u8_arg(pos)?),
            0x51 => InGet(u8_arg(pos)?),
            0x52 => OutPush(u8_arg(pos)?),
            0x53 => OutSet(u8_arg(pos)?),
            0x54 => OutLen(u8_arg(pos)?),
            0x60 => HostIo(u8_arg(pos)?),
            other => return Err(DecodeError::BadOpcode(other)),
        })
    }
}

/// Bytecode decoding failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    Truncated,
    BadOpcode(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "bytecode truncated"),
            DecodeError::BadOpcode(b) => write!(f, "bad opcode 0x{b:02X}"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ops() -> Vec<Op> {
        use Op::*;
        vec![
            Push(3.25),
            Pop,
            Dup,
            Swap,
            Over,
            Load(7),
            Store(65535),
            Add,
            Sub,
            Mul,
            Div,
            Rem,
            Neg,
            Abs,
            Min,
            Max,
            Floor,
            Sqrt,
            Sin,
            Cos,
            Exp,
            Ln,
            Pow,
            Eq,
            Ne,
            Lt,
            Le,
            Gt,
            Ge,
            Jmp(0),
            Jz(123456),
            Jnz(u32::MAX),
            Call(3),
            Ret,
            Halt,
            InLen(0),
            InGet(1),
            OutPush(2),
            OutSet(3),
            OutLen(255),
            HostIo(9),
        ]
    }

    #[test]
    fn encode_decode_round_trips_every_op() {
        for op in all_ops() {
            let mut buf = Vec::new();
            op.encode(&mut buf);
            let mut pos = 0;
            let back = Op::decode(&buf, &mut pos).unwrap();
            assert_eq!(back, op);
            assert_eq!(pos, buf.len(), "trailing bytes for {op:?}");
        }
    }

    #[test]
    fn decode_stream_of_ops() {
        let ops = all_ops();
        let mut buf = Vec::new();
        for op in &ops {
            op.encode(&mut buf);
        }
        let mut pos = 0;
        let mut decoded = Vec::new();
        while pos < buf.len() {
            decoded.push(Op::decode(&buf, &mut pos).unwrap());
        }
        assert_eq!(decoded, ops);
    }

    #[test]
    fn truncated_operand_errors() {
        let mut buf = Vec::new();
        Op::Push(1.0).encode(&mut buf);
        buf.truncate(5);
        let mut pos = 0;
        assert_eq!(Op::decode(&buf, &mut pos), Err(DecodeError::Truncated));
    }

    #[test]
    fn unknown_opcode_errors() {
        let mut pos = 0;
        assert_eq!(
            Op::decode(&[0xFF], &mut pos),
            Err(DecodeError::BadOpcode(0xFF))
        );
    }

    #[test]
    fn opcodes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in all_ops() {
            assert!(seen.insert(op.opcode()), "duplicate opcode for {op:?}");
        }
    }
}
