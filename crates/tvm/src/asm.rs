//! A small text assembler for TVM modules.
//!
//! Triana users extend the toolbox by writing new units; here the equivalent
//! is a `.tvm` assembly text. Grammar (one item per line, `;` comments):
//!
//! ```text
//! .module <name> <version> <n_inputs> <n_outputs>
//! .func <name> <n_locals>
//! <label>:
//! <mnemonic> [operand]
//! ```
//!
//! Jump operands may be numeric or a label defined in the same function.

use crate::isa::Op;
use crate::module::{Function, Module};
use std::collections::HashMap;
use std::fmt;

/// Assembly failure, with the 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct AsmError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Assemble source text into a [`Module`].
pub fn assemble(src: &str) -> Result<Module, AsmError> {
    let mut module: Option<Module> = None;
    // (line, label-or-op) per pending function, resolved at function end.
    struct PendingFunc {
        name: String,
        n_locals: u16,
        items: Vec<(usize, Item)>,
    }
    enum Item {
        Label(String),
        Instr(String, Option<String>),
    }
    let mut current: Option<PendingFunc> = None;
    let mut finished: Vec<PendingFunc> = Vec::new();

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".module") {
            if module.is_some() {
                return Err(err(line_no, "duplicate .module"));
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 4 {
                return Err(err(line_no, ".module <name> <version> <n_in> <n_out>"));
            }
            let version = parts[1].parse().map_err(|_| err(line_no, "bad version"))?;
            let n_inputs = parts[2].parse().map_err(|_| err(line_no, "bad n_in"))?;
            let n_outputs = parts[3].parse().map_err(|_| err(line_no, "bad n_out"))?;
            module = Some(Module {
                name: parts[0].to_string(),
                version,
                n_inputs,
                n_outputs,
                functions: Vec::new(),
            });
        } else if let Some(rest) = line.strip_prefix(".func") {
            if module.is_none() {
                return Err(err(line_no, ".func before .module"));
            }
            if let Some(f) = current.take() {
                finished.push(f);
            }
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 2 {
                return Err(err(line_no, ".func <name> <n_locals>"));
            }
            current = Some(PendingFunc {
                name: parts[0].to_string(),
                n_locals: parts[1].parse().map_err(|_| err(line_no, "bad n_locals"))?,
                items: Vec::new(),
            });
        } else if let Some(label) = line.strip_suffix(':') {
            let f = current
                .as_mut()
                .ok_or_else(|| err(line_no, "label outside .func"))?;
            f.items
                .push((line_no, Item::Label(label.trim().to_string())));
        } else {
            let f = current
                .as_mut()
                .ok_or_else(|| err(line_no, "instruction outside .func"))?;
            let mut parts = line.split_whitespace();
            let mnemonic = parts.next().unwrap().to_ascii_lowercase();
            let operand = parts.next().map(str::to_string);
            if parts.next().is_some() {
                return Err(err(line_no, "too many operands"));
            }
            f.items.push((line_no, Item::Instr(mnemonic, operand)));
        }
    }
    if let Some(f) = current.take() {
        finished.push(f);
    }
    let mut module = module.ok_or_else(|| err(0, "missing .module"))?;
    // Function name -> index for `call` by name.
    let fn_index: HashMap<String, u16> = finished
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i as u16))
        .collect();

    for f in finished {
        // Pass 1: label -> instruction index.
        let mut labels: HashMap<String, u32> = HashMap::new();
        let mut pc = 0u32;
        for (line_no, item) in &f.items {
            match item {
                Item::Label(l) => {
                    if labels.insert(l.clone(), pc).is_some() {
                        return Err(err(*line_no, format!("duplicate label `{l}`")));
                    }
                }
                Item::Instr(..) => pc += 1,
            }
        }
        // Pass 2: encode.
        let mut code = Vec::new();
        for (line_no, item) in &f.items {
            let (m, operand) = match item {
                Item::Label(_) => continue,
                Item::Instr(m, o) => (m.as_str(), o.as_deref()),
            };
            let jump_target = |o: Option<&str>| -> Result<u32, AsmError> {
                let o = o.ok_or_else(|| err(*line_no, "missing jump target"))?;
                if let Ok(n) = o.parse::<u32>() {
                    return Ok(n);
                }
                labels
                    .get(o)
                    .copied()
                    .ok_or_else(|| err(*line_no, format!("unknown label `{o}`")))
            };
            let u16_op = |o: Option<&str>| -> Result<u16, AsmError> {
                o.ok_or_else(|| err(*line_no, "missing operand"))?
                    .parse()
                    .map_err(|_| err(*line_no, "bad operand"))
            };
            let u8_op = |o: Option<&str>| -> Result<u8, AsmError> {
                o.ok_or_else(|| err(*line_no, "missing port"))?
                    .parse()
                    .map_err(|_| err(*line_no, "bad port"))
            };
            let none = |o: Option<&str>| -> Result<(), AsmError> {
                if o.is_some() {
                    Err(err(*line_no, "unexpected operand"))
                } else {
                    Ok(())
                }
            };
            let op = match m {
                "push" => {
                    let o = operand.ok_or_else(|| err(*line_no, "missing constant"))?;
                    let v = match o {
                        "pi" => std::f64::consts::PI,
                        "tau" => std::f64::consts::TAU,
                        "e" => std::f64::consts::E,
                        _ => o.parse().map_err(|_| err(*line_no, "bad constant"))?,
                    };
                    Op::Push(v)
                }
                "pop" => {
                    none(operand)?;
                    Op::Pop
                }
                "dup" => {
                    none(operand)?;
                    Op::Dup
                }
                "swap" => {
                    none(operand)?;
                    Op::Swap
                }
                "over" => {
                    none(operand)?;
                    Op::Over
                }
                "load" => Op::Load(u16_op(operand)?),
                "store" => Op::Store(u16_op(operand)?),
                "add" => {
                    none(operand)?;
                    Op::Add
                }
                "sub" => {
                    none(operand)?;
                    Op::Sub
                }
                "mul" => {
                    none(operand)?;
                    Op::Mul
                }
                "div" => {
                    none(operand)?;
                    Op::Div
                }
                "rem" => {
                    none(operand)?;
                    Op::Rem
                }
                "neg" => {
                    none(operand)?;
                    Op::Neg
                }
                "abs" => {
                    none(operand)?;
                    Op::Abs
                }
                "min" => {
                    none(operand)?;
                    Op::Min
                }
                "max" => {
                    none(operand)?;
                    Op::Max
                }
                "floor" => {
                    none(operand)?;
                    Op::Floor
                }
                "sqrt" => {
                    none(operand)?;
                    Op::Sqrt
                }
                "sin" => {
                    none(operand)?;
                    Op::Sin
                }
                "cos" => {
                    none(operand)?;
                    Op::Cos
                }
                "exp" => {
                    none(operand)?;
                    Op::Exp
                }
                "ln" => {
                    none(operand)?;
                    Op::Ln
                }
                "pow" => {
                    none(operand)?;
                    Op::Pow
                }
                "eq" => {
                    none(operand)?;
                    Op::Eq
                }
                "ne" => {
                    none(operand)?;
                    Op::Ne
                }
                "lt" => {
                    none(operand)?;
                    Op::Lt
                }
                "le" => {
                    none(operand)?;
                    Op::Le
                }
                "gt" => {
                    none(operand)?;
                    Op::Gt
                }
                "ge" => {
                    none(operand)?;
                    Op::Ge
                }
                "jmp" => Op::Jmp(jump_target(operand)?),
                "jz" => Op::Jz(jump_target(operand)?),
                "jnz" => Op::Jnz(jump_target(operand)?),
                "call" => {
                    let o = operand.ok_or_else(|| err(*line_no, "missing call target"))?;
                    let t = if let Ok(n) = o.parse::<u16>() {
                        n
                    } else {
                        *fn_index
                            .get(o)
                            .ok_or_else(|| err(*line_no, format!("unknown function `{o}`")))?
                    };
                    Op::Call(t)
                }
                "ret" => {
                    none(operand)?;
                    Op::Ret
                }
                "halt" => {
                    none(operand)?;
                    Op::Halt
                }
                "inlen" => Op::InLen(u8_op(operand)?),
                "inget" => Op::InGet(u8_op(operand)?),
                "outpush" => Op::OutPush(u8_op(operand)?),
                "outset" => Op::OutSet(u8_op(operand)?),
                "outlen" => Op::OutLen(u8_op(operand)?),
                "hostio" => Op::HostIo(u8_op(operand)?),
                other => return Err(err(*line_no, format!("unknown mnemonic `{other}`"))),
            };
            code.push(op);
        }
        module.functions.push(Function {
            name: f.name,
            n_locals: f.n_locals,
            code,
        });
    }
    if module.functions.is_empty() {
        return Err(err(0, "module has no functions"));
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute;
    use crate::sandbox::SandboxPolicy;

    const DOUBLER: &str = r#"
; doubles every input sample
.module Doubler 1 1 1
.func main 2
    inlen 0
    store 0
    push 0
    store 1
loop:
    load 1
    load 0
    lt
    jz end
    load 1
    inget 0
    push 2.0
    mul
    outpush 0
    load 1
    push 1
    add
    store 1
    jmp loop
end:
    halt
"#;

    #[test]
    fn assembles_and_runs() {
        let m = assemble(DOUBLER).unwrap();
        assert_eq!(m.name, "Doubler");
        assert_eq!((m.n_inputs, m.n_outputs), (1, 1));
        let input = [1.0, -2.0, 0.5];
        let (out, _) = execute(&m, &[&input], &SandboxPolicy::standard()).unwrap();
        assert_eq!(out[0], vec![2.0, -4.0, 1.0]);
    }

    #[test]
    fn call_by_name() {
        let src = r#"
.module Sq 1 0 1
.func main 0
    push 5
    call square
    outpush 0
    halt
.func square 0
    dup
    mul
    ret
"#;
        let m = assemble(src).unwrap();
        let (out, _) = execute(&m, &[], &SandboxPolicy::standard()).unwrap();
        assert_eq!(out[0], vec![25.0]);
    }

    #[test]
    fn named_constants() {
        let src = ".module C 1 0 1\n.func main 0\n push pi\n sin\n abs\n outpush 0\n halt\n";
        let m = assemble(src).unwrap();
        let (out, _) = execute(&m, &[], &SandboxPolicy::standard()).unwrap();
        assert!(out[0][0] < 1e-12);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble(".module M 1 0 0\n.func main 0\n bogus\n").unwrap_err();
        assert_eq!(e.line, 3);
        let e = assemble(".module M 1 0 0\n.func main 0\n jmp nowhere\n").unwrap_err();
        assert!(e.message.contains("nowhere"));
        let e = assemble("push 1\n").unwrap_err();
        assert!(e.message.contains("outside"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let src = ".module M 1 0 0\n.func main 0\nx:\nx:\n halt\n";
        let e = assemble(src).unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "; header\n\n.module M 1 0 1 ; trailing\n.func main 0\n push 1 ; one\n outpush 0\n halt\n";
        let m = assemble(src).unwrap();
        assert_eq!(m.functions[0].code.len(), 3);
    }

    #[test]
    fn assembled_module_round_trips_through_blob() {
        let m = assemble(DOUBLER).unwrap();
        let blob = m.to_blob();
        let back = crate::module::Module::from_blob(&blob).unwrap();
        assert_eq!(back, m);
    }
}
