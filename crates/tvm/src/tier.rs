//! The execution-tier abstraction: one trait over Legacy, Prepared, and
//! Tier2 execution, selected per module at cache admission.
//!
//! Every tier honours the same observational contract — bit-identical
//! outputs, [`ExecStats`], and typed errors for every program — so the
//! grid can pick a tier purely on cost:
//!
//! * **Legacy** ([`LegacyModule`]): re-verifies on every call and
//!   allocates per `Call`; the reference semantics.
//! * **Prepared** ([`PreparedModule`]): verify once, flatten, fuse;
//!   allocation-free steady state.
//! * **Tier2** ([`Tier2Module`]): Prepared plus register-translated hot
//!   loops and batched dispatch.
//!
//! [`admit`] is the cache-admission entry point: blob integrity → parse →
//! tier construction per [`TierPolicy`]. `Auto` builds Tier2 and demotes
//! to Prepared when no loop region translated (the region probe would be
//! pure overhead on straight-line code).

use crate::interp::{record_execution, ExecStats, TvmError};
use crate::module::{Module, ModuleBlob};
use crate::prepared::{ExecContext, PrepareError, PreparedModule, PREPARE_OPS_PER_US};
use crate::sandbox::SandboxPolicy;
use crate::tier2::Tier2Module;
use crate::verify::verify;
use std::sync::Arc;

/// What one execution produces: output ports + stats, or a typed error.
pub type ExecOutcome = Result<(Vec<Vec<f64>>, ExecStats), TvmError>;

/// Which execution tier cache admission should construct.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TierPolicy {
    /// Tier2 when at least one hot loop translated, else Prepared.
    #[default]
    Auto,
    Legacy,
    Prepared,
    Tier2,
}

/// A module admitted under some execution tier.
///
/// Object-safe so caches can hold `Arc<dyn ExecTier>` and workers can
/// dispatch without knowing the tier. The `execute_batch*` defaults *are*
/// the batching spec: a batch over K jobs is observationally identical to
/// K sequential `execute*` calls against the same context (outputs,
/// per-job stats, and error positions); tiers may only override them with
/// faster paths that preserve that equivalence.
pub trait ExecTier: Send + Sync + std::fmt::Debug {
    /// Stable tier name: `"legacy"`, `"prepared"`, or `"tier2"`.
    fn tier_name(&self) -> &'static str;
    fn name(&self) -> &str;
    fn version(&self) -> u32;
    fn n_inputs(&self) -> u8;
    fn n_outputs(&self) -> u8;
    /// Content id of the source blob (FNV-1a 64 of its bytes).
    fn source_hash(&self) -> u64;
    /// Source instruction count (pre-fusion), the work-estimate signal.
    fn source_instructions(&self) -> usize;
    /// Post-preparation instruction count (source count for Legacy).
    fn prepared_instructions(&self) -> usize;
    /// Deterministic modeled preparation cost in virtual microseconds.
    fn modeled_prepare_us(&self) -> u64;
    /// Hot-loop regions translated to register form (tier 2 only).
    fn regions_translated(&self) -> usize {
        0
    }

    /// Execute one job.
    fn execute(
        &self,
        inputs: &[&[f64]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
    ) -> ExecOutcome;

    /// Instrumented variant of [`Self::execute`]; records the same
    /// `tvm.*` counters as [`crate::execute_obs`].
    fn execute_obs(
        &self,
        inputs: &[&[f64]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
        observer: &obs::Obs,
    ) -> ExecOutcome {
        let result = self.execute(inputs, policy, ctx);
        if observer.is_enabled() {
            let slim = result.as_ref().map(|(_, s)| *s).map_err(Clone::clone);
            record_execution(observer, &slim);
        }
        result
    }

    /// Drive one module across many jobs in a single dispatch call. Each
    /// job is a full input-port set; outcomes are positional.
    fn execute_batch(
        &self,
        jobs: &[&[&[f64]]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
    ) -> Vec<ExecOutcome> {
        jobs.iter()
            .map(|job| self.execute(job, policy, ctx))
            .collect()
    }

    /// Instrumented variant of [`Self::execute_batch`].
    fn execute_batch_obs(
        &self,
        jobs: &[&[&[f64]]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
        observer: &obs::Obs,
    ) -> Vec<ExecOutcome> {
        jobs.iter()
            .map(|job| self.execute_obs(job, policy, ctx, observer))
            .collect()
    }
}

/// The reference tier: [`crate::execute`] semantics, including its cost
/// model (re-verify every call, allocate per `Call`).
#[derive(Clone, Debug)]
pub struct LegacyModule {
    module: Module,
    source_hash: u64,
    source_len: usize,
}

impl LegacyModule {
    /// Wrap an already-verified module.
    pub fn new(module: Module) -> Self {
        let source_len = module.functions.iter().map(|f| f.code.len()).sum();
        let source_hash = crate::fnv1a64(&module.to_blob().bytes);
        LegacyModule {
            module,
            source_hash,
            source_len,
        }
    }

    pub fn module(&self) -> &Module {
        &self.module
    }
}

impl ExecTier for LegacyModule {
    fn tier_name(&self) -> &'static str {
        "legacy"
    }
    fn name(&self) -> &str {
        &self.module.name
    }
    fn version(&self) -> u32 {
        self.module.version
    }
    fn n_inputs(&self) -> u8 {
        self.module.n_inputs
    }
    fn n_outputs(&self) -> u8 {
        self.module.n_outputs
    }
    fn source_hash(&self) -> u64 {
        self.source_hash
    }
    fn source_instructions(&self) -> usize {
        self.source_len
    }
    fn prepared_instructions(&self) -> usize {
        self.source_len
    }
    fn modeled_prepare_us(&self) -> u64 {
        (self.source_len as u64) / PREPARE_OPS_PER_US + 1
    }

    fn execute(
        &self,
        inputs: &[&[f64]],
        policy: &SandboxPolicy,
        _ctx: &mut ExecContext,
    ) -> ExecOutcome {
        crate::interp::execute(&self.module, inputs, policy)
    }
}

impl ExecTier for PreparedModule {
    fn tier_name(&self) -> &'static str {
        "prepared"
    }
    fn name(&self) -> &str {
        PreparedModule::name(self)
    }
    fn version(&self) -> u32 {
        PreparedModule::version(self)
    }
    fn n_inputs(&self) -> u8 {
        PreparedModule::n_inputs(self)
    }
    fn n_outputs(&self) -> u8 {
        PreparedModule::n_outputs(self)
    }
    fn source_hash(&self) -> u64 {
        PreparedModule::source_hash(self)
    }
    fn source_instructions(&self) -> usize {
        PreparedModule::source_instructions(self)
    }
    fn prepared_instructions(&self) -> usize {
        PreparedModule::prepared_instructions(self)
    }
    fn modeled_prepare_us(&self) -> u64 {
        PreparedModule::modeled_prepare_us(self)
    }

    fn execute(
        &self,
        inputs: &[&[f64]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
    ) -> ExecOutcome {
        PreparedModule::execute(self, inputs, policy, ctx)
    }
}

impl ExecTier for Tier2Module {
    fn tier_name(&self) -> &'static str {
        "tier2"
    }
    fn name(&self) -> &str {
        self.base().name()
    }
    fn version(&self) -> u32 {
        self.base().version()
    }
    fn n_inputs(&self) -> u8 {
        self.base().n_inputs()
    }
    fn n_outputs(&self) -> u8 {
        self.base().n_outputs()
    }
    fn source_hash(&self) -> u64 {
        self.base().source_hash()
    }
    fn source_instructions(&self) -> usize {
        self.base().source_instructions()
    }
    fn prepared_instructions(&self) -> usize {
        self.base().prepared_instructions()
    }
    fn modeled_prepare_us(&self) -> u64 {
        self.base().modeled_prepare_us()
    }
    fn regions_translated(&self) -> usize {
        Tier2Module::regions_translated(self)
    }

    fn execute(
        &self,
        inputs: &[&[f64]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
    ) -> ExecOutcome {
        Tier2Module::execute(self, inputs, policy, ctx)
    }

    fn execute_obs(
        &self,
        inputs: &[&[f64]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
        observer: &obs::Obs,
    ) -> ExecOutcome {
        let result = Tier2Module::execute(self, inputs, policy, ctx);
        if observer.is_enabled() {
            let slim = result.as_ref().map(|(_, s)| *s).map_err(Clone::clone);
            record_execution(observer, &slim);
            if ctx.tier2_fallbacks() > 0 {
                observer.add("tvm.tier2_fallback_exits", ctx.tier2_fallbacks());
            }
        }
        result
    }

    fn execute_batch_obs(
        &self,
        jobs: &[&[&[f64]]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
        observer: &obs::Obs,
    ) -> Vec<ExecOutcome> {
        if observer.is_enabled() && !jobs.is_empty() {
            observer.incr("tvm.tier2_batch_runs");
            observer.add("tvm.tier2_batch_inputs", jobs.len() as u64);
        }
        jobs.iter()
            .map(|job| ExecTier::execute_obs(self, job, policy, ctx, observer))
            .collect()
    }
}

/// Cache admission: integrity-check and parse the blob, then construct
/// the execution tier `policy` selects.
pub fn admit(blob: &ModuleBlob, policy: TierPolicy) -> Result<Arc<dyn ExecTier>, PrepareError> {
    if !blob.integrity_ok() {
        return Err(PrepareError::Integrity);
    }
    let module = Module::from_blob(blob).map_err(PrepareError::Blob)?;
    Ok(match policy {
        TierPolicy::Legacy => {
            verify(&module).map_err(PrepareError::Verify)?;
            Arc::new(LegacyModule::new(module))
        }
        TierPolicy::Prepared => {
            Arc::new(PreparedModule::prepare(&module).map_err(PrepareError::Verify)?)
        }
        TierPolicy::Tier2 => Arc::new(Tier2Module::prepare(&module).map_err(PrepareError::Verify)?),
        TierPolicy::Auto => {
            let t2 = Tier2Module::prepare(&module).map_err(PrepareError::Verify)?;
            if t2.regions_translated() > 0 {
                Arc::new(t2)
            } else {
                Arc::new(t2.into_prepared())
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Function;
    use crate::Op::*;

    fn looper() -> Module {
        Module {
            name: "looper".into(),
            version: 1,
            n_inputs: 0,
            n_outputs: 1,
            functions: vec![Function {
                name: "main".into(),
                n_locals: 1,
                code: vec![
                    Push(4.0),
                    Store(0),
                    Load(0),
                    OutPush(0),
                    Load(0),
                    Push(1.0),
                    Sub,
                    Store(0),
                    Load(0),
                    Jnz(2),
                    Halt,
                ],
            }],
        }
    }

    fn straight() -> Module {
        Module {
            name: "straight".into(),
            version: 1,
            n_inputs: 0,
            n_outputs: 1,
            functions: vec![Function {
                name: "main".into(),
                n_locals: 0,
                code: vec![Push(21.0), Push(2.0), Mul, OutPush(0), Halt],
            }],
        }
    }

    #[test]
    fn auto_admission_picks_tier_by_loop_shape() {
        let with_loop = admit(&looper().to_blob(), TierPolicy::Auto).unwrap();
        assert_eq!(with_loop.tier_name(), "tier2");
        assert_eq!(with_loop.regions_translated(), 1);
        let no_loop = admit(&straight().to_blob(), TierPolicy::Auto).unwrap();
        assert_eq!(no_loop.tier_name(), "prepared");
        assert_eq!(no_loop.regions_translated(), 0);
    }

    #[test]
    fn all_tiers_agree_through_the_trait() {
        let blob = looper().to_blob();
        let policy = SandboxPolicy::standard();
        let mut outcomes = Vec::new();
        for tier_policy in [TierPolicy::Legacy, TierPolicy::Prepared, TierPolicy::Tier2] {
            let tier = admit(&blob, tier_policy).unwrap();
            let mut ctx = ExecContext::new();
            outcomes.push(tier.execute(&[], &policy, &mut ctx));
        }
        assert_eq!(outcomes[0], outcomes[1]);
        assert_eq!(outcomes[0], outcomes[2]);
        assert_eq!(
            outcomes[0].as_ref().unwrap().0,
            vec![vec![4.0, 3.0, 2.0, 1.0]]
        );
    }

    #[test]
    fn batch_default_equals_sequential() {
        let tier = admit(&looper().to_blob(), TierPolicy::Tier2).unwrap();
        let policy = SandboxPolicy::standard();
        let mut ctx = ExecContext::new();
        let jobs: Vec<&[&[f64]]> = vec![&[], &[], &[]];
        let batch = tier.execute_batch(&jobs, &policy, &mut ctx);
        let mut ctx2 = ExecContext::new();
        let seq: Vec<_> = jobs
            .iter()
            .map(|job| tier.execute(job, &policy, &mut ctx2))
            .collect();
        assert_eq!(batch, seq);
    }

    #[test]
    fn admission_rejects_corrupt_blobs() {
        let mut blob = looper().to_blob();
        let n = blob.bytes.len();
        blob.bytes[n - 1] ^= 0xFF;
        for tier_policy in [
            TierPolicy::Auto,
            TierPolicy::Legacy,
            TierPolicy::Prepared,
            TierPolicy::Tier2,
        ] {
            assert!(matches!(
                admit(&blob, tier_policy),
                Err(PrepareError::Integrity)
            ));
        }
    }
}
