//! The prepared-execution pipeline: verify once, execute many.
//!
//! [`crate::execute`] re-runs the bytecode verifier on every invocation and
//! heap-allocates a locals `Vec` on every `Op::Call`. That is the wrong cost
//! model for the Consumer Grid, where the same module blob is dispatched to a
//! worker once and then executed for every job, pipeline token, and
//! redundant-execution vote. Like the lightweight-client engines that
//! prepare/cache executable modules once per client, this module splits the
//! lifecycle:
//!
//! * [`PreparedModule::prepare`] — the one-time pass: verify, decode every
//!   function into a single flat instruction array with resolved absolute
//!   jump and call targets, and peephole-optimise (constant folding,
//!   push/binop fusion, compare/branch fusion). Each fused instruction
//!   remembers how many source instructions it retires, so metering is
//!   unchanged.
//! * [`ExecContext`] — the reusable per-worker execution state: operand
//!   stack, frame stack, and a locals arena. After warm-up, repeated
//!   [`PreparedModule::run`] calls perform **zero heap allocations**,
//!   including on `Call` (callee locals live in the arena).
//!
//! # Determinism contract
//!
//! The prepared path is an exact semantic twin of [`crate::execute`]: same
//! outputs, same [`ExecStats`] (instruction count and high-water stack), and
//! the same error for every failing program. Fused instructions replicate
//! the legacy interpreter's check *order* (budget → overflow → budget →
//! underflow …) step by step, so hostile programs trip the identical
//! sandbox violation at the identical point. The differential property
//! tests in `tests/properties.rs` pin this equivalence.

use crate::interp::{ExecStats, TvmError};
use crate::isa::Op;
use crate::module::{Module, ModuleBlob};
use crate::sandbox::SandboxPolicy;
use crate::verify::{verify, VerifyError};
use std::fmt;

/// Modeled preparation throughput, in source instructions per virtual
/// microsecond. Used by [`PreparedModule::modeled_prepare_us`] so metering
/// of preparation cost stays deterministic (wall-clock timings belong in
/// the volatile snapshot section only).
pub(crate) const PREPARE_OPS_PER_US: u64 = 100;

/// A binary operation: pop `b`, pop `a`, push `a ∘ b`.
///
/// Comparisons are folded in (they push 1.0/0.0), which lets the fuser
/// treat `cmp; jz` like any other binop/branch pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    Pow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    #[inline(always)]
    pub(crate) fn eval(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
            BinOp::Rem => a % b,
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            BinOp::Pow => a.powf(b),
            BinOp::Eq => bool_f(a == b),
            BinOp::Ne => bool_f(a != b),
            BinOp::Lt => bool_f(a < b),
            BinOp::Le => bool_f(a <= b),
            BinOp::Gt => bool_f(a > b),
            BinOp::Ge => bool_f(a >= b),
        }
    }

    pub(crate) fn of(op: Op) -> Option<BinOp> {
        Some(match op {
            Op::Add => BinOp::Add,
            Op::Sub => BinOp::Sub,
            Op::Mul => BinOp::Mul,
            Op::Div => BinOp::Div,
            Op::Rem => BinOp::Rem,
            Op::Min => BinOp::Min,
            Op::Max => BinOp::Max,
            Op::Pow => BinOp::Pow,
            Op::Eq => BinOp::Eq,
            Op::Ne => BinOp::Ne,
            Op::Lt => BinOp::Lt,
            Op::Le => BinOp::Le,
            Op::Gt => BinOp::Gt,
            Op::Ge => BinOp::Ge,
            _ => return None,
        })
    }
}

/// A unary operation: pop `a`, push `f(a)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum UnOp {
    Neg,
    Abs,
    Floor,
    Sqrt,
    Sin,
    Cos,
    Exp,
    Ln,
}

impl UnOp {
    #[inline(always)]
    pub(crate) fn eval(self, a: f64) -> f64 {
        match self {
            UnOp::Neg => -a,
            UnOp::Abs => a.abs(),
            UnOp::Floor => a.floor(),
            UnOp::Sqrt => a.sqrt(),
            UnOp::Sin => a.sin(),
            UnOp::Cos => a.cos(),
            UnOp::Exp => a.exp(),
            UnOp::Ln => a.ln(),
        }
    }

    pub(crate) fn of(op: Op) -> Option<UnOp> {
        Some(match op {
            Op::Neg => UnOp::Neg,
            Op::Abs => UnOp::Abs,
            Op::Floor => UnOp::Floor,
            Op::Sqrt => UnOp::Sqrt,
            Op::Sin => UnOp::Sin,
            Op::Cos => UnOp::Cos,
            Op::Exp => UnOp::Exp,
            Op::Ln => UnOp::Ln,
            _ => return None,
        })
    }
}

/// One prepared instruction. Jump and call targets are absolute indices
/// into the flat [`PreparedModule::code`] array. Fused variants retire more
/// than one source instruction; the retired count is their metering cost.
#[derive(Clone, Copy, Debug)]
pub(crate) enum PInst {
    Push(f64),
    Pop,
    Dup,
    Swap,
    Over,
    Load(u16),
    Store(u16),
    Bin(BinOp),
    Un(UnOp),
    Jmp(u32),
    Jz(u32),
    Jnz(u32),
    Call {
        entry: u32,
        n_locals: u16,
    },
    Ret,
    Halt,
    InLen(u8),
    InGet(u8),
    OutPush(u8),
    OutSet(u8),
    OutLen(u8),
    HostIo,
    // --- fused superinstructions (cost = source instructions retired) ---
    /// `push k; bin` — cost 2.
    PushBin {
        op: BinOp,
        k: f64,
    },
    /// `load i; bin` — cost 2.
    LoadBin {
        op: BinOp,
        i: u16,
    },
    /// `load i; load j` — cost 2.
    LoadLoad {
        i: u16,
        j: u16,
    },
    /// `load i; inget p` — cost 2.
    LoadInGet {
        i: u16,
        port: u8,
    },
    /// `bin; jz/jnz t` — cost 2. Branches when the binop result is
    /// non-zero (`jump_if = true`, from `jnz`) or zero (`false`, `jz`).
    BinBr {
        op: BinOp,
        target: u32,
        jump_if: bool,
    },
    /// `push a; push b; bin`, constant-folded at prepare time — cost 3.
    PushPushBin(f64),
    /// `load i; load j; bin; jz/jnz t` — cost 4. The loop-head shape.
    LoadLoadBinBr {
        i: u16,
        j: u16,
        op: BinOp,
        target: u32,
        jump_if: bool,
    },
    /// `load i; push k; bin; store i` — cost 4. The loop-counter shape.
    LocalBinK {
        op: BinOp,
        i: u16,
        k: f64,
    },
    /// `load i; push k; bin; store i; jmp t` — cost 5. A counter bump
    /// followed by the loop back-edge.
    LocalBinKJmp {
        op: BinOp,
        i: u16,
        k: f64,
        target: u32,
    },
    /// `dup; bin` — cost 2. Replaces the top with `top ∘ top` (squaring).
    DupBin(BinOp),
    /// `dup; dup; bin1; bin2` — cost 4. `top ∘₂ (top ∘₁ top)` (cubing).
    DupDupBinBin {
        op1: BinOp,
        op2: BinOp,
    },
    /// `push k; swap; bin` — cost 3. Replaces the top with `k ∘ top`
    /// (reversed-operand constant binop).
    PushSwapBin {
        op: BinOp,
        k: f64,
    },
    /// `load i; inget p; bin` — cost 3. Indexed input read feeding a binop.
    LoadInGetBin {
        op: BinOp,
        i: u16,
        port: u8,
    },
    /// `load i; inget p; load j; inget q; bin` — cost 5. The dot-product
    /// step: combine one element from each of two input ports.
    LoadInGet2Bin {
        op: BinOp,
        i: u16,
        j: u16,
        p: u8,
        q: u8,
    },
    /// `load i; bin; store d` — cost 3. The accumulator shape
    /// (`locals[d] = top ∘ locals[i]`, consuming the top).
    LoadBinStore {
        op: BinOp,
        i: u16,
        dst: u16,
    },
}

/// Why a blob could not be prepared.
#[derive(Clone, Debug, PartialEq)]
pub enum PrepareError {
    /// Blob bytes do not match their content hash.
    Integrity,
    /// Blob failed to parse back into a module.
    Blob(crate::module::BlobError),
    /// The module failed static verification.
    Verify(VerifyError),
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrepareError::Integrity => write!(f, "module blob failed integrity check"),
            PrepareError::Blob(e) => write!(f, "bad module blob: {e}"),
            PrepareError::Verify(e) => write!(f, "module rejected by verifier: {e}"),
        }
    }
}

impl std::error::Error for PrepareError {}

/// A verified, flattened, peephole-optimised module, ready for repeated
/// execution without further checks or per-call allocation.
#[derive(Clone, Debug)]
pub struct PreparedModule {
    name: String,
    version: u32,
    n_inputs: u8,
    n_outputs: u8,
    /// Locals of function 0, allocated in the arena at run start.
    pub(crate) entry_locals: u16,
    pub(crate) code: Vec<PInst>,
    /// FNV-1a 64 of the source blob bytes — the same value as the blob
    /// content id, so integrity audits can tie a prepared module back to
    /// the library's ground truth.
    source_hash: u64,
    /// Source instruction count across all functions.
    source_len: usize,
}

/// A prepared module plus the flattening byproducts tier 2 needs: the
/// per-function source-pc → flat-index maps and function base offsets.
pub(crate) struct PrepareArtifacts {
    pub(crate) module: PreparedModule,
    /// Per function: source pc → local flat index (`u32::MAX` for interior
    /// pcs of fused windows, which are never jump targets).
    pub(crate) maps: Vec<Vec<u32>>,
    /// Per function: base offset of its instructions in the flat array.
    pub(crate) bases: Vec<u32>,
}

/// The one-time pass: verify `module`, then flatten and fuse, keeping the
/// pc maps so callers (tier 2 region detection) can address flat code.
pub(crate) fn prepare_full(module: &Module) -> Result<PrepareArtifacts, VerifyError> {
    verify(module)?;
    let source_len: usize = module.functions.iter().map(|f| f.code.len()).sum();

    // Pass 1: per function, fuse and record source-pc → flat-index
    // (jump targets are kept as source pcs for now).
    let mut per_func: Vec<(Vec<PInst>, Vec<u32>)> = Vec::with_capacity(module.functions.len());
    for f in &module.functions {
        per_func.push(flatten_function(&f.code));
    }

    // Function base offsets in the flat array.
    let mut bases = Vec::with_capacity(per_func.len());
    let mut total = 0u32;
    for (insts, _) in &per_func {
        bases.push(total);
        total += insts.len() as u32;
    }

    // Pass 2: resolve jump targets (within-function) and call targets.
    let mut code = Vec::with_capacity(total as usize);
    for (fi, (insts, map)) in per_func.iter().enumerate() {
        let base = bases[fi];
        let resolve = |t: u32| base + map[t as usize];
        for inst in insts {
            code.push(match *inst {
                PInst::Jmp(t) => PInst::Jmp(resolve(t)),
                PInst::Jz(t) => PInst::Jz(resolve(t)),
                PInst::Jnz(t) => PInst::Jnz(resolve(t)),
                PInst::BinBr {
                    op,
                    target,
                    jump_if,
                } => PInst::BinBr {
                    op,
                    target: resolve(target),
                    jump_if,
                },
                PInst::LoadLoadBinBr {
                    i,
                    j,
                    op,
                    target,
                    jump_if,
                } => PInst::LoadLoadBinBr {
                    i,
                    j,
                    op,
                    target: resolve(target),
                    jump_if,
                },
                PInst::LocalBinKJmp { op, i, k, target } => PInst::LocalBinKJmp {
                    op,
                    i,
                    k,
                    target: resolve(target),
                },
                PInst::Call { entry, .. } => PInst::Call {
                    entry: bases[entry as usize],
                    n_locals: module.functions[entry as usize].n_locals,
                },
                other => other,
            });
        }
    }

    let maps = per_func.into_iter().map(|(_, map)| map).collect();
    Ok(PrepareArtifacts {
        module: PreparedModule {
            name: module.name.clone(),
            version: module.version,
            n_inputs: module.n_inputs,
            n_outputs: module.n_outputs,
            entry_locals: module.functions[0].n_locals,
            code,
            source_hash: crate::fnv1a64(&module.to_blob().bytes),
            source_len,
        },
        maps,
        bases,
    })
}

impl PreparedModule {
    /// The one-time pass: verify `module`, then flatten and fuse.
    pub fn prepare(module: &Module) -> Result<Self, VerifyError> {
        prepare_full(module).map(|a| a.module)
    }

    /// Admit a transferred blob: integrity check, parse, verify, prepare.
    pub fn from_blob(blob: &ModuleBlob) -> Result<Self, PrepareError> {
        if !blob.integrity_ok() {
            return Err(PrepareError::Integrity);
        }
        let module = Module::from_blob(blob).map_err(PrepareError::Blob)?;
        Self::prepare(&module).map_err(PrepareError::Verify)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn version(&self) -> u32 {
        self.version
    }

    pub fn n_inputs(&self) -> u8 {
        self.n_inputs
    }

    pub fn n_outputs(&self) -> u8 {
        self.n_outputs
    }

    /// Content id of the source blob (FNV-1a 64 of its bytes); equal to the
    /// `store` blob id, so cache-integrity audits can cover prepared code.
    pub fn source_hash(&self) -> u64 {
        self.source_hash
    }

    /// Source instruction count (pre-fusion), the work-estimate signal.
    pub fn source_instructions(&self) -> usize {
        self.source_len
    }

    /// Prepared (post-fusion) instruction count.
    pub fn prepared_instructions(&self) -> usize {
        self.code.len()
    }

    /// Deterministic modeled preparation cost in virtual microseconds
    /// (source instructions at a fixed modeled rate). Wall-clock prepare
    /// timings are host-dependent and belong in the volatile snapshot
    /// section; this modeled figure is what deterministic metering records.
    pub fn modeled_prepare_us(&self) -> u64 {
        (self.source_len as u64) / PREPARE_OPS_PER_US + 1
    }

    /// Execute and return owned outputs, mirroring [`crate::execute`]'s
    /// signature. Allocates for the returned `Vec`s; use [`Self::run`] for
    /// the allocation-free steady state.
    pub fn execute(
        &self,
        inputs: &[&[f64]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
    ) -> Result<(Vec<Vec<f64>>, ExecStats), TvmError> {
        let stats = self.run(inputs, policy, ctx)?;
        Ok((ctx.outputs().to_vec(), stats))
    }

    /// Instrumented variant of [`Self::execute`]; records the same
    /// `tvm.*` counters as [`crate::execute_obs`].
    pub fn execute_obs(
        &self,
        inputs: &[&[f64]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
        observer: &obs::Obs,
    ) -> Result<(Vec<Vec<f64>>, ExecStats), TvmError> {
        let result = self.execute(inputs, policy, ctx);
        if observer.is_enabled() {
            let slim = result.as_ref().map(|(_, s)| *s).map_err(Clone::clone);
            crate::interp::record_execution(observer, &slim);
        }
        result
    }

    /// Execute in `ctx`, leaving the outputs in the context's reusable
    /// buffers (read them via [`ExecContext::outputs`]). After the context
    /// has warmed up, this performs no heap allocation.
    pub fn run(
        &self,
        inputs: &[&[f64]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
    ) -> Result<ExecStats, TvmError> {
        if inputs.len() != self.n_inputs as usize {
            return Err(TvmError::BadArity {
                expected: self.n_inputs,
                got: inputs.len(),
            });
        }
        ctx.bind(self.entry_locals as usize, self.n_outputs as usize);
        crate::tier2::run_vm::<false>(self, None, inputs, policy, ctx)
    }
}

/// Reusable execution state: operand stack, frame stack, locals arena and
/// output buffers. One per worker (or per thread); repeated runs reuse all
/// four allocations.
#[derive(Debug, Default)]
pub struct ExecContext {
    /// Operand stack storage; `sp` lives in the interpreter loop.
    pub(crate) stack: Vec<f64>,
    /// Suspended caller frames: (return pc, caller locals base).
    pub(crate) frames: Vec<(u32, u32)>,
    /// Locals arena; each frame owns a `[base, top)` window.
    pub(crate) locals: Vec<f64>,
    /// Output port buffers; cleared (not freed) between runs.
    pub(crate) outputs: Vec<Vec<f64>>,
    /// Live output port count of the last bound module.
    n_outputs: usize,
    /// Tier-2 virtual-register frame; sized lazily per region.
    pub(crate) regs: Vec<f64>,
    /// Tier-2 fallback exits (region abandoned for precise stepping) taken
    /// by the most recent run; zero on stack-tier runs.
    pub(crate) tier2_fallbacks: u64,
}

impl ExecContext {
    pub fn new() -> Self {
        Self::default()
    }

    /// Output ports of the most recent [`PreparedModule::run`].
    pub fn outputs(&self) -> &[Vec<f64>] {
        &self.outputs[..self.n_outputs]
    }

    /// Tier-2 fallback exits taken by the most recent run: times a hot-loop
    /// region was abandoned mid-flight (budget or stack headroom exhausted)
    /// in favour of precise stack-form stepping.
    pub fn tier2_fallbacks(&self) -> u64 {
        self.tier2_fallbacks
    }

    /// Ready the context for a run: entry locals zeroed, output buffers
    /// cleared with capacity retained.
    pub(crate) fn bind(&mut self, entry_locals: usize, n_outputs: usize) {
        self.frames.clear();
        if self.locals.len() < entry_locals {
            self.locals.resize(entry_locals, 0.0);
        } else {
            self.locals[..entry_locals].fill(0.0);
        }
        if self.outputs.len() < n_outputs {
            self.outputs.resize_with(n_outputs, Vec::new);
        }
        for out in &mut self.outputs[..n_outputs] {
            out.clear();
        }
        self.n_outputs = n_outputs;
        self.tier2_fallbacks = 0;
    }
}

#[inline(always)]
fn bool_f(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// Fuse and flatten one function. Returns the prepared instructions (jump
/// targets still as *source* pcs) and the source-pc → local-index map
/// (interior pcs of fused windows map to `u32::MAX`; the verifier
/// guarantees no jump lands there because fusion never covers a jump
/// target with its tail).
fn flatten_function(code: &[Op]) -> (Vec<PInst>, Vec<u32>) {
    // Source pcs that are jump targets must stay addressable: a fused
    // window may start at one but never contain one.
    let mut is_target = vec![false; code.len()];
    for op in code {
        if let Op::Jmp(t) | Op::Jz(t) | Op::Jnz(t) = *op {
            is_target[t as usize] = true;
        }
    }
    let free = |from: usize, upto: usize| -> bool {
        upto <= code.len() && (from + 1..upto).all(|p| !is_target[p])
    };

    let mut out = Vec::with_capacity(code.len());
    let mut map = vec![u32::MAX; code.len()];
    let mut i = 0;
    while i < code.len() {
        map[i] = out.len() as u32;
        let window = &code[i..];
        // Longest patterns first; every alternative checks that the fused
        // window contains no interior jump target.
        let (inst, len) = match *window {
            // load i; push k; bin; store i; jmp — counter bump + back-edge.
            [Op::Load(a), Op::Push(k), op3, Op::Store(b), Op::Jmp(t), ..]
                if a == b && BinOp::of(op3).is_some() && free(i, i + 5) =>
            {
                (
                    PInst::LocalBinKJmp {
                        op: BinOp::of(op3).unwrap(),
                        i: a,
                        k,
                        target: t,
                    },
                    5,
                )
            }
            // load i; inget p; load j; inget q; bin — the dot-product step.
            [Op::Load(a), Op::InGet(p), Op::Load(b), Op::InGet(q), op5, ..]
                if BinOp::of(op5).is_some() && free(i, i + 5) =>
            {
                (
                    PInst::LoadInGet2Bin {
                        op: BinOp::of(op5).unwrap(),
                        i: a,
                        j: b,
                        p,
                        q,
                    },
                    5,
                )
            }
            // load i; push k; bin; store i — in-place local update.
            [Op::Load(a), Op::Push(k), op3, Op::Store(b), ..]
                if a == b && BinOp::of(op3).is_some() && free(i, i + 4) =>
            {
                (
                    PInst::LocalBinK {
                        op: BinOp::of(op3).unwrap(),
                        i: a,
                        k,
                    },
                    4,
                )
            }
            // load i; load j; bin; jz/jnz — the loop-head compare.
            [Op::Load(a), Op::Load(b), op3, br, ..]
                if BinOp::of(op3).is_some() && branch_of(br).is_some() && free(i, i + 4) =>
            {
                let (target, jump_if) = branch_of(br).unwrap();
                (
                    PInst::LoadLoadBinBr {
                        i: a,
                        j: b,
                        op: BinOp::of(op3).unwrap(),
                        target,
                        jump_if,
                    },
                    4,
                )
            }
            // dup; dup; bin; bin — a power tower (cube when both are mul).
            [Op::Dup, Op::Dup, op3, op4, ..]
                if BinOp::of(op3).is_some() && BinOp::of(op4).is_some() && free(i, i + 4) =>
            {
                (
                    PInst::DupDupBinBin {
                        op1: BinOp::of(op3).unwrap(),
                        op2: BinOp::of(op4).unwrap(),
                    },
                    4,
                )
            }
            // push a; push b; bin — folds to a constant at prepare time.
            [Op::Push(a), Op::Push(b), op3, ..] if BinOp::of(op3).is_some() && free(i, i + 3) => {
                (PInst::PushPushBin(BinOp::of(op3).unwrap().eval(a, b)), 3)
            }
            // push k; swap; bin — constant as the *left* operand.
            [Op::Push(k), Op::Swap, op3, ..] if BinOp::of(op3).is_some() && free(i, i + 3) => (
                PInst::PushSwapBin {
                    op: BinOp::of(op3).unwrap(),
                    k,
                },
                3,
            ),
            // load i; inget p; bin — indexed input read feeding a binop.
            [Op::Load(li), Op::InGet(p), op3, ..] if BinOp::of(op3).is_some() && free(i, i + 3) => {
                (
                    PInst::LoadInGetBin {
                        op: BinOp::of(op3).unwrap(),
                        i: li,
                        port: p,
                    },
                    3,
                )
            }
            // load i; bin; store d — accumulate into a local.
            [Op::Load(li), op2, Op::Store(d), ..] if BinOp::of(op2).is_some() && free(i, i + 3) => {
                (
                    PInst::LoadBinStore {
                        op: BinOp::of(op2).unwrap(),
                        i: li,
                        dst: d,
                    },
                    3,
                )
            }
            // bin; jz/jnz — branch on a fresh binop result.
            [op1, br, ..]
                if BinOp::of(op1).is_some() && branch_of(br).is_some() && free(i, i + 2) =>
            {
                let (target, jump_if) = branch_of(br).unwrap();
                (
                    PInst::BinBr {
                        op: BinOp::of(op1).unwrap(),
                        target,
                        jump_if,
                    },
                    2,
                )
            }
            // push k; bin.
            [Op::Push(k), op2, ..] if BinOp::of(op2).is_some() && free(i, i + 2) => (
                PInst::PushBin {
                    op: BinOp::of(op2).unwrap(),
                    k,
                },
                2,
            ),
            // load i; bin.
            [Op::Load(li), op2, ..] if BinOp::of(op2).is_some() && free(i, i + 2) => (
                PInst::LoadBin {
                    op: BinOp::of(op2).unwrap(),
                    i: li,
                },
                2,
            ),
            // dup; bin — squaring and friends.
            [Op::Dup, op2, ..] if BinOp::of(op2).is_some() && free(i, i + 2) => {
                (PInst::DupBin(BinOp::of(op2).unwrap()), 2)
            }
            // load i; inget p — indexed input read.
            [Op::Load(li), Op::InGet(p), ..] if free(i, i + 2) => {
                (PInst::LoadInGet { i: li, port: p }, 2)
            }
            // load i; load j.
            [Op::Load(a), Op::Load(b), ..] if free(i, i + 2) => (PInst::LoadLoad { i: a, j: b }, 2),
            _ => (translate(code[i]), 1),
        };
        out.push(inst);
        i += len;
    }
    (out, map)
}

/// `jz`/`jnz` branch shape: (target, jump-if-nonzero).
fn branch_of(op: Op) -> Option<(u32, bool)> {
    match op {
        Op::Jz(t) => Some((t, false)),
        Op::Jnz(t) => Some((t, true)),
        _ => None,
    }
}

/// One-to-one translation of a single source instruction.
fn translate(op: Op) -> PInst {
    if let Some(b) = BinOp::of(op) {
        return PInst::Bin(b);
    }
    if let Some(u) = UnOp::of(op) {
        return PInst::Un(u);
    }
    match op {
        Op::Push(x) => PInst::Push(x),
        Op::Pop => PInst::Pop,
        Op::Dup => PInst::Dup,
        Op::Swap => PInst::Swap,
        Op::Over => PInst::Over,
        Op::Load(i) => PInst::Load(i),
        Op::Store(i) => PInst::Store(i),
        Op::Jmp(t) => PInst::Jmp(t),
        Op::Jz(t) => PInst::Jz(t),
        Op::Jnz(t) => PInst::Jnz(t),
        // Call target entry/locals are resolved in pass 2.
        Op::Call(t) => PInst::Call {
            entry: t as u32,
            n_locals: 0,
        },
        Op::Ret => PInst::Ret,
        Op::Halt => PInst::Halt,
        Op::InLen(p) => PInst::InLen(p),
        Op::InGet(p) => PInst::InGet(p),
        Op::OutPush(p) => PInst::OutPush(p),
        Op::OutSet(p) => PInst::OutSet(p),
        Op::OutLen(p) => PInst::OutLen(p),
        Op::HostIo(_) => PInst::HostIo,
        _ => unreachable!("arithmetic handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Function;
    use crate::{execute, Module};
    use Op::*;

    fn module1(code: Vec<Op>, n_locals: u16, n_inputs: u8, n_outputs: u8) -> Module {
        Module {
            name: "t".into(),
            version: 1,
            n_inputs,
            n_outputs,
            functions: vec![Function {
                name: "main".into(),
                n_locals,
                code,
            }],
        }
    }

    type ExecOutcome = Result<(Vec<Vec<f64>>, ExecStats), TvmError>;

    fn both(m: &Module, inputs: &[&[f64]], policy: &SandboxPolicy) -> (ExecOutcome, ExecOutcome) {
        let legacy = execute(m, inputs, policy);
        let prepared = PreparedModule::prepare(m).expect("verifies");
        let mut ctx = ExecContext::new();
        let fast = prepared.execute(inputs, policy, &mut ctx);
        (legacy, fast)
    }

    #[test]
    fn doubler_loop_matches_legacy_exactly() {
        let m = module1(
            vec![
                InLen(0),
                Store(0),
                Push(0.0),
                Store(1),
                Load(1),
                Load(0),
                Lt,
                Jz(18),
                Load(1),
                InGet(0),
                Push(2.0),
                Mul,
                OutPush(0),
                Load(1),
                Push(1.0),
                Add,
                Store(1),
                Jmp(4),
                Halt,
            ],
            2,
            1,
            1,
        );
        let input = [1.0, 2.5, -3.0];
        let (legacy, fast) = both(&m, &[&input], &SandboxPolicy::standard());
        assert_eq!(legacy, fast);
        assert_eq!(fast.unwrap().0[0], vec![2.0, 5.0, -6.0]);
    }

    #[test]
    fn fusion_compresses_the_doubler_loop() {
        let m = module1(
            vec![
                InLen(0),
                Store(0),
                Push(0.0),
                Store(1),
                Load(1),
                Load(0),
                Lt,
                Jz(18),
                Load(1),
                InGet(0),
                Push(2.0),
                Mul,
                OutPush(0),
                Load(1),
                Push(1.0),
                Add,
                Store(1),
                Jmp(4),
                Halt,
            ],
            2,
            1,
            1,
        );
        let p = PreparedModule::prepare(&m).unwrap();
        assert_eq!(p.source_instructions(), 19);
        // InLen, Store, Push, Store, [LoadLoadBinBr], [LoadInGet],
        // [PushBin mul], OutPush, [LocalBinKJmp +1], Halt = 10.
        assert_eq!(p.prepared_instructions(), 10);
    }

    #[test]
    fn constant_folding_preserves_stats() {
        let m = module1(
            vec![Push(3.0), Push(4.0), Add, Push(2.0), Mul, OutPush(0), Halt],
            0,
            0,
            1,
        );
        let (legacy, fast) = both(&m, &[], &SandboxPolicy::standard());
        assert_eq!(legacy, fast);
        let (out, stats) = fast.unwrap();
        assert_eq!(out, vec![vec![14.0]]);
        // Folded to [PushPushBin 7.0][PushBin *2][OutPush][Halt] but the
        // metered instruction count is unchanged.
        assert_eq!(stats.instructions, 7);
        assert_eq!(stats.max_stack, 2);
    }

    #[test]
    fn calls_use_the_arena_and_match_legacy() {
        let m = Module {
            name: "sq".into(),
            version: 1,
            n_inputs: 0,
            n_outputs: 1,
            functions: vec![
                Function {
                    name: "main".into(),
                    n_locals: 1,
                    code: vec![Push(3.0), Call(1), Call(1), OutPush(0), Halt],
                },
                Function {
                    name: "square".into(),
                    n_locals: 2,
                    code: vec![Dup, Mul, Ret],
                },
            ],
        };
        let (legacy, fast) = both(&m, &[], &SandboxPolicy::standard());
        assert_eq!(legacy, fast);
        assert_eq!(fast.unwrap().0[0], vec![81.0]);
    }

    #[test]
    fn budget_trips_inside_a_fused_window() {
        // push; push; mul (folds) then spin. With a budget that expires on
        // the second source instruction, the fused op must trip exactly as
        // the legacy interpreter does.
        let m = module1(vec![Push(1.0), Push(2.0), Mul, Pop, Jmp(0)], 0, 0, 0);
        for budget in 1..=6u64 {
            let policy = SandboxPolicy {
                max_instructions: budget,
                ..SandboxPolicy::standard()
            };
            let (legacy, fast) = both(&m, &[], &policy);
            assert_eq!(legacy, fast, "budget={budget}");
        }
    }

    #[test]
    fn overflow_order_matches_legacy_in_fused_window() {
        // At max_stack = 1 the second push of the folded constant pair must
        // overflow exactly like the legacy second push.
        let m = module1(vec![Push(1.0), Push(2.0), Add, OutPush(0), Halt], 0, 0, 1);
        let tight = SandboxPolicy {
            max_stack: 1,
            ..SandboxPolicy::standard()
        };
        let (legacy, fast) = both(&m, &[], &tight);
        assert_eq!(legacy, fast);
        assert_eq!(fast, Err(TvmError::StackOverflow));
    }

    #[test]
    fn jump_target_into_fusible_window_blocks_fusion() {
        // The `push 1.0; add` pair at 3..5 would fuse, but pc 4 is a jump
        // target; the prepared module must keep it addressable.
        let m = module1(
            vec![
                Push(10.0), // 0
                Jmp(4),     // 1
                Halt,       // 2 (dead)
                Push(1.0),  // 3
                Add,        // 4 <- target lands mid-pair... on the binop
                OutPush(0), // 5
                Halt,       // 6
            ],
            0,
            0,
            1,
        );
        let (legacy, fast) = both(&m, &[], &SandboxPolicy::standard());
        assert_eq!(legacy, fast);
        // Jumped straight to Add with only one operand on the stack.
        assert_eq!(fast, Err(TvmError::StackUnderflow));
    }

    #[test]
    fn deep_recursion_depth_error_matches() {
        let m = module1(vec![Call(0), Ret], 0, 0, 0);
        let policy = SandboxPolicy {
            max_call_depth: 8,
            ..SandboxPolicy::standard()
        };
        let (legacy, fast) = both(&m, &[], &policy);
        assert_eq!(legacy, fast);
        assert_eq!(fast, Err(TvmError::CallDepthExceeded));
    }

    #[test]
    fn host_io_denied_matches() {
        let m = module1(vec![Push(1.0), HostIo(0), Pop, Halt], 0, 0, 0);
        let (legacy, fast) = both(&m, &[], &SandboxPolicy::standard());
        assert_eq!(legacy, fast);
        assert_eq!(fast, Err(TvmError::HostIoDenied));
        let (legacy, fast) = both(&m, &[], &SandboxPolicy::trusted());
        assert_eq!(legacy, fast);
        assert!(fast.is_ok());
    }

    #[test]
    fn context_reuse_is_clean_across_runs_and_modules() {
        let m1 = module1(vec![Push(1.0), OutPush(0), Halt], 0, 0, 1);
        let m2 = module1(
            vec![Load(0), OutPush(0), Load(1), OutPush(1), Halt],
            2,
            0,
            2,
        );
        let p1 = PreparedModule::prepare(&m1).unwrap();
        let p2 = PreparedModule::prepare(&m2).unwrap();
        let mut ctx = ExecContext::new();
        for _ in 0..3 {
            let (out, _) = p1
                .execute(&[], &SandboxPolicy::standard(), &mut ctx)
                .unwrap();
            assert_eq!(out, vec![vec![1.0]]);
            // m2's locals must be zero despite m1 leaving stack residue.
            let (out, _) = p2
                .execute(&[], &SandboxPolicy::standard(), &mut ctx)
                .unwrap();
            assert_eq!(out, vec![vec![0.0], vec![0.0]]);
        }
    }

    #[test]
    fn from_blob_checks_integrity() {
        let m = module1(vec![Push(1.0), Pop, Halt], 0, 0, 0);
        let mut blob = m.to_blob();
        assert!(PreparedModule::from_blob(&blob).is_ok());
        let n = blob.bytes.len();
        blob.bytes[n - 1] ^= 0xFF;
        assert!(matches!(
            PreparedModule::from_blob(&blob),
            Err(PrepareError::Integrity)
        ));
    }

    #[test]
    fn source_hash_is_the_blob_content_id() {
        let m = module1(vec![Push(1.0), Pop, Halt], 0, 0, 0);
        let p = PreparedModule::prepare(&m).unwrap();
        assert_eq!(p.source_hash(), crate::fnv1a64(&m.to_blob().bytes));
        assert_eq!(p.source_hash(), m.to_blob().hash);
    }

    #[test]
    fn modeled_prepare_cost_is_deterministic() {
        let m = module1(vec![Push(1.0), Pop, Halt], 0, 0, 0);
        let p = PreparedModule::prepare(&m).unwrap();
        assert_eq!(p.modeled_prepare_us(), 1);
        assert_eq!(
            PreparedModule::prepare(&m).unwrap().modeled_prepare_us(),
            p.modeled_prepare_us()
        );
    }
}
