//! Modules: the distributable unit of code.
//!
//! A [`Module`] is a named, versioned collection of functions plus the port
//! signature of the unit it implements. Its binary form, [`ModuleBlob`], is
//! what peers request on demand, cache, and evict (paper §3.3): the blob
//! carries a content hash so that "the problem of having inconsistent
//! versions of executables" is solved by construction — a peer always
//! fetches by (name, version) and validates the hash.

use crate::fnv1a64;
use crate::isa::{DecodeError, Op};
use std::fmt;

/// One function body.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    pub name: String,
    /// Number of local variable slots.
    pub n_locals: u16,
    pub code: Vec<Op>,
}

/// A distributable code module implementing one Triana unit.
#[derive(Clone, Debug, PartialEq)]
pub struct Module {
    pub name: String,
    pub version: u32,
    /// Input / output port counts of the unit this module implements.
    pub n_inputs: u8,
    pub n_outputs: u8,
    /// Function table; index 0 is the entry point.
    pub functions: Vec<Function>,
}

const MAGIC: &[u8; 4] = b"TVM1";

impl Module {
    /// Serialize to the wire format.
    pub fn to_blob(&self) -> ModuleBlob {
        let mut b = Vec::new();
        b.extend_from_slice(MAGIC);
        b.extend_from_slice(&self.version.to_le_bytes());
        b.push(self.n_inputs);
        b.push(self.n_outputs);
        write_str(&mut b, &self.name);
        b.extend_from_slice(&(self.functions.len() as u32).to_le_bytes());
        for f in &self.functions {
            write_str(&mut b, &f.name);
            b.extend_from_slice(&f.n_locals.to_le_bytes());
            let mut code = Vec::new();
            for op in &f.code {
                op.encode(&mut code);
            }
            b.extend_from_slice(&(code.len() as u32).to_le_bytes());
            b.extend_from_slice(&code);
        }
        let hash = fnv1a64(&b);
        ModuleBlob { bytes: b, hash }
    }

    /// Parse a blob back into a module, verifying the magic.
    pub fn from_blob(blob: &ModuleBlob) -> Result<Module, BlobError> {
        let b = &blob.bytes;
        if b.len() < 4 || &b[..4] != MAGIC {
            return Err(BlobError::BadMagic);
        }
        let mut pos = 4;
        let version = read_u32(b, &mut pos)?;
        let n_inputs = read_u8(b, &mut pos)?;
        let n_outputs = read_u8(b, &mut pos)?;
        let name = read_str(b, &mut pos)?;
        let n_funcs = read_u32(b, &mut pos)? as usize;
        if n_funcs > 10_000 {
            return Err(BlobError::Corrupt);
        }
        let mut functions = Vec::with_capacity(n_funcs);
        for _ in 0..n_funcs {
            let fname = read_str(b, &mut pos)?;
            let n_locals = read_u16(b, &mut pos)?;
            let code_len = read_u32(b, &mut pos)? as usize;
            let end = pos.checked_add(code_len).ok_or(BlobError::Corrupt)?;
            if end > b.len() {
                return Err(BlobError::Corrupt);
            }
            let mut code = Vec::new();
            let mut cpos = pos;
            while cpos < end {
                code.push(Op::decode(&b[..end], &mut cpos).map_err(BlobError::Decode)?);
            }
            pos = end;
            functions.push(Function {
                name: fname,
                n_locals,
                code,
            });
        }
        Ok(Module {
            name,
            version,
            n_inputs,
            n_outputs,
            functions,
        })
    }

    /// Total instruction count across all functions.
    pub fn instruction_count(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }
}

/// The serialized, content-hashed form of a [`Module`] — what travels over
/// the Consumer Grid.
#[derive(Clone, Debug, PartialEq)]
pub struct ModuleBlob {
    pub bytes: Vec<u8>,
    pub hash: u64,
}

impl ModuleBlob {
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Re-hash the bytes and check against the recorded hash (detects
    /// corruption or tampering in transit).
    pub fn integrity_ok(&self) -> bool {
        fnv1a64(&self.bytes) == self.hash
    }
}

/// Blob parsing failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlobError {
    BadMagic,
    Corrupt,
    Decode(DecodeError),
}

impl fmt::Display for BlobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobError::BadMagic => write!(f, "not a TVM module"),
            BlobError::Corrupt => write!(f, "module blob corrupt"),
            BlobError::Decode(e) => write!(f, "bytecode error: {e}"),
        }
    }
}

impl std::error::Error for BlobError {}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn read_u8(b: &[u8], pos: &mut usize) -> Result<u8, BlobError> {
    let v = *b.get(*pos).ok_or(BlobError::Corrupt)?;
    *pos += 1;
    Ok(v)
}

fn read_u16(b: &[u8], pos: &mut usize) -> Result<u16, BlobError> {
    let s = b.get(*pos..*pos + 2).ok_or(BlobError::Corrupt)?;
    *pos += 2;
    Ok(u16::from_le_bytes(s.try_into().unwrap()))
}

fn read_u32(b: &[u8], pos: &mut usize) -> Result<u32, BlobError> {
    let s = b.get(*pos..*pos + 4).ok_or(BlobError::Corrupt)?;
    *pos += 4;
    Ok(u32::from_le_bytes(s.try_into().unwrap()))
}

fn read_str(b: &[u8], pos: &mut usize) -> Result<String, BlobError> {
    let len = read_u32(b, pos)? as usize;
    if len > 1 << 20 {
        return Err(BlobError::Corrupt);
    }
    let s = b.get(*pos..*pos + len).ok_or(BlobError::Corrupt)?;
    *pos += len;
    String::from_utf8(s.to_vec()).map_err(|_| BlobError::Corrupt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Op::*;

    fn sample_module() -> Module {
        Module {
            name: "Doubler".into(),
            version: 3,
            n_inputs: 1,
            n_outputs: 1,
            functions: vec![Function {
                name: "main".into(),
                n_locals: 2,
                code: vec![
                    InLen(0),
                    Store(0),
                    Push(0.0),
                    Store(1),
                    Load(1),
                    Load(0),
                    Lt,
                    Jz(18),
                    Load(1),
                    InGet(0),
                    Push(2.0),
                    Mul,
                    OutPush(0),
                    Load(1),
                    Push(1.0),
                    Add,
                    Store(1),
                    Jmp(4),
                    Halt,
                ],
            }],
        }
    }

    #[test]
    fn blob_round_trips() {
        let m = sample_module();
        let blob = m.to_blob();
        assert!(blob.integrity_ok());
        let back = Module::from_blob(&blob).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn hash_is_content_addressed() {
        let m1 = sample_module();
        let mut m2 = sample_module();
        assert_eq!(m1.to_blob().hash, m2.to_blob().hash);
        m2.version = 4;
        assert_ne!(m1.to_blob().hash, m2.to_blob().hash);
    }

    #[test]
    fn tampering_breaks_integrity() {
        let mut blob = sample_module().to_blob();
        let n = blob.bytes.len();
        blob.bytes[n - 1] ^= 0x01;
        assert!(!blob.integrity_ok());
    }

    #[test]
    fn bad_magic_rejected() {
        let blob = ModuleBlob {
            bytes: b"NOPE----".to_vec(),
            hash: 0,
        };
        assert_eq!(Module::from_blob(&blob), Err(BlobError::BadMagic));
    }

    #[test]
    fn truncated_blob_rejected() {
        let mut blob = sample_module().to_blob();
        blob.bytes.truncate(blob.bytes.len() / 2);
        assert!(Module::from_blob(&blob).is_err());
    }

    #[test]
    fn instruction_count_sums_functions() {
        let mut m = sample_module();
        m.functions.push(Function {
            name: "helper".into(),
            n_locals: 0,
            code: vec![Ret],
        });
        assert_eq!(m.instruction_count(), 20);
    }
}
