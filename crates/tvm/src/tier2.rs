//! Execution tier 2: register-translated hot loops over the shared
//! dispatch core.
//!
//! This module hosts two things:
//!
//! 1. **The interpreter core** ([`run_vm`]) shared by the Prepared and
//!    Tier2 tiers. It is the dense-dispatch loop formerly in
//!    `prepared.rs`, monomorphised over a `const TIER2: bool` so the
//!    Prepared tier compiles to exactly the machine code it had before
//!    tier 2 existed, while the Tier2 instantiation adds one table probe
//!    per dispatch that can divert a hot loop into register form.
//! 2. **The tier-2 pipeline** ([`Tier2Module`]): at prepare time, detect
//!    back-edge loops whose bodies are straight-line and stack-balanced,
//!    and translate their stack traffic into a fixed virtual-register
//!    frame ([`LoopRegion`]). At run time the region executes whole
//!    iterations with no per-instruction budget/overflow/underflow
//!    checks — those are hoisted into two head-of-iteration
//!    preconditions — and with no operand-stack traffic at all.
//!
//! # Fallback and the metering contract
//!
//! Entering a region requires that one *full* iteration fits both the
//! instruction budget and the stack headroom. When the precondition
//! fails, the region syncs its registers back to the locals window and
//! *falls back*: the dispatch loop resumes precise stack-form stepping at
//! the loop head, which reproduces the legacy error (or partial-path
//! success) at exactly the legacy instruction count. Region exits charge
//! the exact number of source instructions the exited path would have
//! retired, and the stack high-water mark is reconstructed from the
//! region's translated peak, so `ExecStats` stay bit-identical to the
//! legacy interpreter. The tier barrage in `tests/properties.rs` and the
//! corpus runner in `tests/corpus.rs` pin this contract.

use crate::interp::{ExecStats, TvmError};
use crate::isa::Op;
use crate::module::{Module, ModuleBlob};
use crate::prepared::{BinOp, ExecContext, PInst, PrepareError, PreparedModule, UnOp};
use crate::sandbox::SandboxPolicy;
use crate::verify::VerifyError;

/// Longest source span (in ops) a region may cover.
const MAX_REGION_OPS: usize = 128;
/// Virtual-register frame cap (locals + constants + temporaries).
const MAX_REGION_REGS: usize = 4096;
/// `region_at` sentinel: no region starts at this flat pc.
const NO_REGION: u16 = u16::MAX;
/// [`RegOp::Bin2`] operand sentinel: "the result of the first binop".
const SELF_OPERAND: u16 = u16::MAX;
/// [`RegOp::InGetBin3`] operand sentinel: "the value the fused `InGet`
/// fetched". Register ids stay far below both sentinels ([`MAX_REGION_REGS`]).
const GET_OPERAND: u16 = u16::MAX - 1;
/// [`RegOp::GetChainPush`] operand sentinel for stages 4–5: "the result of
/// stage 3" (the dead register the unfused pair communicated through).
const CHAIN3_OPERAND: u16 = u16::MAX - 2;
/// [`RegOp::Back`] fall-through sentinel for unconditional back-edges.
const NO_EXIT: u16 = u16::MAX;

/// Back-edge condition of a translated loop.
#[derive(Clone, Copy, Debug)]
enum CondBack {
    /// `jmp head` — always loop.
    Always,
    /// `jz head` — loop while the register is zero.
    IfZero(u16),
    /// `jnz head` — loop while the register is non-zero.
    IfNonZero(u16),
}

/// One register-form instruction. Operands and destinations are indices
/// into the region's virtual-register frame: `[0, n_locals)` mirror the
/// frame's locals, then the constant pool, then single-assignment
/// temporaries.
#[derive(Clone, Copy, Debug)]
enum RegOp {
    /// `dst = src`.
    Mov { dst: u16, src: u16 },
    /// `dst = a ∘ b`.
    Bin { op: BinOp, dst: u16, a: u16, b: u16 },
    /// Two fused binops: `t = a ∘₁ b; dst = c ∘₂ d`, where `c`/`d` may be
    /// [`SELF_OPERAND`] to mean `t`.
    Bin2 {
        op1: BinOp,
        a: u16,
        b: u16,
        op2: BinOp,
        c: u16,
        d: u16,
        dst: u16,
    },
    /// `dst = f(src)`.
    Un { op: UnOp, dst: u16, src: u16 },
    /// `dst = inputs[port].len()`.
    InLen { dst: u16, port: u8 },
    /// `dst = outputs[port].len()`.
    OutLen { dst: u16, port: u8 },
    /// `dst = inputs[port][idx]`, `IndexOutOfBounds` on a bad index.
    InGet { dst: u16, port: u8, idx: u16 },
    /// `outputs[port].push(src)`, `OutputLimitExceeded` past the cap.
    OutPush { port: u8, src: u16 },
    /// `outputs[port][idx] = val`, growing the port (both errors possible).
    OutSet { port: u8, idx: u16, val: u16 },
    /// Simulated syscall: `dst = 0.0`, `HostIoDenied` without capability.
    HostIo { dst: u16 },
    /// Fused `a ∘ b; jz/jnz target`: leave the region through `exit` when
    /// `(result == 0) == exit_if_zero`.
    BinExit {
        op: BinOp,
        a: u16,
        b: u16,
        exit_if_zero: bool,
        exit: u16,
    },
    /// `jz/jnz target` on a register: leave through `exit` when
    /// `(cond == 0) == exit_if_zero`.
    CondExit {
        cond: u16,
        exit_if_zero: bool,
        exit: u16,
    },
    /// The back-edge, always the region's last op: loop when `cond`
    /// holds, otherwise leave through `fall_exit` ([`NO_EXIT`] and
    /// unreachable for [`CondBack::Always`]).
    Back { cond: CondBack, fall_exit: u16 },
    // -- Peephole superinstructions (see `peephole`): each is exactly the
    // -- sequence of its constituent ops, checks in the original order.
    /// Fused `InGet + InGet` off one index register: `dst1 =
    /// inputs[port1][idx]; dst2 = inputs[port2][idx]` (port1 checked
    /// first, as the unfused pair would).
    In2 {
        dst1: u16,
        port1: u8,
        dst2: u16,
        port2: u8,
        idx: u16,
    },
    /// Fused `In2 + Bin2`: fetch both ports at `idx`, combine with `op1`,
    /// then `dst = c ∘₂ d` where [`SELF_OPERAND`] means the `op1` result.
    In2Bin2 {
        port1: u8,
        port2: u8,
        idx: u16,
        op1: BinOp,
        op2: BinOp,
        c: u16,
        d: u16,
        dst: u16,
    },
    /// Fused `Bin2 + Bin`: `t = a ∘₁ b; u = c ∘₂ d` (`c`/`d` may be
    /// [`SELF_OPERAND`] = `t`), then `dst = e ∘₃ f` where `e`/`f` may be
    /// [`SELF_OPERAND`] = `u`.
    Bin3 {
        op1: BinOp,
        a: u16,
        b: u16,
        op2: BinOp,
        c: u16,
        d: u16,
        op3: BinOp,
        e: u16,
        f: u16,
        dst: u16,
    },
    /// Fused `Bin + OutPush`: `outputs[port].push(a ∘ b)`.
    BinPush { op: BinOp, a: u16, b: u16, port: u8 },
    /// Fused `Bin2 + OutPush`.
    Bin2Push {
        op1: BinOp,
        a: u16,
        b: u16,
        op2: BinOp,
        c: u16,
        d: u16,
        port: u8,
    },
    /// Fused `InGet + Bin3`: fetch `v = inputs[port][idx]` (same bounds
    /// check and error as the unfused get), then run the three-op chain
    /// where [`GET_OPERAND`] means `v` and [`SELF_OPERAND`] means the
    /// previous op's result.
    InGetBin3 {
        port: u8,
        idx: u16,
        op1: BinOp,
        a: u16,
        b: u16,
        op2: BinOp,
        c: u16,
        d: u16,
        op3: BinOp,
        e: u16,
        f: u16,
        dst: u16,
    },
    /// Fused `InGetBin3 + Bin2Push`: the full five-stage chain ending in
    /// an output push, writing no registers at all. Stages 1–3 resolve
    /// operands as [`RegOp::InGetBin3`]; stages 4–5 may additionally name
    /// the stage-3 result via [`CHAIN3_OPERAND`] (in stage 5,
    /// [`SELF_OPERAND`] means the stage-4 result). Checks run in the
    /// original order: input bounds first, output cap last.
    GetChainPush {
        port: u8,
        idx: u16,
        op1: BinOp,
        a: u16,
        b: u16,
        op2: BinOp,
        c: u16,
        d: u16,
        op3: BinOp,
        e: u16,
        f: u16,
        op4: BinOp,
        g: u16,
        h: u16,
        op5: BinOp,
        i: u16,
        j: u16,
        out: u8,
    },
    /// Fused `Bin + Back`: `dst = a ∘ b`, then the back-edge test (which
    /// may read `dst`, exactly as the unfused pair would).
    BinBack {
        op: BinOp,
        dst: u16,
        a: u16,
        b: u16,
        cond: CondBack,
        fall_exit: u16,
    },
}

/// One way out of a region, with the exact metering of the exited path.
#[derive(Clone, Debug)]
struct RegionExit {
    /// Flat pc execution resumes at.
    target_flat: u32,
    /// Source instructions the partial iteration retired (head..=branch).
    cost: u64,
    /// Peak stack growth (relative to the entry sp) along that path.
    peak: usize,
    /// Registers to materialise onto the operand stack, bottom first.
    pushes: Vec<u16>,
}

/// A verified hot loop translated to register form.
#[derive(Clone, Debug)]
pub(crate) struct LoopRegion {
    /// Flat pc of the loop head (region entry — the only way in).
    head_flat: u32,
    /// Locals of the enclosing function, mirrored in registers `[0, n)`.
    n_locals: u16,
    /// Total virtual registers (locals + constants + temporaries).
    n_regs: u16,
    /// Constant pool: `(register, value)`, loaded at region entry.
    consts: Vec<(u16, f64)>,
    /// The translated loop body; last op is always [`RegOp::Back`].
    ops: Vec<RegOp>,
    /// Source instructions one full iteration retires.
    full_cost: u64,
    /// Peak stack growth (relative to entry sp) of a full iteration.
    peak_full: usize,
    exits: Vec<RegionExit>,
}

/// A prepared module with register-translated hot-loop regions.
///
/// Construction is [`PreparedModule::prepare`] plus region detection and
/// translation; execution is the shared dispatch core with the region
/// probe enabled. Metering, outputs, and the error taxonomy are
/// bit-identical to the Legacy and Prepared tiers.
#[derive(Clone, Debug)]
pub struct Tier2Module {
    base: PreparedModule,
    regions: Vec<LoopRegion>,
    /// Flat pc → region index ([`NO_REGION`] almost everywhere).
    region_at: Vec<u16>,
}

impl Tier2Module {
    /// Verify, flatten, fuse, then detect and translate hot-loop regions.
    pub fn prepare(module: &Module) -> Result<Self, VerifyError> {
        let art = crate::prepared::prepare_full(module)?;
        let mut regions: Vec<LoopRegion> = Vec::new();
        for (fi, f) in module.functions.iter().enumerate() {
            let flat_of = |pc: usize| art.bases[fi] + art.maps[fi][pc];
            regions.extend(detect_function_regions(&f.code, f.n_locals, &flat_of));
        }
        regions.truncate(NO_REGION as usize - 1);
        regions.sort_by_key(|r| r.head_flat);
        let mut region_at = vec![NO_REGION; art.module.code.len()];
        for (i, r) in regions.iter().enumerate() {
            region_at[r.head_flat as usize] = i as u16;
        }
        Ok(Tier2Module {
            base: art.module,
            regions,
            region_at,
        })
    }

    /// Admit a transferred blob: integrity check, parse, verify, prepare,
    /// translate.
    pub fn from_blob(blob: &ModuleBlob) -> Result<Self, PrepareError> {
        if !blob.integrity_ok() {
            return Err(PrepareError::Integrity);
        }
        let module = Module::from_blob(blob).map_err(PrepareError::Blob)?;
        Self::prepare(&module).map_err(PrepareError::Verify)
    }

    /// Hot-loop regions successfully translated to register form.
    pub fn regions_translated(&self) -> usize {
        self.regions.len()
    }

    /// The underlying prepared module.
    pub fn base(&self) -> &PreparedModule {
        &self.base
    }

    /// Demote to the plain Prepared tier (used by auto-admission when no
    /// region translated — the probe would be pure overhead).
    pub fn into_prepared(self) -> PreparedModule {
        self.base
    }

    /// Execute in `ctx`, leaving outputs in the context's reusable
    /// buffers; the tier-2 twin of [`PreparedModule::run`].
    pub fn run(
        &self,
        inputs: &[&[f64]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
    ) -> Result<ExecStats, TvmError> {
        if inputs.len() != self.base.n_inputs() as usize {
            return Err(TvmError::BadArity {
                expected: self.base.n_inputs(),
                got: inputs.len(),
            });
        }
        ctx.bind(
            self.base.entry_locals as usize,
            self.base.n_outputs() as usize,
        );
        run_vm::<true>(&self.base, Some(self), inputs, policy, ctx)
    }

    /// Execute and return owned outputs, mirroring
    /// [`PreparedModule::execute`]'s signature.
    pub fn execute(
        &self,
        inputs: &[&[f64]],
        policy: &SandboxPolicy,
        ctx: &mut ExecContext,
    ) -> Result<(Vec<Vec<f64>>, ExecStats), TvmError> {
        let stats = self.run(inputs, policy, ctx)?;
        Ok((ctx.outputs().to_vec(), stats))
    }
}

/// Mutable interpreter state handed to a region run.
struct VmState {
    pc: usize,
    sp: usize,
    max_sp: usize,
    instr: u64,
    out_cells: usize,
}

/// The shared dispatch core. Exact legacy semantics: see the
/// `prepared` module docs for the fused-instruction check-ordering
/// contract. With `TIER2` set, every dispatch first probes the region
/// table; a hit runs whole loop iterations in register form.
pub(crate) fn run_vm<const TIER2: bool>(
    prepared: &PreparedModule,
    t2: Option<&Tier2Module>,
    inputs: &[&[f64]],
    policy: &SandboxPolicy,
    ctx: &mut ExecContext,
) -> Result<ExecStats, TvmError> {
    let code = &prepared.code[..];
    let max_instr = policy.max_instructions;
    let max_stack = policy.max_stack;

    let stack = &mut ctx.stack;
    let frames = &mut ctx.frames;
    let locals = &mut ctx.locals;
    let outputs = &mut ctx.outputs;
    let regs = &mut ctx.regs;
    let fallbacks = &mut ctx.tier2_fallbacks;

    let (regions, region_at): (&[LoopRegion], &[u16]) = match t2 {
        Some(m) => (&m.regions, &m.region_at),
        None => (&[], &[]),
    };

    let mut pc = 0usize;
    let mut sp = 0usize;
    let mut max_sp = 0usize;
    let mut instr = 0u64;
    // Current frame's locals window is [lb, lt).
    let mut lb = 0usize;
    let mut lt = prepared.entry_locals as usize;
    let mut out_cells = 0usize;

    // Write `v` at `sp` after the overflow check, growing the backing
    // buffer only the first time a depth is reached.
    macro_rules! pushv {
        ($v:expr) => {{
            if sp >= max_stack {
                return Err(TvmError::StackOverflow);
            }
            let v = $v;
            if sp < stack.len() {
                stack[sp] = v;
            } else {
                stack.push(v);
            }
            sp += 1;
            if sp > max_sp {
                max_sp = sp;
            }
        }};
    }
    // One extra metered source instruction inside a fused window: the
    // legacy interpreter checks the budget before every source op.
    macro_rules! step {
        () => {{
            if instr >= max_instr {
                return Err(TvmError::BudgetExceeded);
            }
            instr += 1;
        }};
    }
    macro_rules! underflow {
        ($n:expr) => {{
            if sp < $n {
                return Err(TvmError::StackUnderflow);
            }
        }};
    }
    // Overflow check + high-water update for a push at depth `sp` inside a
    // fused window (the write itself happens at the end of the window).
    macro_rules! probe_push {
        ($at:expr) => {{
            if $at >= max_stack {
                return Err(TvmError::StackOverflow);
            }
            if $at + 1 > max_sp {
                max_sp = $at + 1;
            }
        }};
    }

    loop {
        if TIER2 {
            let ri = region_at[pc];
            if ri != NO_REGION {
                let region = &regions[ri as usize];
                let nl = region.n_locals as usize;
                let mut st = VmState {
                    pc,
                    sp,
                    max_sp,
                    instr,
                    out_cells,
                };
                let entered = region.run(
                    inputs,
                    policy,
                    stack,
                    &mut locals[lb..lb + nl],
                    outputs,
                    regs,
                    &mut st,
                    fallbacks,
                )?;
                pc = st.pc;
                sp = st.sp;
                max_sp = st.max_sp;
                instr = st.instr;
                out_cells = st.out_cells;
                if entered {
                    // Resumed at an exit target, or back at the head after
                    // a fallback (where the re-probe fails fast and the
                    // precise path below takes over).
                    continue;
                }
                // Preconditions refused entry: execute the head op (and
                // everything after it) in precise stack form.
            }
        }
        step!();
        // pc is always in range: the verifier guarantees every function
        // ends in a terminator and all jump targets are mapped.
        let op = code[pc];
        pc += 1;
        match op {
            PInst::Push(x) => pushv!(x),
            PInst::Pop => {
                underflow!(1);
                sp -= 1;
            }
            PInst::Dup => {
                underflow!(1);
                let a = stack[sp - 1];
                pushv!(a);
            }
            PInst::Swap => {
                underflow!(2);
                stack.swap(sp - 1, sp - 2);
            }
            PInst::Over => {
                underflow!(2);
                let a = stack[sp - 2];
                pushv!(a);
            }
            PInst::Load(i) => {
                let v = locals[lb + i as usize];
                pushv!(v);
            }
            PInst::Store(i) => {
                underflow!(1);
                sp -= 1;
                locals[lb + i as usize] = stack[sp];
            }
            PInst::Bin(op) => {
                underflow!(2);
                let b = stack[sp - 1];
                let a = stack[sp - 2];
                sp -= 1;
                stack[sp - 1] = op.eval(a, b);
            }
            PInst::Un(op) => {
                underflow!(1);
                stack[sp - 1] = op.eval(stack[sp - 1]);
            }
            PInst::Jmp(t) => pc = t as usize,
            PInst::Jz(t) => {
                underflow!(1);
                sp -= 1;
                if stack[sp] == 0.0 {
                    pc = t as usize;
                }
            }
            PInst::Jnz(t) => {
                underflow!(1);
                sp -= 1;
                if stack[sp] != 0.0 {
                    pc = t as usize;
                }
            }
            PInst::Call { entry, n_locals } => {
                // `frames` holds suspended callers, so depth = len + 1.
                if frames.len() + 1 >= policy.max_call_depth {
                    return Err(TvmError::CallDepthExceeded);
                }
                frames.push((pc as u32, lb as u32));
                lb = lt;
                lt += n_locals as usize;
                if locals.len() < lt {
                    locals.resize(lt, 0.0);
                } else {
                    locals[lb..lt].fill(0.0);
                }
                pc = entry as usize;
            }
            PInst::Ret => match frames.pop() {
                Some((ret_pc, caller_lb)) => {
                    lt = lb;
                    lb = caller_lb as usize;
                    pc = ret_pc as usize;
                }
                None => break,
            },
            PInst::Halt => break,
            PInst::InLen(p) => pushv!(inputs[p as usize].len() as f64),
            PInst::InGet(p) => {
                underflow!(1);
                let idx = stack[sp - 1];
                let port = inputs[p as usize];
                match to_index(idx, port.len()) {
                    Some(i) => stack[sp - 1] = port[i],
                    None => {
                        return Err(TvmError::IndexOutOfBounds {
                            port: p,
                            index: idx,
                        })
                    }
                }
            }
            PInst::OutPush(p) => {
                underflow!(1);
                sp -= 1;
                let v = stack[sp];
                if out_cells >= policy.max_output_cells {
                    return Err(TvmError::OutputLimitExceeded);
                }
                out_cells += 1;
                outputs[p as usize].push(v);
            }
            PInst::OutSet(p) => {
                underflow!(2);
                let v = stack[sp - 1];
                let idx = stack[sp - 2];
                sp -= 2;
                let out = &mut outputs[p as usize];
                let i = match to_raw_index(idx) {
                    Some(i) => i,
                    None => {
                        return Err(TvmError::IndexOutOfBounds {
                            port: p,
                            index: idx,
                        })
                    }
                };
                if i >= out.len() {
                    let grow = i + 1 - out.len();
                    if out_cells + grow > policy.max_output_cells {
                        return Err(TvmError::OutputLimitExceeded);
                    }
                    out_cells += grow;
                    out.resize(i + 1, 0.0);
                }
                out[i] = v;
            }
            PInst::OutLen(p) => pushv!(outputs[p as usize].len() as f64),
            PInst::HostIo => {
                if !policy.allow_host_io {
                    return Err(TvmError::HostIoDenied);
                }
                underflow!(1);
                stack[sp - 1] = 0.0; // simulated syscall result
            }
            // --- fused windows: legacy check order, see `prepared` docs ---
            PInst::PushBin { op, k } => {
                probe_push!(sp); // push k
                step!(); // bin
                underflow!(1);
                stack[sp - 1] = op.eval(stack[sp - 1], k);
            }
            PInst::LoadBin { op, i } => {
                probe_push!(sp); // push local
                step!(); // bin
                underflow!(1);
                stack[sp - 1] = op.eval(stack[sp - 1], locals[lb + i as usize]);
            }
            PInst::LoadLoad { i, j } => {
                probe_push!(sp);
                step!();
                probe_push!(sp + 1);
                let a = locals[lb + i as usize];
                let b = locals[lb + j as usize];
                if sp + 2 <= stack.len() {
                    stack[sp] = a;
                    stack[sp + 1] = b;
                } else {
                    stack.truncate(sp);
                    stack.push(a);
                    stack.push(b);
                }
                sp += 2;
            }
            PInst::LoadInGet { i, port } => {
                probe_push!(sp); // push local (the index)
                step!(); // inget
                let idx = locals[lb + i as usize];
                let port_data = inputs[port as usize];
                match to_index(idx, port_data.len()) {
                    Some(k) => pushv_raw(stack, sp, port_data[k]),
                    None => return Err(TvmError::IndexOutOfBounds { port, index: idx }),
                }
                sp += 1;
            }
            PInst::BinBr {
                op,
                target,
                jump_if,
            } => {
                underflow!(2);
                step!(); // jz/jnz
                let b = stack[sp - 1];
                let a = stack[sp - 2];
                sp -= 2;
                if (op.eval(a, b) != 0.0) == jump_if {
                    pc = target as usize;
                }
            }
            PInst::PushPushBin(v) => {
                probe_push!(sp);
                step!();
                probe_push!(sp + 1);
                step!(); // bin: pops both transients, pushes the folded value
                pushv_raw(stack, sp, v);
                sp += 1;
            }
            PInst::LoadLoadBinBr {
                i,
                j,
                op,
                target,
                jump_if,
            } => {
                probe_push!(sp);
                step!();
                probe_push!(sp + 1);
                step!(); // bin
                step!(); // jz/jnz
                let a = locals[lb + i as usize];
                let b = locals[lb + j as usize];
                if (op.eval(a, b) != 0.0) == jump_if {
                    pc = target as usize;
                }
            }
            PInst::LocalBinK { op, i, k } => {
                probe_push!(sp); // load
                step!(); // push k
                probe_push!(sp + 1);
                step!(); // bin
                step!(); // store
                let slot = &mut locals[lb + i as usize];
                *slot = op.eval(*slot, k);
            }
            PInst::LocalBinKJmp { op, i, k, target } => {
                probe_push!(sp); // load
                step!(); // push k
                probe_push!(sp + 1);
                step!(); // bin
                step!(); // store
                let slot = &mut locals[lb + i as usize];
                *slot = op.eval(*slot, k);
                step!(); // jmp
                pc = target as usize;
            }
            PInst::DupBin(op) => {
                underflow!(1); // dup
                probe_push!(sp);
                step!(); // bin
                let a = stack[sp - 1];
                stack[sp - 1] = op.eval(a, a);
            }
            PInst::DupDupBinBin { op1, op2 } => {
                underflow!(1); // first dup
                probe_push!(sp);
                step!(); // second dup
                probe_push!(sp + 1);
                step!(); // bin1
                step!(); // bin2
                let a = stack[sp - 1];
                stack[sp - 1] = op2.eval(a, op1.eval(a, a));
            }
            PInst::PushSwapBin { op, k } => {
                probe_push!(sp); // push k
                step!(); // swap
                underflow!(1); // swap needs two incl. the fused transient
                step!(); // bin
                let a = stack[sp - 1];
                stack[sp - 1] = op.eval(k, a);
            }
            PInst::LoadInGetBin { op, i, port } => {
                probe_push!(sp); // load pushes the index
                step!(); // inget
                let idx = locals[lb + i as usize];
                let port_data = inputs[port as usize];
                let v = match to_index(idx, port_data.len()) {
                    Some(x) => port_data[x],
                    None => return Err(TvmError::IndexOutOfBounds { port, index: idx }),
                };
                step!(); // bin
                underflow!(1); // bin needs two incl. the fused transient
                stack[sp - 1] = op.eval(stack[sp - 1], v);
            }
            PInst::LoadInGet2Bin { op, i, j, p, q } => {
                probe_push!(sp); // load i pushes the first index
                step!(); // inget p
                let idx = locals[lb + i as usize];
                let port_data = inputs[p as usize];
                let a = match to_index(idx, port_data.len()) {
                    Some(x) => port_data[x],
                    None => {
                        return Err(TvmError::IndexOutOfBounds {
                            port: p,
                            index: idx,
                        })
                    }
                };
                step!(); // load j
                probe_push!(sp + 1);
                step!(); // inget q
                let idx = locals[lb + j as usize];
                let port_data = inputs[q as usize];
                let b = match to_index(idx, port_data.len()) {
                    Some(x) => port_data[x],
                    None => {
                        return Err(TvmError::IndexOutOfBounds {
                            port: q,
                            index: idx,
                        })
                    }
                };
                step!(); // bin: both operands are fused transients
                pushv_raw(stack, sp, op.eval(a, b));
                sp += 1;
            }
            PInst::LoadBinStore { op, i, dst } => {
                probe_push!(sp); // load
                step!(); // bin
                underflow!(1); // bin needs two incl. the fused transient
                step!(); // store
                let v = stack[sp - 1];
                sp -= 1;
                locals[lb + dst as usize] = op.eval(v, locals[lb + i as usize]);
            }
        }
    }

    Ok(ExecStats {
        instructions: instr,
        max_stack: max_sp,
    })
}

/// Write at `sp` (overflow already checked), growing the buffer if this
/// depth has never been reached. High-water update is the caller's duty.
#[inline(always)]
fn pushv_raw(stack: &mut Vec<f64>, sp: usize, v: f64) {
    if sp < stack.len() {
        stack[sp] = v;
    } else {
        stack.truncate(sp);
        stack.push(v);
    }
}

fn to_index(x: f64, len: usize) -> Option<usize> {
    let i = to_raw_index(x)?;
    (i < len).then_some(i)
}

fn to_raw_index(x: f64) -> Option<usize> {
    if !x.is_finite() || x < 0.0 || x > (1u64 << 52) as f64 {
        return None;
    }
    Some(x as usize)
}

impl LoopRegion {
    /// Run whole iterations in register form. Returns `Ok(false)` when the
    /// entry preconditions refuse the first iteration (state untouched —
    /// the caller steps precisely), `Ok(true)` after an exit or a
    /// mid-flight fallback (state synced; `st.pc` names the resume point),
    /// and `Err` for data-dependent faults, which discard stats exactly as
    /// the stack tiers do.
    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        inputs: &[&[f64]],
        policy: &SandboxPolicy,
        stack: &mut Vec<f64>,
        locals: &mut [f64],
        outputs: &mut [Vec<f64>],
        regs: &mut Vec<f64>,
        st: &mut VmState,
        fallbacks: &mut u64,
    ) -> Result<bool, TvmError> {
        let nl = self.n_locals as usize;
        if regs.len() < self.n_regs as usize {
            regs.resize(self.n_regs as usize, 0.0);
        }
        // Plain-slice view: keeps register access off the Vec indirection
        // inside the hot dispatch loop.
        let regs: &mut [f64] = &mut regs[..];
        // Head preconditions, hoisted out of the iteration loop. One full
        // iteration must fit the budget (the k-th of `full_cost` source ops
        // needs `instr + k <= max`) and the stack headroom (`peak_full`
        // pushes above entry sp). A partial path might fit where the full
        // one does not; the precise fallback path handles those at legacy
        // fidelity. The stack test is iteration-invariant (sp only moves at
        // exits) and the budget admits exactly `budget_iters` full
        // iterations, so the per-iteration precondition collapses to one
        // counter compare — `st.instr` is charged in bulk on whichever path
        // leaves the loop, identical to per-iteration accrual.
        if st.instr + self.full_cost > policy.max_instructions
            || st.sp + self.peak_full > policy.max_stack
        {
            return Ok(false);
        }
        let budget_iters = (policy.max_instructions - st.instr) / self.full_cost;
        let mut iters: u64 = 0;
        regs[..nl].copy_from_slice(locals);
        for &(r, v) in &self.consts {
            regs[r as usize] = v;
        }
        // Counted loops open with a fused exit test; running it outside
        // the dispatch loop saves one dispatch per iteration. Semantics
        // are those of the `BinExit` arm below, verbatim.
        let (head, body) = match self.ops.split_first() {
            Some((
                &RegOp::BinExit {
                    op,
                    a,
                    b,
                    exit_if_zero,
                    exit,
                },
                rest,
            )) => (Some((op, a, b, exit_if_zero, exit)), rest),
            _ => (None, &self.ops[..]),
        };
        // Likewise every region closes with its back-edge; running it
        // inline after the body leaves only the interior ops on the
        // dispatch loop. Semantics of the `Back`/`BinBack` arms, verbatim.
        let (tail, body) = match body.split_last() {
            Some((&RegOp::Back { cond, fall_exit }, rest)) => (Some((None, cond, fall_exit)), rest),
            Some((
                &RegOp::BinBack {
                    op,
                    dst,
                    a,
                    b,
                    cond,
                    fall_exit,
                },
                rest,
            )) => (Some((Some((op, dst, a, b)), cond, fall_exit)), rest),
            _ => (None, body),
        };
        'iter: loop {
            if iters == budget_iters {
                // The budget refuses the next full iteration mid-flight.
                st.instr += iters * self.full_cost;
                *fallbacks += 1;
                if st.sp + self.peak_full > st.max_sp {
                    st.max_sp = st.sp + self.peak_full;
                }
                locals.copy_from_slice(&regs[..nl]);
                return Ok(true);
            }
            if let Some((op, a, b, exit_if_zero, exit)) = head {
                let v = op.eval(regs[a as usize], regs[b as usize]);
                if (v == 0.0) == exit_if_zero {
                    return self.take_exit(exit, iters, stack, locals, regs, st);
                }
            }
            for op in body {
                match *op {
                    RegOp::Mov { dst, src } => regs[dst as usize] = regs[src as usize],
                    RegOp::Bin { op, dst, a, b } => {
                        regs[dst as usize] = op.eval(regs[a as usize], regs[b as usize]);
                    }
                    RegOp::Bin2 {
                        op1,
                        a,
                        b,
                        op2,
                        c,
                        d,
                        dst,
                    } => {
                        let t = op1.eval(regs[a as usize], regs[b as usize]);
                        let lc = if c == SELF_OPERAND {
                            t
                        } else {
                            regs[c as usize]
                        };
                        let rd = if d == SELF_OPERAND {
                            t
                        } else {
                            regs[d as usize]
                        };
                        regs[dst as usize] = op2.eval(lc, rd);
                    }
                    RegOp::Un { op, dst, src } => {
                        regs[dst as usize] = op.eval(regs[src as usize]);
                    }
                    RegOp::InLen { dst, port } => {
                        regs[dst as usize] = inputs[port as usize].len() as f64;
                    }
                    RegOp::OutLen { dst, port } => {
                        regs[dst as usize] = outputs[port as usize].len() as f64;
                    }
                    RegOp::InGet { dst, port, idx } => {
                        let x = regs[idx as usize];
                        let data = inputs[port as usize];
                        match to_index(x, data.len()) {
                            Some(i) => regs[dst as usize] = data[i],
                            None => return Err(TvmError::IndexOutOfBounds { port, index: x }),
                        }
                    }
                    RegOp::OutPush { port, src } => {
                        if st.out_cells >= policy.max_output_cells {
                            return Err(TvmError::OutputLimitExceeded);
                        }
                        st.out_cells += 1;
                        outputs[port as usize].push(regs[src as usize]);
                    }
                    RegOp::OutSet { port, idx, val } => {
                        let x = regs[idx as usize];
                        let i = match to_raw_index(x) {
                            Some(i) => i,
                            None => return Err(TvmError::IndexOutOfBounds { port, index: x }),
                        };
                        let out = &mut outputs[port as usize];
                        if i >= out.len() {
                            let grow = i + 1 - out.len();
                            if st.out_cells + grow > policy.max_output_cells {
                                return Err(TvmError::OutputLimitExceeded);
                            }
                            st.out_cells += grow;
                            out.resize(i + 1, 0.0);
                        }
                        out[i] = regs[val as usize];
                    }
                    RegOp::HostIo { dst } => {
                        if !policy.allow_host_io {
                            return Err(TvmError::HostIoDenied);
                        }
                        regs[dst as usize] = 0.0; // simulated syscall result
                    }
                    RegOp::BinExit {
                        op,
                        a,
                        b,
                        exit_if_zero,
                        exit,
                    } => {
                        let v = op.eval(regs[a as usize], regs[b as usize]);
                        if (v == 0.0) == exit_if_zero {
                            return self.take_exit(exit, iters, stack, locals, regs, st);
                        }
                    }
                    RegOp::CondExit {
                        cond,
                        exit_if_zero,
                        exit,
                    } => {
                        if (regs[cond as usize] == 0.0) == exit_if_zero {
                            return self.take_exit(exit, iters, stack, locals, regs, st);
                        }
                    }
                    RegOp::Back { cond, fall_exit } => {
                        let take = match cond {
                            CondBack::Always => true,
                            CondBack::IfZero(r) => regs[r as usize] == 0.0,
                            CondBack::IfNonZero(r) => regs[r as usize] != 0.0,
                        };
                        if take {
                            iters += 1;
                            continue 'iter;
                        }
                        // The fall-through exit's cost equals `full_cost`,
                        // charged inside take_exit.
                        return self.take_exit(fall_exit, iters, stack, locals, regs, st);
                    }
                    RegOp::In2 {
                        dst1,
                        port1,
                        dst2,
                        port2,
                        idx,
                    } => {
                        let x = regs[idx as usize];
                        let d1 = inputs[port1 as usize];
                        let v1 = match to_index(x, d1.len()) {
                            Some(i) => d1[i],
                            None => {
                                return Err(TvmError::IndexOutOfBounds {
                                    port: port1,
                                    index: x,
                                })
                            }
                        };
                        let d2 = inputs[port2 as usize];
                        let v2 = match to_index(x, d2.len()) {
                            Some(i) => d2[i],
                            None => {
                                return Err(TvmError::IndexOutOfBounds {
                                    port: port2,
                                    index: x,
                                })
                            }
                        };
                        regs[dst1 as usize] = v1;
                        regs[dst2 as usize] = v2;
                    }
                    RegOp::In2Bin2 {
                        port1,
                        port2,
                        idx,
                        op1,
                        op2,
                        c,
                        d,
                        dst,
                    } => {
                        let x = regs[idx as usize];
                        let d1 = inputs[port1 as usize];
                        let v1 = match to_index(x, d1.len()) {
                            Some(i) => d1[i],
                            None => {
                                return Err(TvmError::IndexOutOfBounds {
                                    port: port1,
                                    index: x,
                                })
                            }
                        };
                        let d2 = inputs[port2 as usize];
                        let v2 = match to_index(x, d2.len()) {
                            Some(i) => d2[i],
                            None => {
                                return Err(TvmError::IndexOutOfBounds {
                                    port: port2,
                                    index: x,
                                })
                            }
                        };
                        let t = op1.eval(v1, v2);
                        let lc = if c == SELF_OPERAND {
                            t
                        } else {
                            regs[c as usize]
                        };
                        let rd = if d == SELF_OPERAND {
                            t
                        } else {
                            regs[d as usize]
                        };
                        regs[dst as usize] = op2.eval(lc, rd);
                    }
                    RegOp::Bin3 {
                        op1,
                        a,
                        b,
                        op2,
                        c,
                        d,
                        op3,
                        e,
                        f,
                        dst,
                    } => {
                        let t = op1.eval(regs[a as usize], regs[b as usize]);
                        let lc = if c == SELF_OPERAND {
                            t
                        } else {
                            regs[c as usize]
                        };
                        let rd = if d == SELF_OPERAND {
                            t
                        } else {
                            regs[d as usize]
                        };
                        let u = op2.eval(lc, rd);
                        let le = if e == SELF_OPERAND {
                            u
                        } else {
                            regs[e as usize]
                        };
                        let rf = if f == SELF_OPERAND {
                            u
                        } else {
                            regs[f as usize]
                        };
                        regs[dst as usize] = op3.eval(le, rf);
                    }
                    RegOp::InGetBin3 {
                        port,
                        idx,
                        op1,
                        a,
                        b,
                        op2,
                        c,
                        d,
                        op3,
                        e,
                        f,
                        dst,
                    } => {
                        let x = regs[idx as usize];
                        let data = inputs[port as usize];
                        let v = match to_index(x, data.len()) {
                            Some(i) => data[i],
                            None => return Err(TvmError::IndexOutOfBounds { port, index: x }),
                        };
                        let rd = |r: u16, prev: f64| match r {
                            SELF_OPERAND => prev,
                            GET_OPERAND => v,
                            _ => regs[r as usize],
                        };
                        let t = op1.eval(rd(a, 0.0), rd(b, 0.0));
                        let u = op2.eval(rd(c, t), rd(d, t));
                        let res = op3.eval(rd(e, u), rd(f, u));
                        regs[dst as usize] = res;
                    }
                    RegOp::GetChainPush {
                        port,
                        idx,
                        op1,
                        a,
                        b,
                        op2,
                        c,
                        d,
                        op3,
                        e,
                        f,
                        op4,
                        g,
                        h,
                        op5,
                        i,
                        j,
                        out,
                    } => {
                        let x = regs[idx as usize];
                        let data = inputs[port as usize];
                        let v = match to_index(x, data.len()) {
                            Some(k) => data[k],
                            None => return Err(TvmError::IndexOutOfBounds { port, index: x }),
                        };
                        let rd = |r: u16, prev: f64| match r {
                            SELF_OPERAND => prev,
                            GET_OPERAND => v,
                            _ => regs[r as usize],
                        };
                        let t = op1.eval(rd(a, 0.0), rd(b, 0.0));
                        let u = op2.eval(rd(c, t), rd(d, t));
                        let w = op3.eval(rd(e, u), rd(f, u));
                        let rd2 = |r: u16, prev: f64| match r {
                            SELF_OPERAND => prev,
                            GET_OPERAND => v,
                            CHAIN3_OPERAND => w,
                            _ => regs[r as usize],
                        };
                        let p = op4.eval(rd2(g, 0.0), rd2(h, 0.0));
                        let q = op5.eval(rd2(i, p), rd2(j, p));
                        if st.out_cells >= policy.max_output_cells {
                            return Err(TvmError::OutputLimitExceeded);
                        }
                        st.out_cells += 1;
                        outputs[out as usize].push(q);
                    }
                    RegOp::BinPush { op, a, b, port } => {
                        let v = op.eval(regs[a as usize], regs[b as usize]);
                        if st.out_cells >= policy.max_output_cells {
                            return Err(TvmError::OutputLimitExceeded);
                        }
                        st.out_cells += 1;
                        outputs[port as usize].push(v);
                    }
                    RegOp::Bin2Push {
                        op1,
                        a,
                        b,
                        op2,
                        c,
                        d,
                        port,
                    } => {
                        let t = op1.eval(regs[a as usize], regs[b as usize]);
                        let lc = if c == SELF_OPERAND {
                            t
                        } else {
                            regs[c as usize]
                        };
                        let rd = if d == SELF_OPERAND {
                            t
                        } else {
                            regs[d as usize]
                        };
                        let v = op2.eval(lc, rd);
                        if st.out_cells >= policy.max_output_cells {
                            return Err(TvmError::OutputLimitExceeded);
                        }
                        st.out_cells += 1;
                        outputs[port as usize].push(v);
                    }
                    RegOp::BinBack {
                        op,
                        dst,
                        a,
                        b,
                        cond,
                        fall_exit,
                    } => {
                        let v = op.eval(regs[a as usize], regs[b as usize]);
                        regs[dst as usize] = v;
                        let take = match cond {
                            CondBack::Always => true,
                            CondBack::IfZero(r) => regs[r as usize] == 0.0,
                            CondBack::IfNonZero(r) => regs[r as usize] != 0.0,
                        };
                        if take {
                            iters += 1;
                            continue 'iter;
                        }
                        return self.take_exit(fall_exit, iters, stack, locals, regs, st);
                    }
                }
            }
            match tail {
                Some((bin, cond, fall_exit)) => {
                    if let Some((op, dst, a, b)) = bin {
                        regs[dst as usize] = op.eval(regs[a as usize], regs[b as usize]);
                    }
                    let take = match cond {
                        CondBack::Always => true,
                        CondBack::IfZero(r) => regs[r as usize] == 0.0,
                        CondBack::IfNonZero(r) => regs[r as usize] != 0.0,
                    };
                    if take {
                        iters += 1;
                        continue 'iter;
                    }
                    return self.take_exit(fall_exit, iters, stack, locals, regs, st);
                }
                None => unreachable!("translated region body must terminate with Back"),
            }
        }
    }

    /// Leave the region through exit `e`: charge the partial path, restore
    /// the stack high-water mark, materialise the symbolic stack, sync the
    /// locals, and point `st.pc` at the resume target.
    fn take_exit(
        &self,
        e: u16,
        iters: u64,
        stack: &mut Vec<f64>,
        locals: &mut [f64],
        regs: &[f64],
        st: &mut VmState,
    ) -> Result<bool, TvmError> {
        let ex = &self.exits[e as usize];
        st.instr += iters * self.full_cost + ex.cost;
        // Completed iterations reached the full-path peak; a first-iteration
        // exit only reached the peak of its partial path.
        let peak = if iters > 0 { self.peak_full } else { ex.peak };
        if st.sp + peak > st.max_sp {
            st.max_sp = st.sp + peak;
        }
        for &r in &ex.pushes {
            pushv_raw(stack, st.sp, regs[r as usize]);
            st.sp += 1;
        }
        locals.copy_from_slice(&regs[..self.n_locals as usize]);
        st.pc = ex.target_flat as usize;
        Ok(true)
    }
}

/// Detect and translate the hot-loop regions of one function.
///
/// A candidate is any branch at `b` whose target `h <= b` (a back-edge);
/// candidates are tried innermost-first (ascending span) and accepted
/// greedily when disjoint, translatable, and closed: no branch outside
/// `[h, b]` may land strictly inside `(h, b]` (the head is the only way
/// in), and the body must be straight-line (no calls, returns, halts, or
/// interior jumps) with its stack traffic never dipping below the depth
/// at entry.
fn detect_function_regions(
    code: &[Op],
    n_locals: u16,
    flat_of: &dyn Fn(usize) -> u32,
) -> Vec<LoopRegion> {
    let branch_target = |op: Op| -> Option<usize> {
        match op {
            Op::Jmp(t) | Op::Jz(t) | Op::Jnz(t) => Some(t as usize),
            _ => None,
        }
    };
    let mut cands: Vec<(usize, usize)> = Vec::new();
    for (pc, &op) in code.iter().enumerate() {
        if let Some(t) = branch_target(op) {
            if t <= pc {
                cands.push((t, pc));
            }
        }
    }
    cands.sort_by_key(|&(h, b)| (b - h, h));

    let mut accepted: Vec<(usize, usize)> = Vec::new();
    let mut out = Vec::new();
    'cand: for (h, b) in cands {
        if b - h + 1 > MAX_REGION_OPS {
            continue;
        }
        if accepted.iter().any(|&(ah, ab)| h <= ab && ah <= b) {
            continue;
        }
        // Closed-entry check: no outside branch into (h, b].
        for (pc, &op) in code.iter().enumerate() {
            if (h..=b).contains(&pc) {
                continue;
            }
            if let Some(t) = branch_target(op) {
                if t > h && t <= b {
                    continue 'cand;
                }
            }
        }
        if let Some(region) = translate_region(code, h, b, n_locals, flat_of) {
            accepted.push((h, b));
            out.push(region);
        }
    }
    out
}

/// The stack-to-register translator. The symbolic operand stack holds
/// register ids; pure stack shuffles (push/load/dup/swap/over/pop) emit
/// no code at all, and `store` tries to retarget the producing op's
/// destination straight into the local's register.
struct Translator {
    n_locals: u16,
    next_reg: u16,
    /// Constant pool: value bits → register, for dedup.
    const_ids: Vec<(u64, u16)>,
    consts: Vec<(u16, f64)>,
    ops: Vec<RegOp>,
    /// Symbolic operand stack of register ids, relative to entry depth.
    stack: Vec<u16>,
    /// Peak symbolic depth so far (== peak stack growth of the path).
    peak: usize,
    exits: Vec<RegionExit>,
}

impl Translator {
    fn new(n_locals: u16) -> Self {
        Translator {
            n_locals,
            next_reg: n_locals,
            const_ids: Vec::new(),
            consts: Vec::new(),
            ops: Vec::new(),
            stack: Vec::new(),
            peak: 0,
            exits: Vec::new(),
        }
    }

    /// A fresh single-assignment temporary.
    fn temp(&mut self) -> Option<u16> {
        if self.next_reg as usize >= MAX_REGION_REGS {
            return None;
        }
        let r = self.next_reg;
        self.next_reg += 1;
        Some(r)
    }

    /// The pool register holding constant `k` (bit-exact dedup).
    fn const_reg(&mut self, k: f64) -> Option<u16> {
        let bits = k.to_bits();
        if let Some(&(_, r)) = self.const_ids.iter().find(|&&(b, _)| b == bits) {
            return Some(r);
        }
        let r = self.temp()?;
        self.const_ids.push((bits, r));
        self.consts.push((r, k));
        Some(r)
    }

    /// `r` names a temporary (not a local mirror, not a pool constant).
    fn is_temp(&self, r: u16) -> bool {
        r >= self.n_locals && !self.const_ids.iter().any(|&(_, cr)| cr == r)
    }

    /// A dead temporary whose producing op may be rewritten: on the
    /// symbolic stack nowhere, referenced by no recorded exit snapshot.
    fn can_absorb(&self, r: u16) -> bool {
        self.is_temp(r)
            && !self.stack.contains(&r)
            && !self.exits.iter().any(|e| e.pushes.contains(&r))
    }

    /// Net-push: grows the symbolic stack and the path peak.
    fn push_grow(&mut self, r: u16) {
        self.stack.push(r);
        if self.stack.len() > self.peak {
            self.peak = self.stack.len();
        }
    }

    /// Replacement push (a pop already made room): no peak change.
    fn push_flat(&mut self, r: u16) {
        self.stack.push(r);
    }

    fn pop(&mut self) -> Option<u16> {
        self.stack.pop()
    }

    fn add_exit(&mut self, target_flat: u32, cost: u64, peak: usize, pushes: Vec<u16>) -> u16 {
        self.exits.push(RegionExit {
            target_flat,
            cost,
            peak,
            pushes,
        });
        (self.exits.len() - 1) as u16
    }

    /// `store i`: protect live aliases of the local's old value, then
    /// either retarget the producing op's destination or emit a `Mov`.
    fn store(&mut self, i: u16) -> Option<()> {
        let top = self.pop()?;
        let alias = self.stack.contains(&i);
        let can_patch = top != i
            && self.can_absorb(top)
            && matches!(
                self.ops.last(),
                Some(
                    RegOp::Mov { dst, .. }
                        | RegOp::Bin { dst, .. }
                        | RegOp::Bin2 { dst, .. }
                        | RegOp::Un { dst, .. }
                        | RegOp::InLen { dst, .. }
                        | RegOp::OutLen { dst, .. }
                        | RegOp::InGet { dst, .. }
                        | RegOp::HostIo { dst }
                ) if *dst == top
            );
        // The alias-preserving Mov must read the local *before* the new
        // value lands, so it goes in front of a retargeted producer.
        let mov_pos = if can_patch {
            self.ops.len() - 1
        } else {
            self.ops.len()
        };
        if alias {
            let fresh = self.temp()?;
            self.ops.insert(mov_pos, RegOp::Mov { dst: fresh, src: i });
            for s in self.stack.iter_mut() {
                if *s == i {
                    *s = fresh;
                }
            }
        }
        if can_patch {
            match self.ops.last_mut() {
                Some(
                    RegOp::Mov { dst, .. }
                    | RegOp::Bin { dst, .. }
                    | RegOp::Bin2 { dst, .. }
                    | RegOp::Un { dst, .. }
                    | RegOp::InLen { dst, .. }
                    | RegOp::OutLen { dst, .. }
                    | RegOp::InGet { dst, .. }
                    | RegOp::HostIo { dst },
                ) => *dst = i,
                _ => unreachable!("can_patch checked the producer shape"),
            }
        } else if top != i {
            self.ops.push(RegOp::Mov { dst: i, src: top });
        }
        // `top == i` without a patch is a no-op: a surviving `i` on the
        // symbolic stack means the local is unchanged since its load.
        Some(())
    }

    /// A binop, fusing with an immediately preceding `Bin` whose dead
    /// temporary feeds this one.
    fn bin(&mut self, op: BinOp) -> Option<()> {
        let rb = self.pop()?;
        let ra = self.pop()?;
        if let Some(&RegOp::Bin {
            op: op1,
            dst: prev,
            a,
            b,
        }) = self.ops.last()
        {
            if (ra == prev || rb == prev) && self.can_absorb(prev) {
                let dst = self.temp()?;
                let c = if ra == prev { SELF_OPERAND } else { ra };
                let d = if rb == prev { SELF_OPERAND } else { rb };
                *self.ops.last_mut().unwrap() = RegOp::Bin2 {
                    op1,
                    a,
                    b,
                    op2: op,
                    c,
                    d,
                    dst,
                };
                self.push_flat(dst);
                return Some(());
            }
        }
        let dst = self.temp()?;
        self.ops.push(RegOp::Bin {
            op,
            dst,
            a: ra,
            b: rb,
        });
        self.push_flat(dst);
        Some(())
    }
}

/// Does `op` read register `r` (as an operand — destinations excluded)?
fn reads(op: &RegOp, r: u16) -> bool {
    let back_reads = |cond: &CondBack| match *cond {
        CondBack::Always => false,
        CondBack::IfZero(c) | CondBack::IfNonZero(c) => c == r,
    };
    match *op {
        RegOp::Mov { src, .. } => src == r,
        RegOp::Bin { a, b, .. } | RegOp::BinPush { a, b, .. } => a == r || b == r,
        RegOp::Bin2 { a, b, c, d, .. } | RegOp::Bin2Push { a, b, c, d, .. } => {
            a == r || b == r || c == r || d == r
        }
        RegOp::Bin3 {
            a, b, c, d, e, f, ..
        } => a == r || b == r || c == r || d == r || e == r || f == r,
        RegOp::InGetBin3 {
            idx,
            a,
            b,
            c,
            d,
            e,
            f,
            ..
        } => idx == r || a == r || b == r || c == r || d == r || e == r || f == r,
        RegOp::GetChainPush {
            idx,
            a,
            b,
            c,
            d,
            e,
            f,
            g,
            h,
            i,
            j,
            ..
        } => [idx, a, b, c, d, e, f, g, h, i, j].contains(&r),
        RegOp::Un { src, .. } => src == r,
        RegOp::InLen { .. } | RegOp::OutLen { .. } | RegOp::HostIo { .. } => false,
        RegOp::InGet { idx, .. } | RegOp::In2 { idx, .. } => idx == r,
        RegOp::In2Bin2 { idx, c, d, .. } => idx == r || c == r || d == r,
        RegOp::OutPush { src, .. } => src == r,
        RegOp::OutSet { idx, val, .. } => idx == r || val == r,
        RegOp::BinExit { a, b, .. } => a == r || b == r,
        RegOp::CondExit { cond, .. } => cond == r,
        RegOp::Back { ref cond, .. } => back_reads(cond),
        RegOp::BinBack { a, b, ref cond, .. } => a == r || b == r || back_reads(cond),
    }
}

/// Peephole combiner: fuse adjacent op pairs whose link register is a
/// dead single-assignment temporary into superinstructions, repeating
/// until a pass makes no change. Every fused op performs its constituent
/// checks in the original order, and fusion never crosses an exit-capable
/// op, so outputs, metering, and the error taxonomy are untouched — only
/// dispatch count drops. `is_temp` must exclude local mirrors and pool
/// constants; a temp is dead when no later op reads it and no exit
/// snapshot pushes it.
fn peephole(
    mut ops: Vec<RegOp>,
    exits: &[RegionExit],
    is_temp: &dyn Fn(u16) -> bool,
) -> Vec<RegOp> {
    loop {
        let mut out: Vec<RegOp> = Vec::with_capacity(ops.len());
        let mut changed = false;
        for (i, op) in ops.iter().enumerate() {
            let dead = |t: u16| {
                is_temp(t)
                    && !ops[i + 1..].iter().any(|later| reads(later, t))
                    && !exits.iter().any(|e| e.pushes.contains(&t))
            };
            let fused = match (out.last().copied(), *op) {
                (
                    Some(RegOp::InGet {
                        dst: dst1,
                        port: port1,
                        idx,
                    }),
                    RegOp::InGet {
                        dst: dst2,
                        port: port2,
                        idx: idx2,
                    },
                ) if idx == idx2 && dst1 != idx => Some(RegOp::In2 {
                    dst1,
                    port1,
                    dst2,
                    port2,
                    idx,
                }),
                (
                    Some(RegOp::In2 {
                        dst1,
                        port1,
                        dst2,
                        port2,
                        idx,
                    }),
                    RegOp::Bin2 {
                        op1,
                        a,
                        b,
                        op2,
                        c,
                        d,
                        dst,
                    },
                ) if a == dst1
                    && b == dst2
                    && c != dst1
                    && c != dst2
                    && d != dst1
                    && d != dst2
                    && dead(dst1)
                    && dead(dst2) =>
                {
                    Some(RegOp::In2Bin2 {
                        port1,
                        port2,
                        idx,
                        op1,
                        op2,
                        c,
                        d,
                        dst,
                    })
                }
                (
                    Some(RegOp::Bin2 {
                        op1,
                        a,
                        b,
                        op2,
                        c,
                        d,
                        dst: t,
                    }),
                    RegOp::Bin {
                        op: op3,
                        dst,
                        a: ra,
                        b: rb,
                    },
                ) if (ra == t || rb == t) && dead(t) => Some(RegOp::Bin3 {
                    op1,
                    a,
                    b,
                    op2,
                    c,
                    d,
                    op3,
                    e: if ra == t { SELF_OPERAND } else { ra },
                    f: if rb == t { SELF_OPERAND } else { rb },
                    dst,
                }),
                (
                    Some(RegOp::InGet { dst: g, port, idx }),
                    RegOp::Bin3 {
                        op1,
                        a,
                        b,
                        op2,
                        c,
                        d,
                        op3,
                        e,
                        f,
                        dst,
                    },
                ) if g != idx && dead(g) => {
                    let m = |r: u16| if r == g { GET_OPERAND } else { r };
                    Some(RegOp::InGetBin3 {
                        port,
                        idx,
                        op1,
                        a: m(a),
                        b: m(b),
                        op2,
                        c: m(c),
                        d: m(d),
                        op3,
                        e: m(e),
                        f: m(f),
                        dst,
                    })
                }
                (
                    Some(RegOp::InGetBin3 {
                        port,
                        idx,
                        op1,
                        a,
                        b,
                        op2,
                        c,
                        d,
                        op3,
                        e,
                        f,
                        dst,
                    }),
                    RegOp::Bin2Push {
                        op1: op4,
                        a: g,
                        b: h,
                        op2: op5,
                        c: i,
                        d: j,
                        port: out,
                    },
                ) if dead(dst) => {
                    let m = |r: u16| if r == dst { CHAIN3_OPERAND } else { r };
                    Some(RegOp::GetChainPush {
                        port,
                        idx,
                        op1,
                        a,
                        b,
                        op2,
                        c,
                        d,
                        op3,
                        e,
                        f,
                        op4,
                        g: m(g),
                        h: m(h),
                        op5,
                        i: m(i),
                        j: m(j),
                        out,
                    })
                }
                (
                    Some(RegOp::Bin2 {
                        op1,
                        a,
                        b,
                        op2,
                        c,
                        d,
                        dst: t,
                    }),
                    RegOp::OutPush { port, src },
                ) if src == t && dead(t) => Some(RegOp::Bin2Push {
                    op1,
                    a,
                    b,
                    op2,
                    c,
                    d,
                    port,
                }),
                (Some(RegOp::Bin { op, dst: t, a, b }), RegOp::OutPush { port, src })
                    if src == t && dead(t) =>
                {
                    Some(RegOp::BinPush { op, a, b, port })
                }
                (Some(RegOp::Bin { op, dst, a, b }), RegOp::Back { cond, fall_exit }) => {
                    Some(RegOp::BinBack {
                        op,
                        dst,
                        a,
                        b,
                        cond,
                        fall_exit,
                    })
                }
                _ => None,
            };
            match fused {
                Some(f) => {
                    *out.last_mut().unwrap() = f;
                    changed = true;
                }
                None => out.push(*op),
            }
        }
        ops = out;
        if !changed {
            return ops;
        }
    }
}

/// Translate source ops `[h, b]` (`code[b]` is the back-edge branch to
/// `h`) into register form, or `None` when the body defeats translation.
fn translate_region(
    code: &[Op],
    h: usize,
    b: usize,
    n_locals: u16,
    flat_of: &dyn Fn(usize) -> u32,
) -> Option<LoopRegion> {
    let full_cost = (b - h + 1) as u64;
    let mut t = Translator::new(n_locals);
    for pc in h..=b {
        let op = code[pc];
        let at_back = pc == b;
        if let Some(bin) = BinOp::of(op) {
            // A comparison feeding the back-edge or a forward exit is
            // handled by the branch translation below via `Bin` fusion.
            t.bin(bin)?;
            continue;
        }
        if let Some(un) = UnOp::of(op) {
            let src = t.pop()?;
            let dst = t.temp()?;
            t.ops.push(RegOp::Un { op: un, dst, src });
            t.push_flat(dst);
            continue;
        }
        match op {
            Op::Push(k) => {
                let r = t.const_reg(k)?;
                t.push_grow(r);
            }
            Op::Pop => {
                t.pop()?;
            }
            Op::Dup => {
                let a = *t.stack.last()?;
                t.push_grow(a);
            }
            Op::Swap => {
                let n = t.stack.len();
                if n < 2 {
                    return None;
                }
                t.stack.swap(n - 1, n - 2);
            }
            Op::Over => {
                let n = t.stack.len();
                if n < 2 {
                    return None;
                }
                let a = t.stack[n - 2];
                t.push_grow(a);
            }
            Op::Load(i) => t.push_grow(i),
            Op::Store(i) => t.store(i)?,
            Op::InLen(p) => {
                let dst = t.temp()?;
                t.ops.push(RegOp::InLen { dst, port: p });
                t.push_grow(dst);
            }
            Op::OutLen(p) => {
                let dst = t.temp()?;
                t.ops.push(RegOp::OutLen { dst, port: p });
                t.push_grow(dst);
            }
            Op::InGet(p) => {
                let idx = t.pop()?;
                let dst = t.temp()?;
                t.ops.push(RegOp::InGet { dst, port: p, idx });
                t.push_flat(dst);
            }
            Op::OutPush(p) => {
                let src = t.pop()?;
                t.ops.push(RegOp::OutPush { port: p, src });
            }
            Op::OutSet(p) => {
                let val = t.pop()?;
                let idx = t.pop()?;
                t.ops.push(RegOp::OutSet { port: p, idx, val });
            }
            Op::HostIo(_) => {
                t.pop()?;
                let dst = t.temp()?;
                t.ops.push(RegOp::HostIo { dst });
                t.push_flat(dst);
            }
            Op::Jmp(target) => {
                if !(at_back && target as usize == h && t.stack.is_empty()) {
                    return None;
                }
                t.ops.push(RegOp::Back {
                    cond: CondBack::Always,
                    fall_exit: NO_EXIT,
                });
            }
            Op::Jz(target) | Op::Jnz(target) => {
                let on_zero = matches!(op, Op::Jz(_));
                let cond = t.pop()?;
                if at_back && target as usize == h {
                    // Conditional back-edge; its fall-through is a full-
                    // cost exit to b+1 (which exists: the verifier demands
                    // a terminator after a conditional last op).
                    if !t.stack.is_empty() || b + 1 >= code.len() {
                        return None;
                    }
                    let fall = t.add_exit(flat_of(b + 1), full_cost, t.peak, Vec::new());
                    t.ops.push(RegOp::Back {
                        cond: if on_zero {
                            CondBack::IfZero(cond)
                        } else {
                            CondBack::IfNonZero(cond)
                        },
                        fall_exit: fall,
                    });
                } else if target as usize > b {
                    // Forward exit out of the region.
                    let cost = (pc - h + 1) as u64;
                    let peak = t.peak;
                    let pushes = t.stack.clone();
                    let exit = t.add_exit(flat_of(target as usize), cost, peak, pushes);
                    if let Some(&RegOp::Bin {
                        op: bop,
                        dst,
                        a,
                        b: rb,
                    }) = t.ops.last()
                    {
                        if dst == cond && t.can_absorb(cond) {
                            *t.ops.last_mut().unwrap() = RegOp::BinExit {
                                op: bop,
                                a,
                                b: rb,
                                exit_if_zero: on_zero,
                                exit,
                            };
                            continue;
                        }
                    }
                    t.ops.push(RegOp::CondExit {
                        cond,
                        exit_if_zero: on_zero,
                        exit,
                    });
                } else {
                    // Interior branch or a non-terminal back-edge.
                    return None;
                }
            }
            Op::Call(_) | Op::Ret | Op::Halt => return None,
            _ => unreachable!("arithmetic handled above"),
        }
    }
    if !matches!(t.ops.last(), Some(RegOp::Back { .. })) {
        return None;
    }
    let ops = std::mem::take(&mut t.ops);
    let ops = peephole(ops, &t.exits, &|r| t.is_temp(r));
    Some(LoopRegion {
        head_flat: flat_of(h),
        n_locals,
        n_regs: t.next_reg,
        consts: t.consts,
        ops,
        full_cost,
        peak_full: t.peak,
        exits: t.exits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Function;
    use crate::{execute, Module};
    use Op::*;

    fn module1(code: Vec<Op>, n_locals: u16, n_inputs: u8, n_outputs: u8) -> Module {
        Module {
            name: "t2".into(),
            version: 1,
            n_inputs,
            n_outputs,
            functions: vec![Function {
                name: "main".into(),
                n_locals,
                code,
            }],
        }
    }

    /// The doubler loop: `out[i] = 2 * in[i]` — the canonical hot loop.
    fn doubler() -> Module {
        module1(
            vec![
                InLen(0),   // 0
                Store(0),   // 1
                Push(0.0),  // 2
                Store(1),   // 3
                Load(1),    // 4 <- loop head
                Load(0),    // 5
                Lt,         // 6
                Jz(18),     // 7 forward exit
                Load(1),    // 8
                InGet(0),   // 9
                Push(2.0),  // 10
                Mul,        // 11
                OutPush(0), // 12
                Load(1),    // 13
                Push(1.0),  // 14
                Add,        // 15
                Store(1),   // 16
                Jmp(4),     // 17 back-edge
                Halt,       // 18
            ],
            2,
            1,
            1,
        )
    }

    fn agree(m: &Module, inputs: &[&[f64]], policy: &SandboxPolicy) {
        let legacy = execute(m, inputs, policy);
        let t2 = Tier2Module::prepare(m).expect("verifies");
        let mut ctx = ExecContext::new();
        // Twice, to cover context reuse.
        for round in 0..2 {
            let fast = t2.execute(inputs, policy, &mut ctx);
            assert_eq!(legacy, fast, "round {round}");
        }
    }

    #[test]
    fn doubler_loop_translates_to_one_region() {
        let t2 = Tier2Module::prepare(&doubler()).unwrap();
        assert_eq!(t2.regions_translated(), 1);
        let r = &t2.regions[0];
        assert_eq!(r.full_cost, 14); // ops 4..=17
        assert_eq!(r.peak_full, 2);
        // Head compare exits with an empty symbolic stack.
        assert!(r.exits.iter().all(|e| e.pushes.is_empty()));
        // Register form collapses 14 source ops into a handful.
        assert!(r.ops.len() <= 6, "got {:?}", r.ops);
    }

    #[test]
    fn doubler_matches_legacy_bit_for_bit() {
        let input = [1.0, 2.5, -3.0, 7.25];
        agree(&doubler(), &[&input], &SandboxPolicy::standard());
        agree(&doubler(), &[&[]], &SandboxPolicy::standard());
    }

    #[test]
    fn budget_fallback_matches_legacy_at_every_boundary() {
        let input = [1.0, 2.0, 3.0];
        for budget in 1..=80 {
            let policy = SandboxPolicy {
                max_instructions: budget,
                ..SandboxPolicy::standard()
            };
            agree(&doubler(), &[&input], &policy);
        }
    }

    #[test]
    fn stack_headroom_fallback_matches_legacy() {
        let input = [4.0, 5.0];
        for max_stack in 1..=4 {
            let policy = SandboxPolicy {
                max_stack,
                ..SandboxPolicy::standard()
            };
            agree(&doubler(), &[&input], &policy);
        }
    }

    #[test]
    fn fallback_counter_counts_abandonments() {
        let input = [1.0, 2.0, 3.0];
        let t2 = Tier2Module::prepare(&doubler()).unwrap();
        let mut ctx = ExecContext::new();
        // Pre-loop costs 4 instructions, each iteration 14: a budget of 20
        // admits exactly one register-form iteration, then falls back.
        let policy = SandboxPolicy {
            max_instructions: 20,
            ..SandboxPolicy::standard()
        };
        let err = t2.execute(&[&input], &policy, &mut ctx).unwrap_err();
        assert_eq!(err, TvmError::BudgetExceeded);
        assert_eq!(ctx.tier2_fallbacks(), 1);
        // A comfortable budget never falls back, and the counter resets.
        t2.execute(&[&input], &SandboxPolicy::standard(), &mut ctx)
            .unwrap();
        assert_eq!(ctx.tier2_fallbacks(), 0);
    }

    #[test]
    fn store_alias_is_preserved_across_patching() {
        // Inside the loop: load 0; load 0; push 1; add; store 0; load 0;
        // mul; store 1 — the first `load 0` must observe the pre-bump value.
        let m = module1(
            vec![
                Push(3.0),  // 0
                Store(0),   // 1
                Load(0),    // 2 <- head (old value, alias across the store)
                Load(0),    // 3
                Push(1.0),  // 4
                Add,        // 5
                Store(0),   // 6  (bumps local 0; the pc-2 alias must survive)
                Load(0),    // 7  (new value)
                Mul,        // 8  (old * new)
                Store(1),   // 9
                Load(0),    // 10
                Push(6.0),  // 11
                Lt,         // 12
                Jnz(2),     // 13 back-edge
                Load(1),    // 14
                OutPush(0), // 15
                Halt,       // 16
            ],
            2,
            0,
            1,
        );
        let t2 = Tier2Module::prepare(&m).unwrap();
        assert_eq!(t2.regions_translated(), 1);
        agree(&m, &[], &SandboxPolicy::standard());
    }

    #[test]
    fn varying_stack_depth_defeats_translation() {
        // Pushes one value per iteration without popping it: the symbolic
        // stack is non-empty at the back-edge, so translation must refuse.
        let m = module1(
            vec![
                Push(3.0), // 0
                Store(0),  // 1
                Push(7.0), // 2 <- head: grows the stack each iteration
                Load(0),   // 3
                Push(1.0), // 4
                Sub,       // 5
                Store(0),  // 6
                Load(0),   // 7
                Jnz(2),    // 8 back-edge
                Pop,       // 9
                Pop,       // 10
                Pop,       // 11
                Halt,      // 12
            ],
            1,
            0,
            0,
        );
        let t2 = Tier2Module::prepare(&m).unwrap();
        assert_eq!(t2.regions_translated(), 0);
        agree(&m, &[], &SandboxPolicy::standard());
    }

    #[test]
    fn jump_into_loop_interior_defeats_translation() {
        let m = module1(
            vec![
                Push(2.0), // 0
                Store(0),  // 1
                Jmp(5),    // 2 — lands inside (3, 6]: kills the region
                Push(0.0), // 3 <- would-be head
                Pop,       // 4
                Load(0),   // 5
                Jnz(3),    // 6 back-edge (also decrements? no — spins)
                Halt,      // 7
            ],
            1,
            0,
            0,
        );
        // Without the counter decrement the loop would spin forever; keep
        // the budget small so both tiers trip it identically.
        let t2 = Tier2Module::prepare(&m).unwrap();
        assert_eq!(t2.regions_translated(), 0);
        let policy = SandboxPolicy {
            max_instructions: 100,
            ..SandboxPolicy::standard()
        };
        agree(&m, &[], &policy);
    }

    #[test]
    fn exit_with_live_stack_materialises_values() {
        // The forward exit fires with two values on the symbolic stack;
        // they must land on the real stack for the tail to consume.
        let m = module1(
            vec![
                Push(0.0),  // 0
                Store(0),   // 1
                Load(0),    // 2 <- head: running value
                Push(10.0), // 3
                Load(0),    // 4
                Push(4.0),  // 5
                Ge,         // 6
                Jnz(15),    // 7 exit with [local0, 10.0] live
                Pop,        // 8
                Pop,        // 9
                Load(0),    // 10
                Push(1.0),  // 11
                Add,        // 12
                Store(0),   // 13
                Jmp(2),     // 14 back-edge
                Add,        // 15: consumes the two live values
                OutPush(0), // 16
                Halt,       // 17
            ],
            1,
            0,
            1,
        );
        let t2 = Tier2Module::prepare(&m).unwrap();
        assert_eq!(t2.regions_translated(), 1);
        let mut ctx = ExecContext::new();
        let (out, _) = t2
            .execute(&[], &SandboxPolicy::standard(), &mut ctx)
            .unwrap();
        assert_eq!(out, vec![vec![14.0]]);
        agree(&m, &[], &SandboxPolicy::standard());
    }
}

#[cfg(test)]
mod dump {
    use super::*;
    use crate::asm::assemble;

    #[test]
    #[ignore]
    fn dump_kernel_regions() {
        let e03 = ".module SphKernel 1 1 1\n.func main 2\n inlen 0\n store 0\n \
                   push 0\n store 1\nloop:\n load 1\n load 0\n lt\n jz end\n \
                   load 1\n inget 0\n dup\n mul\n push 1\n swap\n sub\n push 0\n \
                   max\n dup\n dup\n mul\n mul\n outpush 0\n load 1\n push 1\n \
                   add\n store 1\n jmp loop\nend:\n halt\n";
        let e04 = ".module MatchedFilter 1 2 1\n.func main 3\n inlen 0\n \
                   store 0\n push 0\n store 1\n push 0\n store 2\nloop:\n \
                   load 1\n load 0\n lt\n jz end\n load 1\n inget 0\n load 1\n \
                   inget 1\n mul\n load 2\n add\n store 2\n load 1\n push 1\n \
                   add\n store 1\n jmp loop\nend:\n load 2\n outpush 0\n halt\n";
        for (name, src) in [("e03", e03), ("e04", e04)] {
            let m = assemble(src).unwrap();
            let t2 = Tier2Module::prepare(&m).unwrap();
            println!("=== {name}: {} regions", t2.regions.len());
            for r in &t2.regions {
                println!(
                    "  head={} n_locals={} n_regs={} full_cost={} peak={} consts={:?}",
                    r.head_flat, r.n_locals, r.n_regs, r.full_cost, r.peak_full, r.consts
                );
                for (i, op) in r.ops.iter().enumerate() {
                    println!("    [{i}] {op:?}");
                }
                for (i, e) in r.exits.iter().enumerate() {
                    println!(
                        "    exit[{i}] target={} cost={} peak={} pushes={:?}",
                        e.target_flat, e.cost, e.peak, e.pushes
                    );
                }
            }
        }
    }
}
