//! `tvm` — the Triana Virtual Machine.
//!
//! The paper ships Java bytecode to peers on demand and relies on the Java
//! sandbox to make untrusted code safe ("the sandbox ensures that an
//! untrusted and possibly malicious application cannot gain access to system
//! resources"). Rust has no portable safe dynamic code loading, so this crate
//! provides the substitute: a small, deterministic, stack-based bytecode VM.
//!
//! * Code really is **data**: a [`module::Module`] serializes to a byte blob
//!   with a content hash, which is what the Consumer Grid transfers, caches
//!   and evicts (paper §3.3, "dynamic download of code").
//! * The **sandbox** is enforced at interpretation time: instruction budget,
//!   stack/locals/output caps, and a capability gate on host I/O
//!   ([`sandbox::SandboxPolicy`]).
//! * A tiny **assembler** ([`asm`]) makes user-defined units writable as
//!   text, mirroring how Triana users drop new Java units into the toolbox.
//!
//! The unit ABI is dataflow-shaped: a program reads from numbered input
//! ports (slices of `f64`) and appends to numbered output ports.

pub mod asm;
pub mod interp;
pub mod isa;
pub mod module;
pub mod prepared;
pub mod sandbox;
pub mod tier;
pub mod tier2;
pub mod verify;

pub use interp::{execute, execute_obs, ExecStats, TvmError};
pub use isa::Op;
pub use module::{Function, Module, ModuleBlob};
pub use prepared::{ExecContext, PrepareError, PreparedModule};
pub use sandbox::SandboxPolicy;
pub use tier::{ExecOutcome, ExecTier, LegacyModule, TierPolicy};
pub use tier2::Tier2Module;

/// FNV-1a 64-bit hash; used for module content hashes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
