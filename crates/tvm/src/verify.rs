//! Static bytecode verification.
//!
//! Run before a downloaded module is admitted to the local cache: all jump
//! targets must land inside their function, local indices must be within the
//! declared frame, call targets must exist, port numbers must be within the
//! module's declared signature, and every path must end in `Ret`/`Halt`
//! (enforced conservatively: the last instruction must be a terminator and
//! jump targets must be in range, so the program counter can never run off
//! the end).

use crate::isa::Op;
use crate::module::Module;
use std::fmt;

/// A verification failure, with the offending function index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    EmptyModule,
    EmptyFunction(usize),
    JumpOutOfRange { func: usize, pc: usize, target: u32 },
    LocalOutOfRange { func: usize, pc: usize, index: u16 },
    CallOutOfRange { func: usize, pc: usize, target: u16 },
    PortOutOfRange { func: usize, pc: usize, port: u8 },
    MissingTerminator(usize),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use VerifyError::*;
        match self {
            EmptyModule => write!(f, "module has no functions"),
            EmptyFunction(i) => write!(f, "function {i} is empty"),
            JumpOutOfRange { func, pc, target } => {
                write!(f, "fn{func}@{pc}: jump target {target} out of range")
            }
            LocalOutOfRange { func, pc, index } => {
                write!(f, "fn{func}@{pc}: local {index} out of range")
            }
            CallOutOfRange { func, pc, target } => {
                write!(f, "fn{func}@{pc}: call target {target} out of range")
            }
            PortOutOfRange { func, pc, port } => {
                write!(f, "fn{func}@{pc}: port {port} out of range")
            }
            MissingTerminator(i) => write!(f, "function {i} does not end in Ret/Halt"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a module. Cheap (single pass per function); `Ok(())` means the
/// interpreter can execute without any PC/local/port bound being violated.
pub fn verify(module: &Module) -> Result<(), VerifyError> {
    if module.functions.is_empty() {
        return Err(VerifyError::EmptyModule);
    }
    let n_funcs = module.functions.len();
    for (fi, func) in module.functions.iter().enumerate() {
        if func.code.is_empty() {
            return Err(VerifyError::EmptyFunction(fi));
        }
        match func.code.last().unwrap() {
            Op::Ret | Op::Halt | Op::Jmp(_) => {}
            _ => return Err(VerifyError::MissingTerminator(fi)),
        }
        let len = func.code.len() as u32;
        for (pc, op) in func.code.iter().enumerate() {
            match *op {
                Op::Jmp(t) | Op::Jz(t) | Op::Jnz(t) if t >= len => {
                    return Err(VerifyError::JumpOutOfRange {
                        func: fi,
                        pc,
                        target: t,
                    });
                }
                Op::Load(i) | Op::Store(i) if i >= func.n_locals => {
                    return Err(VerifyError::LocalOutOfRange {
                        func: fi,
                        pc,
                        index: i,
                    });
                }
                Op::Call(t) if t as usize >= n_funcs => {
                    return Err(VerifyError::CallOutOfRange {
                        func: fi,
                        pc,
                        target: t,
                    });
                }
                Op::InLen(p) | Op::InGet(p) if p >= module.n_inputs => {
                    return Err(VerifyError::PortOutOfRange {
                        func: fi,
                        pc,
                        port: p,
                    });
                }
                Op::OutPush(p) | Op::OutSet(p) | Op::OutLen(p) if p >= module.n_outputs => {
                    return Err(VerifyError::PortOutOfRange {
                        func: fi,
                        pc,
                        port: p,
                    });
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Function;
    use Op::*;

    fn module_with(code: Vec<Op>, n_locals: u16) -> Module {
        Module {
            name: "t".into(),
            version: 1,
            n_inputs: 1,
            n_outputs: 1,
            functions: vec![Function {
                name: "main".into(),
                n_locals,
                code,
            }],
        }
    }

    #[test]
    fn accepts_well_formed_code() {
        let m = module_with(vec![Push(1.0), OutPush(0), Halt], 0);
        assert_eq!(verify(&m), Ok(()));
    }

    #[test]
    fn rejects_empty_module_and_function() {
        let m = Module {
            name: "e".into(),
            version: 1,
            n_inputs: 0,
            n_outputs: 0,
            functions: vec![],
        };
        assert_eq!(verify(&m), Err(VerifyError::EmptyModule));
        let m = module_with(vec![], 0);
        assert_eq!(verify(&m), Err(VerifyError::EmptyFunction(0)));
    }

    #[test]
    fn rejects_jump_out_of_range() {
        let m = module_with(vec![Jmp(5), Halt], 0);
        assert!(matches!(
            verify(&m),
            Err(VerifyError::JumpOutOfRange { target: 5, .. })
        ));
    }

    #[test]
    fn rejects_bad_local() {
        let m = module_with(vec![Load(2), Halt], 2);
        assert!(matches!(
            verify(&m),
            Err(VerifyError::LocalOutOfRange { index: 2, .. })
        ));
    }

    #[test]
    fn rejects_bad_call() {
        let m = module_with(vec![Call(1), Halt], 0);
        assert!(matches!(
            verify(&m),
            Err(VerifyError::CallOutOfRange { target: 1, .. })
        ));
    }

    #[test]
    fn rejects_bad_ports() {
        let m = module_with(vec![InLen(1), Halt], 0);
        assert!(matches!(
            verify(&m),
            Err(VerifyError::PortOutOfRange { port: 1, .. })
        ));
        let m = module_with(vec![OutPush(3), Halt], 0);
        assert!(matches!(
            verify(&m),
            Err(VerifyError::PortOutOfRange { port: 3, .. })
        ));
    }

    #[test]
    fn rejects_missing_terminator() {
        let m = module_with(vec![Push(1.0), Pop], 0);
        assert_eq!(verify(&m), Err(VerifyError::MissingTerminator(0)));
    }

    #[test]
    fn trailing_jmp_counts_as_terminator() {
        let m = module_with(vec![Halt, Jmp(0)], 0);
        assert_eq!(verify(&m), Ok(()));
    }
}
