//! The sandbox: resource limits and capabilities for untrusted modules.
//!
//! Mirrors the role of the Java sandbox in the paper ("resource file systems
//! are also automatically protected"): a downloaded module executes under a
//! [`SandboxPolicy`] that bounds CPU (instruction budget), memory (stack,
//! locals, output cells) and gates host access behind an explicit
//! capability. Resource owners choose the policy; the default denies host
//! I/O entirely.

/// Execution limits for one module invocation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SandboxPolicy {
    /// Maximum instructions retired before the run is killed.
    pub max_instructions: u64,
    /// Maximum operand-stack depth.
    pub max_stack: usize,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Maximum total cells (f64 values) across all output ports.
    pub max_output_cells: usize,
    /// Whether the `HostIo` instruction is permitted.
    pub allow_host_io: bool,
}

impl SandboxPolicy {
    /// The default consumer-peer policy: generous compute, no host access.
    pub fn standard() -> Self {
        SandboxPolicy {
            max_instructions: 100_000_000,
            max_stack: 4_096,
            max_call_depth: 128,
            max_output_cells: 4_000_000,
            allow_host_io: false,
        }
    }

    /// A policy for resource-constrained devices (PDA/handheld, §3.3).
    pub fn constrained() -> Self {
        SandboxPolicy {
            max_instructions: 5_000_000,
            max_stack: 256,
            max_call_depth: 16,
            max_output_cells: 65_536,
            allow_host_io: false,
        }
    }

    /// A trusted policy for modules from a pre-agreed certified library
    /// (the alternative trust model the paper sketches in §3.7).
    pub fn trusted() -> Self {
        SandboxPolicy {
            allow_host_io: true,
            ..SandboxPolicy::standard()
        }
    }
}

impl Default for SandboxPolicy {
    fn default() -> Self {
        SandboxPolicy::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_denies_host_io() {
        assert!(!SandboxPolicy::default().allow_host_io);
    }

    #[test]
    fn constrained_is_strictly_tighter_than_standard() {
        let c = SandboxPolicy::constrained();
        let s = SandboxPolicy::standard();
        assert!(c.max_instructions < s.max_instructions);
        assert!(c.max_stack < s.max_stack);
        assert!(c.max_call_depth < s.max_call_depth);
        assert!(c.max_output_cells < s.max_output_cells);
    }

    #[test]
    fn trusted_only_relaxes_host_io() {
        let t = SandboxPolicy::trusted();
        let s = SandboxPolicy::standard();
        assert!(t.allow_host_io);
        assert_eq!(t.max_instructions, s.max_instructions);
    }
}
