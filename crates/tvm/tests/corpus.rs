//! Adversarial regression corpus: committed `.tvm` programs whose shapes
//! are chosen to stress tier-2 region translation — zero-trip loops,
//! bodies with varying stack depth, back-edges straddling region
//! boundaries, deep nested calls — plus the two bench kernels. Every
//! program runs under Legacy, Prepared, and Tier2 across a policy matrix
//! and must agree bit for bit on outputs, `ExecStats`, and typed errors.
//!
//! To add an entry: drop a `.tvm` file in `tests/corpus/` (leading `;`
//! comment explaining what it stresses) — the runner picks it up by glob.

use tvm::asm::assemble;
use tvm::{execute, ExecContext, Module, PreparedModule, SandboxPolicy, Tier2Module, TvmError};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("corpus")
}

fn load_corpus() -> Vec<(String, Module)> {
    let mut entries: Vec<(String, Module)> = std::fs::read_dir(corpus_dir())
        .expect("corpus directory exists")
        .filter_map(|e| {
            let path = e.expect("readable dir entry").path();
            if path.extension().is_some_and(|x| x == "tvm") {
                let name = path.file_stem().unwrap().to_string_lossy().into_owned();
                let src = std::fs::read_to_string(&path).expect("readable corpus file");
                let module = assemble(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
                Some((name, module))
            } else {
                None
            }
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(entries.len() >= 6, "corpus unexpectedly small");
    entries
}

/// Deterministic input buffers sized for a module's port count.
fn inputs_for(module: &Module, len: usize) -> Vec<Vec<f64>> {
    (0..module.n_inputs)
        .map(|p| {
            (0..len)
                .map(|i| ((p as f64 + 1.0) * 0.37 + i as f64 * 0.61).sin() * 8.0)
                .collect()
        })
        .collect()
}

fn bits(outputs: &[Vec<f64>]) -> Vec<Vec<u64>> {
    outputs
        .iter()
        .map(|port| port.iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn errs_eq(a: &TvmError, b: &TvmError) -> bool {
    match (a, b) {
        (
            TvmError::IndexOutOfBounds {
                port: p1,
                index: i1,
            },
            TvmError::IndexOutOfBounds {
                port: p2,
                index: i2,
            },
        ) => p1 == p2 && i1.to_bits() == i2.to_bits(),
        _ => a == b,
    }
}

/// Three-way agreement for one (module, inputs, policy) cell.
fn assert_tiers_agree(name: &str, module: &Module, inputs: &[&[f64]], policy: &SandboxPolicy) {
    let legacy = execute(module, inputs, policy);
    let prepared = PreparedModule::prepare(module).expect("corpus modules verify");
    let tier2 = Tier2Module::prepare(module).expect("corpus modules verify");
    let mut ctx = ExecContext::new();
    let runs = [
        ("prepared", prepared.execute(inputs, policy, &mut ctx)),
        ("tier2", tier2.execute(inputs, policy, &mut ctx)),
    ];
    for (tier, fast) in &runs {
        let same = match (&legacy, fast) {
            (Ok((lo, ls)), Ok((fo, fs))) => bits(lo) == bits(fo) && ls == fs,
            (Err(a), Err(b)) => errs_eq(a, b),
            _ => false,
        };
        assert!(
            same,
            "{name} under {policy:?} diverged:\n  legacy = {legacy:?}\n  {tier} = {fast:?}"
        );
    }
}

/// The policy matrix: the standard sandbox, budget walls at several odd
/// offsets (so exhaustion lands mid-loop and mid-fused-window), tiny
/// stacks, shallow call depth, and a zero output cap.
fn policy_matrix() -> Vec<SandboxPolicy> {
    let std_policy = SandboxPolicy::standard();
    let mut matrix = vec![std_policy];
    for max_instructions in [1, 2, 7, 23, 57, 101, 997] {
        matrix.push(SandboxPolicy {
            max_instructions,
            ..std_policy
        });
    }
    for max_stack in [1, 2, 3, 5] {
        matrix.push(SandboxPolicy {
            max_stack,
            ..std_policy
        });
    }
    for max_call_depth in [1, 2, 3] {
        matrix.push(SandboxPolicy {
            max_call_depth,
            ..std_policy
        });
    }
    for max_output_cells in [0, 1, 3] {
        matrix.push(SandboxPolicy {
            max_output_cells,
            ..std_policy
        });
    }
    matrix
}

/// Every corpus entry, against every policy cell, at several input sizes.
#[test]
fn corpus_tiers_agree_across_policy_matrix() {
    for (name, module) in load_corpus() {
        for len in [0usize, 1, 5, 16] {
            let buffers = inputs_for(&module, len);
            let slices: Vec<&[f64]> = buffers.iter().map(Vec::as_slice).collect();
            for policy in policy_matrix() {
                assert_tiers_agree(&name, &module, &slices, &policy);
            }
        }
    }
}

/// The corpus must exercise both translator outcomes: at least one entry
/// admits a register-translated region, and at least one defeats
/// translation entirely (so the stack-form fallback stays covered).
#[test]
fn corpus_covers_translated_and_refused_regions() {
    let mut translated = Vec::new();
    let mut refused = Vec::new();
    for (name, module) in load_corpus() {
        let tier2 = Tier2Module::prepare(&module).expect("corpus modules verify");
        if tier2.regions_translated() > 0 {
            translated.push(name);
        } else {
            refused.push(name);
        }
    }
    assert!(
        !translated.is_empty(),
        "no corpus entry translated a region"
    );
    assert!(
        !refused.is_empty(),
        "no corpus entry defeats translation — the fallback path is uncovered"
    );
}

/// Pin the per-entry translation outcomes so a translator change that
/// silently starts refusing (or admitting) a shape shows up in review.
#[test]
fn corpus_translation_outcomes_are_pinned() {
    let outcomes: Vec<(String, usize)> = load_corpus()
        .iter()
        .map(|(name, module)| {
            let tier2 = Tier2Module::prepare(module).expect("corpus modules verify");
            (name.clone(), tier2.regions_translated())
        })
        .collect();
    let expected: &[(&str, usize)] = &[
        ("deep_nested_calls", 1),
        ("matched_filter", 1),
        ("sph_kernel", 1),
        ("straddling_backedge", 0),
        ("varying_stack_depth", 0),
        ("zero_iteration_loop", 1),
    ];
    let got: Vec<(&str, usize)> = outcomes.iter().map(|(n, r)| (n.as_str(), *r)).collect();
    assert_eq!(got, expected);
}
