//! Property tests: the verifier/sandbox never let malformed or hostile
//! bytecode do anything undefined.

use proptest::prelude::*;
use tvm::asm::assemble;
use tvm::{
    execute, ExecContext, ExecTier, Function, Module, Op, PreparedModule, SandboxPolicy,
    Tier2Module, TvmError,
};

/// Arbitrary (possibly invalid) instruction.
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-1e6f64..1e6).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Dup),
        Just(Op::Swap),
        Just(Op::Add),
        Just(Op::Mul),
        Just(Op::Div),
        Just(Op::Sqrt),
        Just(Op::Lt),
        (0u16..8).prop_map(Op::Load),
        (0u16..8).prop_map(Op::Store),
        (0u32..64).prop_map(Op::Jmp),
        (0u32..64).prop_map(Op::Jz),
        (0u16..4).prop_map(Op::Call),
        Just(Op::Ret),
        Just(Op::Halt),
        (0u8..3).prop_map(Op::InLen),
        (0u8..3).prop_map(Op::InGet),
        (0u8..3).prop_map(Op::OutPush),
        (0u8..3).prop_map(Op::OutLen),
        (0u8..2).prop_map(Op::HostIo),
    ]
}

/// Arbitrary instruction drawing from the *full* ISA (for the differential
/// prepared-vs-legacy tests, which need every opcode and fusion shape).
fn arb_full_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-1e6f64..1e6).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Dup),
        Just(Op::Swap),
        Just(Op::Over),
        (0u16..64).prop_map(Op::Load),
        (0u16..64).prop_map(Op::Store),
        prop_oneof![
            Just(Op::Add),
            Just(Op::Sub),
            Just(Op::Mul),
            Just(Op::Div),
            Just(Op::Rem),
            Just(Op::Min),
            Just(Op::Max),
            Just(Op::Pow),
        ],
        prop_oneof![
            Just(Op::Neg),
            Just(Op::Abs),
            Just(Op::Floor),
            Just(Op::Sqrt),
            Just(Op::Sin),
            Just(Op::Cos),
            Just(Op::Exp),
            Just(Op::Ln),
        ],
        prop_oneof![
            Just(Op::Eq),
            Just(Op::Ne),
            Just(Op::Lt),
            Just(Op::Le),
            Just(Op::Gt),
            Just(Op::Ge),
        ],
        (0u32..64).prop_map(Op::Jmp),
        (0u32..64).prop_map(Op::Jz),
        (0u32..64).prop_map(Op::Jnz),
        (0u16..8).prop_map(Op::Call),
        Just(Op::Ret),
        Just(Op::Halt),
        (0u8..8).prop_map(Op::InLen),
        (0u8..8).prop_map(Op::InGet),
        (0u8..8).prop_map(Op::OutPush),
        (0u8..8).prop_map(Op::OutSet),
        (0u8..8).prop_map(Op::OutLen),
        (0u8..2).prop_map(Op::HostIo),
    ]
}

/// Make an arbitrary op stream *valid by construction*: append a
/// terminator, then clamp every index/target into range so the verifier
/// accepts the function.
fn sanitize(mut code: Vec<Op>, n_locals: u16, n_funcs: u16, ports: u8, terminator: Op) -> Vec<Op> {
    code.push(terminator);
    let len = code.len() as u32;
    for op in &mut code {
        *op = match *op {
            Op::Load(i) => Op::Load(i % n_locals),
            Op::Store(i) => Op::Store(i % n_locals),
            Op::Call(t) => Op::Call(t % n_funcs),
            Op::Jmp(t) => Op::Jmp(t % len),
            Op::Jz(t) => Op::Jz(t % len),
            Op::Jnz(t) => Op::Jnz(t % len),
            Op::InLen(p) => Op::InLen(p % ports),
            Op::InGet(p) => Op::InGet(p % ports),
            Op::OutPush(p) => Op::OutPush(p % ports),
            Op::OutSet(p) => Op::OutSet(p % ports),
            Op::OutLen(p) => Op::OutLen(p % ports),
            other => other,
        };
    }
    code
}

const DIFF_LOCALS: u16 = 6;
const DIFF_PORTS: u8 = 3;

/// Build a verified multi-function module from arbitrary op streams.
fn diff_module(bodies: Vec<Vec<Op>>) -> Module {
    let n_funcs = bodies.len() as u16;
    let functions = bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| Function {
            name: format!("f{i}"),
            n_locals: DIFF_LOCALS,
            code: sanitize(
                body,
                DIFF_LOCALS,
                n_funcs,
                DIFF_PORTS,
                if i == 0 { Op::Halt } else { Op::Ret },
            ),
        })
        .collect();
    Module {
        name: "diff".into(),
        version: 1,
        n_inputs: DIFF_PORTS,
        n_outputs: DIFF_PORTS,
        functions,
    }
}

/// f64 equality up to bit identity (NaN-safe): the prepared path must
/// reproduce legacy outputs *bit for bit*.
fn bits(outputs: &[Vec<f64>]) -> Vec<Vec<u64>> {
    outputs
        .iter()
        .map(|port| port.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Error equality; `IndexOutOfBounds` carries the offending f64 index,
/// which may be NaN.
fn errs_eq(a: &TvmError, b: &TvmError) -> bool {
    match (a, b) {
        (
            TvmError::IndexOutOfBounds {
                port: p1,
                index: i1,
            },
            TvmError::IndexOutOfBounds {
                port: p2,
                index: i2,
            },
        ) => p1 == p2 && i1.to_bits() == i2.to_bits(),
        _ => a == b,
    }
}

/// Run every tier (each twice, to also exercise context reuse) and
/// describe the first divergence from legacy, if any. The N-way barrage:
/// Legacy is ground truth; Prepared and Tier2 must reproduce its outputs
/// bit for bit, its `ExecStats`, and its typed errors.
fn equiv_failure(module: &Module, inputs: &[&[f64]], policy: &SandboxPolicy) -> Option<String> {
    let legacy = execute(module, inputs, policy);
    let prepared = match PreparedModule::prepare(module) {
        Ok(p) => p,
        Err(e) => return Some(format!("prepare rejected a verified module: {e}")),
    };
    let tier2 = match Tier2Module::prepare(module) {
        Ok(t) => t,
        Err(e) => return Some(format!("tier2 prepare rejected a verified module: {e}")),
    };
    let mut ctx = ExecContext::new();
    for round in 0..2 {
        let runs = [
            ("prepared", prepared.execute(inputs, policy, &mut ctx)),
            ("tier2", tier2.execute(inputs, policy, &mut ctx)),
        ];
        for (tier, fast) in &runs {
            let same = match (&legacy, fast) {
                (Ok((lo, ls)), Ok((fo, fs))) => bits(lo) == bits(fo) && ls == fs,
                (Err(a), Err(b)) => errs_eq(a, b),
                _ => false,
            };
            if !same {
                return Some(format!(
                    "round {round} diverged:\n  legacy = {legacy:?}\n  {tier} = {fast:?}"
                ));
            }
        }
    }
    None
}

proptest! {
    /// Differential: for arbitrary *valid* modules and inputs, the
    /// prepared path produces identical outputs (bit for bit), identical
    /// `ExecStats`, and identical errors — including budget exhaustion,
    /// which the legacy interpreter checks before every source
    /// instruction and fused superinstructions must replicate mid-window.
    #[test]
    fn prepared_path_matches_legacy(
        bodies in proptest::collection::vec(
            proptest::collection::vec(arb_full_op(), 1..50), 1..4),
        lens in proptest::collection::vec(0usize..12, 3..4),
        seed in 0u64..1000,
    ) {
        let module = diff_module(bodies);
        let buffers: Vec<Vec<f64>> = lens
            .iter()
            .enumerate()
            .map(|(p, &n)| {
                (0..n)
                    .map(|j| (seed as f64 + p as f64 * 7.5 - j as f64 * 1.25).sin() * 50.0)
                    .collect()
            })
            .collect();
        let slices: Vec<&[f64]> = buffers.iter().map(Vec::as_slice).collect();
        let policy = SandboxPolicy {
            max_instructions: 20_000,
            max_stack: 64,
            max_call_depth: 8,
            max_output_cells: 1_024,
            allow_host_io: false,
        };
        let failure = equiv_failure(&module, &slices, &policy);
        prop_assert!(failure.is_none(), "{}", failure.unwrap());
    }

    /// Differential under hostile-tight policies: every sandbox violation
    /// (budget, stack overflow, call depth, output cap, HostIo trap) must
    /// fire identically on both paths — at the exact same source
    /// instruction even when it sits inside a fused window.
    #[test]
    fn prepared_path_matches_legacy_under_tight_policies(
        bodies in proptest::collection::vec(
            proptest::collection::vec(arb_full_op(), 1..50), 1..4),
        max_instructions in 1u64..2_000,
        max_stack in 1usize..10,
        max_call_depth in 1usize..6,
        max_output_cells in 0usize..48,
        host_io in 0u8..2,
    ) {
        let module = diff_module(bodies);
        let input = [1.5, -2.0, 0.0, 40.0];
        let slices: Vec<&[f64]> = vec![&input; DIFF_PORTS as usize];
        let policy = SandboxPolicy {
            max_instructions,
            max_stack,
            max_call_depth,
            max_output_cells,
            allow_host_io: host_io == 1,
        };
        let failure = equiv_failure(&module, &slices, &policy);
        prop_assert!(failure.is_none(), "{}", failure.unwrap());
    }
}

/// Straight-line op pool for loop bodies: no control flow, every index in
/// range by construction, so the loop skeleton stays verifiable.
fn arb_line_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-100f64..100.0).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Dup),
        Just(Op::Swap),
        Just(Op::Over),
        (0u16..DIFF_LOCALS).prop_map(Op::Load),
        (0u16..DIFF_LOCALS).prop_map(Op::Store),
        prop_oneof![
            Just(Op::Add),
            Just(Op::Sub),
            Just(Op::Mul),
            Just(Op::Div),
            Just(Op::Min),
            Just(Op::Max),
        ],
        prop_oneof![
            Just(Op::Neg),
            Just(Op::Abs),
            Just(Op::Sqrt),
            Just(Op::Floor),
        ],
        prop_oneof![Just(Op::Lt), Just(Op::Ge), Just(Op::Eq)],
        (0u8..DIFF_PORTS).prop_map(Op::InLen),
        (0u8..DIFF_PORTS).prop_map(Op::InGet),
        (0u8..DIFF_PORTS).prop_map(Op::OutPush),
        (0u8..DIFF_PORTS).prop_map(Op::OutLen),
    ]
}

/// A counted while-loop over local 5 around an arbitrary straight-line
/// body — the exact shape tier 2 hunts for. Some bodies translate to
/// register form, others defeat the translator (stack dips below entry
/// depth, interior traps); both kinds must agree with legacy either way.
/// `iters == 0` exercises zero-trip loops: the region's head exit fires
/// before any iteration retires.
fn loop_module(iters: u8, body: Vec<Op>) -> Module {
    let mut code = vec![Op::Push(iters as f64), Op::Store(5)];
    let head = code.len() as u32;
    code.push(Op::Load(5));
    let patch = code.len();
    code.push(Op::Jz(0)); // forward exit, target patched below
    code.extend(body);
    code.extend([Op::Load(5), Op::Push(1.0), Op::Sub, Op::Store(5)]);
    code.push(Op::Jmp(head));
    code[patch] = Op::Jz(code.len() as u32);
    code.push(Op::Halt);
    Module {
        name: "loopy".into(),
        version: 1,
        n_inputs: DIFF_PORTS,
        n_outputs: DIFF_PORTS,
        functions: vec![Function {
            name: "main".into(),
            n_locals: DIFF_LOCALS,
            code,
        }],
    }
}

proptest! {
    /// Tier barrage over loop-shaped modules: counted loops with
    /// arbitrary straight-line bodies, run under the standard policy.
    /// This is the generator most likely to admit a translated region, so
    /// every fused superinstruction path gets differential coverage.
    #[test]
    fn tier_barrage_on_loop_shaped_modules(
        iters in 0u8..9,
        body in proptest::collection::vec(arb_line_op(), 0..24),
        lens in proptest::collection::vec(0usize..12, 3..4),
        seed in 0u64..1000,
    ) {
        let module = loop_module(iters, body);
        let buffers: Vec<Vec<f64>> = lens
            .iter()
            .enumerate()
            .map(|(p, &n)| {
                (0..n)
                    .map(|j| (seed as f64 + p as f64 * 3.5 + j as f64 * 0.75).cos() * 20.0)
                    .collect()
            })
            .collect();
        let slices: Vec<&[f64]> = buffers.iter().map(Vec::as_slice).collect();
        let failure = equiv_failure(&module, &slices, &SandboxPolicy::standard());
        prop_assert!(failure.is_none(), "{}", failure.unwrap());
    }

    /// The same barrage under hostile-tight policies: budget exhaustion
    /// must fire at the exact same source instruction whether the loop is
    /// running in register form (bulk-charged iterations plus a precise
    /// fallback) or stepping op by op.
    #[test]
    fn tier_barrage_on_loops_under_tight_policies(
        iters in 0u8..9,
        body in proptest::collection::vec(arb_line_op(), 0..24),
        max_instructions in 1u64..400,
        max_stack in 1usize..12,
        max_output_cells in 0usize..24,
    ) {
        let module = loop_module(iters, body);
        let input = [2.5, 0.0, -7.0];
        let slices: Vec<&[f64]> = vec![&input; DIFF_PORTS as usize];
        let policy = SandboxPolicy {
            max_instructions,
            max_stack,
            max_call_depth: 4,
            max_output_cells,
            allow_host_io: false,
        };
        let failure = equiv_failure(&module, &slices, &policy);
        prop_assert!(failure.is_none(), "{}", failure.unwrap());
    }

    /// Verification is tier-independent: for raw (unsanitized) op streams,
    /// the standalone verifier, `PreparedModule::prepare`, and
    /// `Tier2Module::prepare` accept or reject in lockstep, with the same
    /// typed error.
    #[test]
    fn tiers_agree_on_verification_rejection(
        bodies in proptest::collection::vec(
            proptest::collection::vec(arb_full_op(), 1..30), 1..3),
    ) {
        let functions = bodies
            .into_iter()
            .enumerate()
            .map(|(i, code)| Function {
                name: format!("f{i}"),
                n_locals: 4,
                code,
            })
            .collect();
        let module = Module {
            name: "raw".into(),
            version: 1,
            n_inputs: 2,
            n_outputs: 2,
            functions,
        };
        let verdict = tvm::verify::verify(&module);
        let prepared = PreparedModule::prepare(&module);
        let tier2 = Tier2Module::prepare(&module);
        match verdict {
            Ok(()) => {
                prop_assert!(prepared.is_ok(), "prepared rejected a verified module");
                prop_assert!(tier2.is_ok(), "tier2 rejected a verified module");
            }
            Err(e) => {
                let want = format!("{e:?}");
                match (&prepared, &tier2) {
                    (Err(pe), Err(te)) => {
                        prop_assert_eq!(format!("{:?}", pe), want.clone());
                        prop_assert_eq!(format!("{:?}", te), want);
                    }
                    _ => prop_assert!(false, "a tier accepted a rejected module"),
                }
            }
        }
    }

    /// Batched execution over K jobs is observationally identical to K
    /// sequential single-job runs, for both Prepared and Tier2: same
    /// outputs bit for bit, same per-job `ExecStats`, and failures land at
    /// the same batch positions with the same typed errors (a mid-batch
    /// error must not disturb its neighbours).
    #[test]
    fn batch_over_k_equals_k_sequential(
        bodies in proptest::collection::vec(
            proptest::collection::vec(arb_full_op(), 1..40), 1..3),
        job_lens in proptest::collection::vec(0usize..10, 1..6),
        max_instructions in 50u64..3_000,
        seed in 0u64..1000,
    ) {
        let module = diff_module(bodies);
        let buffers: Vec<Vec<Vec<f64>>> = job_lens
            .iter()
            .enumerate()
            .map(|(j, &n)| {
                (0..DIFF_PORTS as usize)
                    .map(|p| {
                        (0..n)
                            .map(|i| {
                                (seed as f64 + j as f64 * 11.0 + p as f64 * 3.0 + i as f64).sin()
                                    * 40.0
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let ports: Vec<Vec<&[f64]>> = buffers
            .iter()
            .map(|job| job.iter().map(Vec::as_slice).collect())
            .collect();
        let jobs: Vec<&[&[f64]]> = ports.iter().map(Vec::as_slice).collect();
        let policy = SandboxPolicy {
            max_instructions,
            max_stack: 16,
            max_call_depth: 4,
            max_output_cells: 64,
            allow_host_io: false,
        };
        let prepared = PreparedModule::prepare(&module).unwrap();
        let tier2 = Tier2Module::prepare(&module).unwrap();
        let tiers: [&dyn ExecTier; 2] = [&prepared, &tier2];
        for tier in tiers {
            let mut batch_ctx = ExecContext::new();
            let batch = tier.execute_batch(&jobs, &policy, &mut batch_ctx);
            prop_assert_eq!(batch.len(), jobs.len());
            let mut seq_ctx = ExecContext::new();
            for (j, job) in jobs.iter().enumerate() {
                let solo = tier.execute(job, &policy, &mut seq_ctx);
                let same = match (&batch[j], &solo) {
                    (Ok((bo, bs)), Ok((so, ss))) => bits(bo) == bits(so) && bs == ss,
                    (Err(a), Err(b)) => errs_eq(a, b),
                    _ => false,
                };
                prop_assert!(
                    same,
                    "tier {} job {j} diverged:\n  batch = {:?}\n  solo  = {:?}",
                    tier.tier_name(), batch[j], solo
                );
            }
        }
    }
}

proptest! {
    /// Whatever bytecode we throw at it — verified or rejected — execution
    /// never panics, never exceeds the sandbox, and always terminates
    /// (budget-bounded).
    #[test]
    fn execution_is_total_and_bounded(
        code in proptest::collection::vec(arb_op(), 1..80),
        n_locals in 0u16..8,
        n_inputs in 0u8..3,
        n_outputs in 0u8..3,
        input_len in 0usize..32,
    ) {
        let module = Module {
            name: "fuzz".into(),
            version: 0,
            n_inputs,
            n_outputs,
            functions: vec![Function {
                name: "main".into(),
                n_locals,
                code,
            }],
        };
        let policy = SandboxPolicy {
            max_instructions: 50_000,
            max_stack: 256,
            max_call_depth: 8,
            max_output_cells: 4_096,
            allow_host_io: false,
        };
        let buffers: Vec<Vec<f64>> = (0..n_inputs)
            .map(|i| vec![i as f64; input_len])
            .collect();
        let slices: Vec<&[f64]> = buffers.iter().map(Vec::as_slice).collect();
        // Rejection is fine; panicking is not.
        if let Ok((outputs, stats)) = execute(&module, &slices, &policy) {
            prop_assert!(stats.instructions <= policy.max_instructions);
            prop_assert!(stats.max_stack <= policy.max_stack);
            let cells: usize = outputs.iter().map(Vec::len).sum();
            prop_assert!(cells <= policy.max_output_cells);
        }
    }

    /// The caps themselves can be arbitrary (and hostile-tight): whatever
    /// the policy says is the budget, a successful run never exceeds it.
    #[test]
    fn random_tight_budgets_are_never_exceeded(
        code in proptest::collection::vec(arb_op(), 1..80),
        n_locals in 0u16..8,
        max_instructions in 1u64..5_000,
        max_stack in 1usize..64,
        max_call_depth in 1usize..8,
        max_output_cells in 0usize..256,
    ) {
        let module = Module {
            name: "budget".into(),
            version: 0,
            n_inputs: 0,
            n_outputs: 3,
            functions: vec![Function {
                name: "main".into(),
                n_locals,
                code,
            }],
        };
        let policy = SandboxPolicy {
            max_instructions,
            max_stack,
            max_call_depth,
            max_output_cells,
            allow_host_io: false,
        };
        if let Ok((outputs, stats)) = execute(&module, &[], &policy) {
            prop_assert!(stats.instructions <= max_instructions);
            prop_assert!(stats.max_stack <= max_stack);
            prop_assert!(outputs.iter().map(Vec::len).sum::<usize>() <= max_output_cells);
        }
    }

    /// A module that leads with `HostIo` under a no-host-I/O policy never
    /// runs to completion: either the verifier rejects it statically, or
    /// execution traps `HostIoDenied` on the very first instruction —
    /// before the op can observe or touch anything.
    #[test]
    fn host_io_without_capability_never_executes(
        tail in proptest::collection::vec(arb_op(), 0..40),
        port in 0u8..2,
    ) {
        let mut code = vec![Op::HostIo(port)];
        code.extend(tail);
        code.push(Op::Halt);
        let module = Module {
            name: "hostio".into(),
            version: 0,
            n_inputs: 0,
            n_outputs: 0,
            functions: vec![Function {
                name: "main".into(),
                n_locals: 0,
                code,
            }],
        };
        let policy = SandboxPolicy::standard(); // allow_host_io: false
        match execute(&module, &[], &policy) {
            Ok(_) => prop_assert!(false, "HostIo must not succeed without the capability"),
            Err(TvmError::Verify(_)) => {} // static rejection also denies
            Err(e) => prop_assert!(
                matches!(e, TvmError::HostIoDenied),
                "expected HostIoDenied, got {e:?}"
            ),
        }
    }

    /// Bytecode encode/decode round-trips arbitrary op streams.
    #[test]
    fn wire_round_trip(code in proptest::collection::vec(arb_op(), 0..100)) {
        let mut bytes = Vec::new();
        for op in &code {
            op.encode(&mut bytes);
        }
        let mut pos = 0;
        let mut back = Vec::new();
        while pos < bytes.len() {
            back.push(Op::decode(&bytes, &mut pos).unwrap());
        }
        prop_assert_eq!(back, code);
    }

    /// Assembler output always passes the verifier and the blob format.
    #[test]
    fn assembled_modules_verify(pushes in proptest::collection::vec(-1e3f64..1e3, 1..40)) {
        let mut src = String::from(".module P 1 0 1\n.func main 0\n");
        for v in &pushes {
            src.push_str(&format!(" push {v}\n outpush 0\n"));
        }
        src.push_str(" halt\n");
        let module = assemble(&src).unwrap();
        tvm::verify::verify(&module).unwrap();
        let blob = module.to_blob();
        prop_assert!(blob.integrity_ok());
        let (out, _) = execute(&module, &[], &SandboxPolicy::standard()).unwrap();
        prop_assert_eq!(out[0].len(), pushes.len());
    }
}
