//! Property tests: the verifier/sandbox never let malformed or hostile
//! bytecode do anything undefined.

use proptest::prelude::*;
use tvm::asm::assemble;
use tvm::{execute, Function, Module, Op, SandboxPolicy, TvmError};

/// Arbitrary (possibly invalid) instruction.
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-1e6f64..1e6).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Dup),
        Just(Op::Swap),
        Just(Op::Add),
        Just(Op::Mul),
        Just(Op::Div),
        Just(Op::Sqrt),
        Just(Op::Lt),
        (0u16..8).prop_map(Op::Load),
        (0u16..8).prop_map(Op::Store),
        (0u32..64).prop_map(Op::Jmp),
        (0u32..64).prop_map(Op::Jz),
        (0u16..4).prop_map(Op::Call),
        Just(Op::Ret),
        Just(Op::Halt),
        (0u8..3).prop_map(Op::InLen),
        (0u8..3).prop_map(Op::InGet),
        (0u8..3).prop_map(Op::OutPush),
        (0u8..3).prop_map(Op::OutLen),
        (0u8..2).prop_map(Op::HostIo),
    ]
}

proptest! {
    /// Whatever bytecode we throw at it — verified or rejected — execution
    /// never panics, never exceeds the sandbox, and always terminates
    /// (budget-bounded).
    #[test]
    fn execution_is_total_and_bounded(
        code in proptest::collection::vec(arb_op(), 1..80),
        n_locals in 0u16..8,
        n_inputs in 0u8..3,
        n_outputs in 0u8..3,
        input_len in 0usize..32,
    ) {
        let module = Module {
            name: "fuzz".into(),
            version: 0,
            n_inputs,
            n_outputs,
            functions: vec![Function {
                name: "main".into(),
                n_locals,
                code,
            }],
        };
        let policy = SandboxPolicy {
            max_instructions: 50_000,
            max_stack: 256,
            max_call_depth: 8,
            max_output_cells: 4_096,
            allow_host_io: false,
        };
        let buffers: Vec<Vec<f64>> = (0..n_inputs)
            .map(|i| vec![i as f64; input_len])
            .collect();
        let slices: Vec<&[f64]> = buffers.iter().map(Vec::as_slice).collect();
        // Rejection is fine; panicking is not.
        if let Ok((outputs, stats)) = execute(&module, &slices, &policy) {
            prop_assert!(stats.instructions <= policy.max_instructions);
            prop_assert!(stats.max_stack <= policy.max_stack);
            let cells: usize = outputs.iter().map(Vec::len).sum();
            prop_assert!(cells <= policy.max_output_cells);
        }
    }

    /// The caps themselves can be arbitrary (and hostile-tight): whatever
    /// the policy says is the budget, a successful run never exceeds it.
    #[test]
    fn random_tight_budgets_are_never_exceeded(
        code in proptest::collection::vec(arb_op(), 1..80),
        n_locals in 0u16..8,
        max_instructions in 1u64..5_000,
        max_stack in 1usize..64,
        max_call_depth in 1usize..8,
        max_output_cells in 0usize..256,
    ) {
        let module = Module {
            name: "budget".into(),
            version: 0,
            n_inputs: 0,
            n_outputs: 3,
            functions: vec![Function {
                name: "main".into(),
                n_locals,
                code,
            }],
        };
        let policy = SandboxPolicy {
            max_instructions,
            max_stack,
            max_call_depth,
            max_output_cells,
            allow_host_io: false,
        };
        if let Ok((outputs, stats)) = execute(&module, &[], &policy) {
            prop_assert!(stats.instructions <= max_instructions);
            prop_assert!(stats.max_stack <= max_stack);
            prop_assert!(outputs.iter().map(Vec::len).sum::<usize>() <= max_output_cells);
        }
    }

    /// A module that leads with `HostIo` under a no-host-I/O policy never
    /// runs to completion: either the verifier rejects it statically, or
    /// execution traps `HostIoDenied` on the very first instruction —
    /// before the op can observe or touch anything.
    #[test]
    fn host_io_without_capability_never_executes(
        tail in proptest::collection::vec(arb_op(), 0..40),
        port in 0u8..2,
    ) {
        let mut code = vec![Op::HostIo(port)];
        code.extend(tail);
        code.push(Op::Halt);
        let module = Module {
            name: "hostio".into(),
            version: 0,
            n_inputs: 0,
            n_outputs: 0,
            functions: vec![Function {
                name: "main".into(),
                n_locals: 0,
                code,
            }],
        };
        let policy = SandboxPolicy::standard(); // allow_host_io: false
        match execute(&module, &[], &policy) {
            Ok(_) => prop_assert!(false, "HostIo must not succeed without the capability"),
            Err(TvmError::Verify(_)) => {} // static rejection also denies
            Err(e) => prop_assert!(
                matches!(e, TvmError::HostIoDenied),
                "expected HostIoDenied, got {e:?}"
            ),
        }
    }

    /// Bytecode encode/decode round-trips arbitrary op streams.
    #[test]
    fn wire_round_trip(code in proptest::collection::vec(arb_op(), 0..100)) {
        let mut bytes = Vec::new();
        for op in &code {
            op.encode(&mut bytes);
        }
        let mut pos = 0;
        let mut back = Vec::new();
        while pos < bytes.len() {
            back.push(Op::decode(&bytes, &mut pos).unwrap());
        }
        prop_assert_eq!(back, code);
    }

    /// Assembler output always passes the verifier and the blob format.
    #[test]
    fn assembled_modules_verify(pushes in proptest::collection::vec(-1e3f64..1e3, 1..40)) {
        let mut src = String::from(".module P 1 0 1\n.func main 0\n");
        for v in &pushes {
            src.push_str(&format!(" push {v}\n outpush 0\n"));
        }
        src.push_str(" halt\n");
        let module = assemble(&src).unwrap();
        tvm::verify::verify(&module).unwrap();
        let blob = module.to_blob();
        prop_assert!(blob.integrity_ok());
        let (out, _) = execute(&module, &[], &SandboxPolicy::standard()).unwrap();
        prop_assert_eq!(out[0].len(), pushes.len());
    }
}
