//! Property tests: the verifier/sandbox never let malformed or hostile
//! bytecode do anything undefined.

use proptest::prelude::*;
use tvm::asm::assemble;
use tvm::{execute, ExecContext, Function, Module, Op, PreparedModule, SandboxPolicy, TvmError};

/// Arbitrary (possibly invalid) instruction.
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-1e6f64..1e6).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Dup),
        Just(Op::Swap),
        Just(Op::Add),
        Just(Op::Mul),
        Just(Op::Div),
        Just(Op::Sqrt),
        Just(Op::Lt),
        (0u16..8).prop_map(Op::Load),
        (0u16..8).prop_map(Op::Store),
        (0u32..64).prop_map(Op::Jmp),
        (0u32..64).prop_map(Op::Jz),
        (0u16..4).prop_map(Op::Call),
        Just(Op::Ret),
        Just(Op::Halt),
        (0u8..3).prop_map(Op::InLen),
        (0u8..3).prop_map(Op::InGet),
        (0u8..3).prop_map(Op::OutPush),
        (0u8..3).prop_map(Op::OutLen),
        (0u8..2).prop_map(Op::HostIo),
    ]
}

/// Arbitrary instruction drawing from the *full* ISA (for the differential
/// prepared-vs-legacy tests, which need every opcode and fusion shape).
fn arb_full_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (-1e6f64..1e6).prop_map(Op::Push),
        Just(Op::Pop),
        Just(Op::Dup),
        Just(Op::Swap),
        Just(Op::Over),
        (0u16..64).prop_map(Op::Load),
        (0u16..64).prop_map(Op::Store),
        prop_oneof![
            Just(Op::Add),
            Just(Op::Sub),
            Just(Op::Mul),
            Just(Op::Div),
            Just(Op::Rem),
            Just(Op::Min),
            Just(Op::Max),
            Just(Op::Pow),
        ],
        prop_oneof![
            Just(Op::Neg),
            Just(Op::Abs),
            Just(Op::Floor),
            Just(Op::Sqrt),
            Just(Op::Sin),
            Just(Op::Cos),
            Just(Op::Exp),
            Just(Op::Ln),
        ],
        prop_oneof![
            Just(Op::Eq),
            Just(Op::Ne),
            Just(Op::Lt),
            Just(Op::Le),
            Just(Op::Gt),
            Just(Op::Ge),
        ],
        (0u32..64).prop_map(Op::Jmp),
        (0u32..64).prop_map(Op::Jz),
        (0u32..64).prop_map(Op::Jnz),
        (0u16..8).prop_map(Op::Call),
        Just(Op::Ret),
        Just(Op::Halt),
        (0u8..8).prop_map(Op::InLen),
        (0u8..8).prop_map(Op::InGet),
        (0u8..8).prop_map(Op::OutPush),
        (0u8..8).prop_map(Op::OutSet),
        (0u8..8).prop_map(Op::OutLen),
        (0u8..2).prop_map(Op::HostIo),
    ]
}

/// Make an arbitrary op stream *valid by construction*: append a
/// terminator, then clamp every index/target into range so the verifier
/// accepts the function.
fn sanitize(mut code: Vec<Op>, n_locals: u16, n_funcs: u16, ports: u8, terminator: Op) -> Vec<Op> {
    code.push(terminator);
    let len = code.len() as u32;
    for op in &mut code {
        *op = match *op {
            Op::Load(i) => Op::Load(i % n_locals),
            Op::Store(i) => Op::Store(i % n_locals),
            Op::Call(t) => Op::Call(t % n_funcs),
            Op::Jmp(t) => Op::Jmp(t % len),
            Op::Jz(t) => Op::Jz(t % len),
            Op::Jnz(t) => Op::Jnz(t % len),
            Op::InLen(p) => Op::InLen(p % ports),
            Op::InGet(p) => Op::InGet(p % ports),
            Op::OutPush(p) => Op::OutPush(p % ports),
            Op::OutSet(p) => Op::OutSet(p % ports),
            Op::OutLen(p) => Op::OutLen(p % ports),
            other => other,
        };
    }
    code
}

const DIFF_LOCALS: u16 = 6;
const DIFF_PORTS: u8 = 3;

/// Build a verified multi-function module from arbitrary op streams.
fn diff_module(bodies: Vec<Vec<Op>>) -> Module {
    let n_funcs = bodies.len() as u16;
    let functions = bodies
        .into_iter()
        .enumerate()
        .map(|(i, body)| Function {
            name: format!("f{i}"),
            n_locals: DIFF_LOCALS,
            code: sanitize(
                body,
                DIFF_LOCALS,
                n_funcs,
                DIFF_PORTS,
                if i == 0 { Op::Halt } else { Op::Ret },
            ),
        })
        .collect();
    Module {
        name: "diff".into(),
        version: 1,
        n_inputs: DIFF_PORTS,
        n_outputs: DIFF_PORTS,
        functions,
    }
}

/// f64 equality up to bit identity (NaN-safe): the prepared path must
/// reproduce legacy outputs *bit for bit*.
fn bits(outputs: &[Vec<f64>]) -> Vec<Vec<u64>> {
    outputs
        .iter()
        .map(|port| port.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// Error equality; `IndexOutOfBounds` carries the offending f64 index,
/// which may be NaN.
fn errs_eq(a: &TvmError, b: &TvmError) -> bool {
    match (a, b) {
        (
            TvmError::IndexOutOfBounds {
                port: p1,
                index: i1,
            },
            TvmError::IndexOutOfBounds {
                port: p2,
                index: i2,
            },
        ) => p1 == p2 && i1.to_bits() == i2.to_bits(),
        _ => a == b,
    }
}

/// Run both paths (prepared twice, to also exercise context reuse) and
/// describe the first divergence, if any.
fn equiv_failure(module: &Module, inputs: &[&[f64]], policy: &SandboxPolicy) -> Option<String> {
    let legacy = execute(module, inputs, policy);
    let prepared = match PreparedModule::prepare(module) {
        Ok(p) => p,
        Err(e) => return Some(format!("prepare rejected a verified module: {e}")),
    };
    let mut ctx = ExecContext::new();
    for round in 0..2 {
        let fast = prepared.execute(inputs, policy, &mut ctx);
        let same = match (&legacy, &fast) {
            (Ok((lo, ls)), Ok((fo, fs))) => bits(lo) == bits(fo) && ls == fs,
            (Err(a), Err(b)) => errs_eq(a, b),
            _ => false,
        };
        if !same {
            return Some(format!(
                "round {round} diverged:\n  legacy   = {legacy:?}\n  prepared = {fast:?}"
            ));
        }
    }
    None
}

proptest! {
    /// Differential: for arbitrary *valid* modules and inputs, the
    /// prepared path produces identical outputs (bit for bit), identical
    /// `ExecStats`, and identical errors — including budget exhaustion,
    /// which the legacy interpreter checks before every source
    /// instruction and fused superinstructions must replicate mid-window.
    #[test]
    fn prepared_path_matches_legacy(
        bodies in proptest::collection::vec(
            proptest::collection::vec(arb_full_op(), 1..50), 1..4),
        lens in proptest::collection::vec(0usize..12, 3..4),
        seed in 0u64..1000,
    ) {
        let module = diff_module(bodies);
        let buffers: Vec<Vec<f64>> = lens
            .iter()
            .enumerate()
            .map(|(p, &n)| {
                (0..n)
                    .map(|j| (seed as f64 + p as f64 * 7.5 - j as f64 * 1.25).sin() * 50.0)
                    .collect()
            })
            .collect();
        let slices: Vec<&[f64]> = buffers.iter().map(Vec::as_slice).collect();
        let policy = SandboxPolicy {
            max_instructions: 20_000,
            max_stack: 64,
            max_call_depth: 8,
            max_output_cells: 1_024,
            allow_host_io: false,
        };
        let failure = equiv_failure(&module, &slices, &policy);
        prop_assert!(failure.is_none(), "{}", failure.unwrap());
    }

    /// Differential under hostile-tight policies: every sandbox violation
    /// (budget, stack overflow, call depth, output cap, HostIo trap) must
    /// fire identically on both paths — at the exact same source
    /// instruction even when it sits inside a fused window.
    #[test]
    fn prepared_path_matches_legacy_under_tight_policies(
        bodies in proptest::collection::vec(
            proptest::collection::vec(arb_full_op(), 1..50), 1..4),
        max_instructions in 1u64..2_000,
        max_stack in 1usize..10,
        max_call_depth in 1usize..6,
        max_output_cells in 0usize..48,
        host_io in 0u8..2,
    ) {
        let module = diff_module(bodies);
        let input = [1.5, -2.0, 0.0, 40.0];
        let slices: Vec<&[f64]> = vec![&input; DIFF_PORTS as usize];
        let policy = SandboxPolicy {
            max_instructions,
            max_stack,
            max_call_depth,
            max_output_cells,
            allow_host_io: host_io == 1,
        };
        let failure = equiv_failure(&module, &slices, &policy);
        prop_assert!(failure.is_none(), "{}", failure.unwrap());
    }
}

proptest! {
    /// Whatever bytecode we throw at it — verified or rejected — execution
    /// never panics, never exceeds the sandbox, and always terminates
    /// (budget-bounded).
    #[test]
    fn execution_is_total_and_bounded(
        code in proptest::collection::vec(arb_op(), 1..80),
        n_locals in 0u16..8,
        n_inputs in 0u8..3,
        n_outputs in 0u8..3,
        input_len in 0usize..32,
    ) {
        let module = Module {
            name: "fuzz".into(),
            version: 0,
            n_inputs,
            n_outputs,
            functions: vec![Function {
                name: "main".into(),
                n_locals,
                code,
            }],
        };
        let policy = SandboxPolicy {
            max_instructions: 50_000,
            max_stack: 256,
            max_call_depth: 8,
            max_output_cells: 4_096,
            allow_host_io: false,
        };
        let buffers: Vec<Vec<f64>> = (0..n_inputs)
            .map(|i| vec![i as f64; input_len])
            .collect();
        let slices: Vec<&[f64]> = buffers.iter().map(Vec::as_slice).collect();
        // Rejection is fine; panicking is not.
        if let Ok((outputs, stats)) = execute(&module, &slices, &policy) {
            prop_assert!(stats.instructions <= policy.max_instructions);
            prop_assert!(stats.max_stack <= policy.max_stack);
            let cells: usize = outputs.iter().map(Vec::len).sum();
            prop_assert!(cells <= policy.max_output_cells);
        }
    }

    /// The caps themselves can be arbitrary (and hostile-tight): whatever
    /// the policy says is the budget, a successful run never exceeds it.
    #[test]
    fn random_tight_budgets_are_never_exceeded(
        code in proptest::collection::vec(arb_op(), 1..80),
        n_locals in 0u16..8,
        max_instructions in 1u64..5_000,
        max_stack in 1usize..64,
        max_call_depth in 1usize..8,
        max_output_cells in 0usize..256,
    ) {
        let module = Module {
            name: "budget".into(),
            version: 0,
            n_inputs: 0,
            n_outputs: 3,
            functions: vec![Function {
                name: "main".into(),
                n_locals,
                code,
            }],
        };
        let policy = SandboxPolicy {
            max_instructions,
            max_stack,
            max_call_depth,
            max_output_cells,
            allow_host_io: false,
        };
        if let Ok((outputs, stats)) = execute(&module, &[], &policy) {
            prop_assert!(stats.instructions <= max_instructions);
            prop_assert!(stats.max_stack <= max_stack);
            prop_assert!(outputs.iter().map(Vec::len).sum::<usize>() <= max_output_cells);
        }
    }

    /// A module that leads with `HostIo` under a no-host-I/O policy never
    /// runs to completion: either the verifier rejects it statically, or
    /// execution traps `HostIoDenied` on the very first instruction —
    /// before the op can observe or touch anything.
    #[test]
    fn host_io_without_capability_never_executes(
        tail in proptest::collection::vec(arb_op(), 0..40),
        port in 0u8..2,
    ) {
        let mut code = vec![Op::HostIo(port)];
        code.extend(tail);
        code.push(Op::Halt);
        let module = Module {
            name: "hostio".into(),
            version: 0,
            n_inputs: 0,
            n_outputs: 0,
            functions: vec![Function {
                name: "main".into(),
                n_locals: 0,
                code,
            }],
        };
        let policy = SandboxPolicy::standard(); // allow_host_io: false
        match execute(&module, &[], &policy) {
            Ok(_) => prop_assert!(false, "HostIo must not succeed without the capability"),
            Err(TvmError::Verify(_)) => {} // static rejection also denies
            Err(e) => prop_assert!(
                matches!(e, TvmError::HostIoDenied),
                "expected HostIoDenied, got {e:?}"
            ),
        }
    }

    /// Bytecode encode/decode round-trips arbitrary op streams.
    #[test]
    fn wire_round_trip(code in proptest::collection::vec(arb_op(), 0..100)) {
        let mut bytes = Vec::new();
        for op in &code {
            op.encode(&mut bytes);
        }
        let mut pos = 0;
        let mut back = Vec::new();
        while pos < bytes.len() {
            back.push(Op::decode(&bytes, &mut pos).unwrap());
        }
        prop_assert_eq!(back, code);
    }

    /// Assembler output always passes the verifier and the blob format.
    #[test]
    fn assembled_modules_verify(pushes in proptest::collection::vec(-1e3f64..1e3, 1..40)) {
        let mut src = String::from(".module P 1 0 1\n.func main 0\n");
        for v in &pushes {
            src.push_str(&format!(" push {v}\n outpush 0\n"));
        }
        src.push_str(" halt\n");
        let module = assemble(&src).unwrap();
        tvm::verify::verify(&module).unwrap();
        let blob = module.to_blob();
        prop_assert!(blob.integrity_ok());
        let (out, _) = execute(&module, &[], &SandboxPolicy::standard()).unwrap();
        prop_assert_eq!(out[0].len(), pushes.len());
    }
}
