//! The replicated scheduler state: an ordered delta log plus one
//! [`Replica`] per orchestrator applying a prefix of it.
//!
//! Replication is modelled the way the rest of the simulation models data
//! movement: the authoritative log lives in one place (the
//! [`crate::Orchestrators`] set), real gossip messages move *sequence
//! numbers and byte counts* over the simulated network, and a replica only
//! reflects the entries whose deliveries actually reached it. Crashing or
//! partitioning a member therefore leaves its replica genuinely behind
//! until anti-entropy repairs it — exactly the failure surface the chaos
//! invariants probe.

use std::collections::{BTreeMap, BTreeSet};

/// One replicated scheduler-state change, authored by the elected leader
/// and gossiped to every follower.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delta {
    /// Unit `job` is owned (data-plane: inputs, module, results) by
    /// orchestrator member `owner`.
    Own { job: u64, owner: u32 },
    /// `job` dispatched to worker `worker` (dispatch-table entry).
    Dispatch { job: u64, worker: u32 },
    /// Checkpoint head: `job` has durably progressed to `permille`/1000 of
    /// its total work.
    Head { job: u64, permille: u32 },
    /// `job` went back to the queue (dispatch-table entry cleared).
    Requeue { job: u64 },
    /// `job` completed (completion-set entry; must be recorded once).
    Complete { job: u64 },
}

impl Delta {
    /// Serialized size estimate, driving the gossip wire model.
    pub fn wire_bytes(&self) -> u64 {
        24
    }
}

/// One member's copy of the replicated state: log entries `[0, applied)`
/// are reflected in the maps; deliveries that arrived ahead of a gap wait
/// in `buffered` until the gap fills (late delivery or anti-entropy).
#[derive(Clone, Debug, Default)]
pub struct Replica {
    applied: u64,
    buffered: BTreeSet<u64>,
    /// job → owning member index.
    pub owners: BTreeMap<u64, u32>,
    /// job → worker currently responsible (the dispatch table).
    pub dispatch: BTreeMap<u64, u32>,
    /// job → checkpointed progress in permille.
    pub heads: BTreeMap<u64, u32>,
    /// Completed jobs (the completion set).
    pub done: BTreeSet<u64>,
}

impl Replica {
    /// Log entries this replica has incorporated (a prefix).
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Entries delivered out of order, waiting for a gap to fill.
    pub fn buffered(&self) -> usize {
        self.buffered.len()
    }

    /// How far behind a log of `log_len` entries this replica is.
    pub fn lag(&self, log_len: u64) -> u64 {
        log_len.saturating_sub(self.applied)
    }

    fn apply(&mut self, d: &Delta) {
        match *d {
            Delta::Own { job, owner } => {
                self.owners.insert(job, owner);
            }
            Delta::Dispatch { job, worker } => {
                self.dispatch.insert(job, worker);
            }
            Delta::Head { job, permille } => {
                self.heads.insert(job, permille);
            }
            Delta::Requeue { job } => {
                self.dispatch.remove(&job);
            }
            Delta::Complete { job } => {
                self.dispatch.remove(&job);
                self.done.insert(job);
            }
        }
    }

    /// One gossiped delta arrived. Applies the longest contiguous prefix
    /// this unlocks; anything ahead of a gap is buffered. Returns how many
    /// log entries were applied (0 for duplicates and buffered arrivals).
    pub fn deliver(&mut self, log: &[Delta], seq: u64) -> u64 {
        if seq < self.applied {
            return 0; // duplicate of an already-applied entry
        }
        self.buffered.insert(seq);
        self.drain(log)
    }

    /// Anti-entropy batch covering `[from, from + count)` arrived: apply
    /// everything up to the batch end that is not already applied, then
    /// drain any buffered entries this unlocked. Returns entries applied.
    pub fn catch_up(&mut self, log: &[Delta], from: u64, count: u64) -> u64 {
        let upto = (from + count).min(log.len() as u64);
        let mut n = 0;
        while self.applied < upto {
            let d = log[self.applied as usize];
            self.apply(&d);
            self.buffered.remove(&self.applied);
            self.applied += 1;
            n += 1;
        }
        n + self.drain(log)
    }

    fn drain(&mut self, log: &[Delta]) -> u64 {
        let mut n = 0;
        while self.buffered.remove(&self.applied) {
            let d = log[self.applied as usize];
            self.apply(&d);
            self.applied += 1;
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log() -> Vec<Delta> {
        vec![
            Delta::Own { job: 0, owner: 1 },
            Delta::Dispatch { job: 0, worker: 3 },
            Delta::Head {
                job: 0,
                permille: 400,
            },
            Delta::Requeue { job: 0 },
            Delta::Dispatch { job: 0, worker: 2 },
            Delta::Complete { job: 0 },
        ]
    }

    #[test]
    fn in_order_delivery_applies_immediately() {
        let log = log();
        let mut r = Replica::default();
        for seq in 0..log.len() as u64 {
            assert_eq!(r.deliver(&log, seq), 1);
        }
        assert_eq!(r.applied(), 6);
        assert!(r.done.contains(&0));
        assert!(r.dispatch.is_empty());
        assert_eq!(r.owners.get(&0), Some(&1));
    }

    #[test]
    fn out_of_order_delivery_buffers_until_gap_fills() {
        let log = log();
        let mut r = Replica::default();
        assert_eq!(r.deliver(&log, 2), 0);
        assert_eq!(r.deliver(&log, 1), 0);
        assert_eq!(r.buffered(), 2);
        // Seq 0 lands: the whole buffered run drains.
        assert_eq!(r.deliver(&log, 0), 3);
        assert_eq!(r.applied(), 3);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn duplicates_are_noops() {
        let log = log();
        let mut r = Replica::default();
        r.deliver(&log, 0);
        assert_eq!(r.deliver(&log, 0), 0);
        assert_eq!(r.applied(), 1);
    }

    #[test]
    fn catch_up_repairs_gaps_and_drains_buffered() {
        let log = log();
        let mut r = Replica::default();
        r.deliver(&log, 4); // buffered ahead of the gap
        assert_eq!(r.catch_up(&log, 0, 4), 5);
        assert_eq!(r.applied(), 5);
        assert_eq!(r.lag(log.len() as u64), 1);
    }
}
