//! Deterministic controller election.
//!
//! The electorate is the orchestrator membership view: `(peer, eligibility,
//! up)` triples, where eligibility comes from
//! [`trust::orchestrator_eligibility`]. The winner is the reachable member
//! with the highest eligibility, ties broken by the lowest peer id — a pure
//! function of the view, so every member that holds the same view (and
//! every replay of the same seed) elects the same leader without any
//! message exchange beyond the membership gossip itself.

use p2p::PeerId;

/// One member as seen by the election: overlay identity, eligibility
/// score, and whether the elector can currently reach it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Elector {
    pub peer: PeerId,
    pub eligibility: f64,
    pub up: bool,
}

/// Elect a leader from the membership view. Returns the index of the
/// winning member, or `None` when no member is reachable.
pub fn elect(view: &[Elector]) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, m) in view.iter().enumerate() {
        if !m.up {
            continue;
        }
        best = Some(match best {
            None => i,
            Some(b) => {
                let cur = &view[b];
                // Strictly-greater score wins; an exact tie falls to the
                // lower peer id (stable under member-list reordering).
                if m.eligibility > cur.eligibility
                    || (m.eligibility == cur.eligibility && m.peer.0 < cur.peer.0)
                {
                    i
                } else {
                    b
                }
            }
        });
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(peer: u32, score: f64, up: bool) -> Elector {
        Elector {
            peer: PeerId(peer),
            eligibility: score,
            up,
        }
    }

    #[test]
    fn highest_eligibility_wins() {
        let view = [m(0, 0.5, true), m(1, 0.9, true), m(2, 0.7, true)];
        assert_eq!(elect(&view), Some(1));
    }

    #[test]
    fn down_members_are_skipped() {
        let view = [m(0, 0.5, true), m(1, 0.9, false), m(2, 0.7, true)];
        assert_eq!(elect(&view), Some(2));
    }

    #[test]
    fn ties_break_to_the_lowest_peer_id() {
        let view = [m(7, 0.9, true), m(3, 0.9, true), m(5, 0.9, true)];
        assert_eq!(elect(&view), Some(1));
    }

    #[test]
    fn empty_electorate_elects_nobody() {
        assert_eq!(elect(&[]), None);
        assert_eq!(elect(&[m(0, 1.0, false)]), None);
    }

    #[test]
    fn election_ignores_member_order() {
        let a = [m(2, 0.7, true), m(9, 0.9, true), m(4, 0.9, true)];
        let b = [m(9, 0.9, true), m(4, 0.9, true), m(2, 0.7, true)];
        assert_eq!(a[elect(&a).unwrap()].peer, b[elect(&b).unwrap()].peer);
        assert_eq!(a[elect(&a).unwrap()].peer, PeerId(4));
    }
}
