//! `triana-orch` — decentralised orchestration for the Consumer Grid.
//!
//! The paper's grid is fully peer-to-peer *except* for one hub: a single
//! Triana Controller owns the task graph, and when it dies the whole run
//! dies with it (ROADMAP item 2 calls it "the last hub in an otherwise P2P
//! system"). Following the decentralised-orchestration line of work
//! (Jaradat et al.; Bui et al.'s diffusion-based task management), this
//! crate replaces the hub with a small set of **peer orchestrators**:
//!
//! * the task graph is **partitioned**: every unit is owned (data-plane:
//!   inputs, module blobs, results) by the orchestrator with the best
//!   trust/locality score ([`trust::orchestrator_eligibility`] plus a
//!   per-job deterministic jitter), so no single uplink carries the farm;
//! * scheduler state — the dispatch table, completion set, and checkpoint
//!   heads — is **replicated** as an ordered [`Delta`] log: the elected
//!   leader pushes each delta to every follower as a real gossip message
//!   over the overlay, and periodic seeded **anti-entropy** rounds repair
//!   whatever crashes, cuts, or offline receivers lost;
//! * when the active orchestrator crashes or is partitioned away, a
//!   **deterministic election** ([`election::elect`]) promotes the best
//!   reachable member; in-flight results addressed to the dead leader are
//!   detected by **epoch stamps** and re-driven, giving exactly-once
//!   completion under failover.
//!
//! ### Modelling note
//!
//! As everywhere in this workspace, the network moves *byte counts*, not
//! serialized state: the authoritative log lives in [`Orchestrators`], and
//! each member's [`Replica`] applies only the entries whose gossip
//! deliveries actually reached it. Data-plane routing reads the
//! authoritative state; the chaos invariant `no-orphaned-partition` then
//! *proves* every surviving replica converged to it at quiesce, which is
//! what entitles the model to that shortcut.

pub mod election;
pub mod replica;

pub use election::{elect, Elector};
pub use replica::{Delta, Replica};

use std::cell::{Ref, RefCell};
use std::rc::Rc;

use netsim::{Duration, HostId, Network, Sim};
use obs::Obs;
use p2p::{Message, P2p, P2pEvent, PeerId};

/// One orchestrator member at construction time.
#[derive(Clone, Copy, Debug)]
pub struct OrchestratorSpec {
    pub peer: PeerId,
    pub host: HostId,
    /// Election/ownership score, typically from
    /// [`trust::orchestrator_eligibility`].
    pub eligibility: f64,
}

/// Tunables for the replication layer.
#[derive(Clone, Copy, Debug)]
pub struct OrchConfig {
    /// Period of the anti-entropy gossip tick.
    pub anti_entropy: Duration,
    /// Safety cap on anti-entropy rounds per run (prevents a sim from
    /// ticking forever if convergence is unreachable).
    pub max_rounds: u64,
}

impl Default for OrchConfig {
    fn default() -> Self {
        OrchConfig {
            anti_entropy: Duration::from_millis(1_500),
            max_rounds: 100_000,
        }
    }
}

/// A member of the orchestrator set.
#[derive(Clone, Copy, Debug)]
pub struct Member {
    pub peer: PeerId,
    pub host: HostId,
    pub eligibility: f64,
    /// Reachable from the grid's perspective (false while crashed *or*
    /// partitioned away).
    pub up: bool,
    /// Bumped on every up/down transition; embedded in output stamps so
    /// deliveries addressed to a previous incarnation are detectable.
    pub epoch: u64,
}

/// What a membership change did (for callers that resume schedulers).
#[derive(Clone, Debug, Default)]
pub struct MembershipChange {
    /// The change deposed the active leader (an election ran, or the set
    /// went leaderless).
    pub was_leader: bool,
    /// A revival re-established a leader after a leaderless spell.
    pub elected: bool,
    /// Jobs whose data-plane owner was moved to a reachable member.
    pub reassigned: Vec<u64>,
}

/// The orchestrator set: membership, the elected leader, the authoritative
/// delta log, and one gossip-fed [`Replica`] per member.
pub struct Orchestrators {
    cfg: OrchConfig,
    members: Vec<Member>,
    leader: usize,
    has_leader: bool,
    /// Election epoch: bumped on every leadership change.
    epoch: u64,
    log: Vec<Delta>,
    replicas: Vec<Replica>,
    /// Fully-applied view of `log`, used for data-plane routing (see the
    /// crate-level modelling note).
    authority: Replica,
    /// Salt for the deterministic per-job locality jitter.
    seed: u64,
    rounds: u64,
    elections: u64,
    handoffs: u64,
    repairs: u64,
    broadcasts: u64,
    obs: Obs,
}

impl Orchestrators {
    /// Build the set and run the bootstrap election (not counted in
    /// `elections()`; there is no handoff at birth).
    pub fn new(specs: &[OrchestratorSpec], seed: u64, cfg: OrchConfig) -> Self {
        assert!(!specs.is_empty(), "an orchestrator set needs members");
        let members: Vec<Member> = specs
            .iter()
            .map(|s| Member {
                peer: s.peer,
                host: s.host,
                eligibility: s.eligibility,
                up: true,
                epoch: 0,
            })
            .collect();
        let leader = elect(&view(&members)).expect("all members start up");
        let n = members.len();
        Orchestrators {
            cfg,
            members,
            leader,
            has_leader: true,
            epoch: 0,
            log: Vec::new(),
            replicas: vec![Replica::default(); n],
            authority: Replica::default(),
            seed,
            rounds: 0,
            elections: 0,
            handoffs: 0,
            repairs: 0,
            broadcasts: 0,
            obs: Obs::disabled(),
        }
    }

    /// The classic single-controller grid, expressed as a one-member set:
    /// behaves exactly like the pre-decentralisation scheduler (no gossip,
    /// no elections, every unit owned by the controller).
    pub fn single(peer: PeerId, host: HostId) -> Self {
        Orchestrators::new(
            &[OrchestratorSpec {
                peer,
                host,
                eligibility: 1.0,
            }],
            0,
            OrchConfig::default(),
        )
    }

    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    pub fn n_members(&self) -> usize {
        self.members.len()
    }

    pub fn is_single(&self) -> bool {
        self.members.len() == 1
    }

    pub fn members(&self) -> &[Member] {
        &self.members
    }

    pub fn member_up(&self, idx: usize) -> bool {
        self.members[idx].up
    }

    /// Index of the member whose peer is `peer`, if any.
    pub fn member_index(&self, peer: PeerId) -> Option<usize> {
        self.members.iter().position(|m| m.peer == peer)
    }

    pub fn leader_index(&self) -> usize {
        self.leader
    }

    pub fn has_leader(&self) -> bool {
        self.has_leader
    }

    pub fn leader_peer(&self) -> PeerId {
        self.members[self.leader].peer
    }

    pub fn leader_host(&self) -> HostId {
        self.members[self.leader].host
    }

    /// Election epoch (leadership generation).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn anti_entropy_interval(&self) -> Duration {
        self.cfg.anti_entropy
    }

    pub fn elections(&self) -> u64 {
        self.elections
    }

    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    pub fn gossip_rounds(&self) -> u64 {
        self.rounds
    }

    /// The anti-entropy round budget ([`OrchConfig::max_rounds`]) is spent.
    /// Schedulers use this to stop re-arming the tick when a run cannot
    /// reach quiescence — the terminating backstop against a livelocked
    /// world ticking forever.
    pub fn tick_exhausted(&self) -> bool {
        self.rounds >= self.cfg.max_rounds
    }

    pub fn anti_entropy_repairs(&self) -> u64 {
        self.repairs
    }

    pub fn deltas_broadcast(&self) -> u64 {
        self.broadcasts
    }

    /// The authoritative replicated state (fully-applied log).
    pub fn authority(&self) -> &Replica {
        &self.authority
    }

    /// Member `idx`'s gossip-fed replica.
    pub fn replica(&self, idx: usize) -> &Replica {
        &self.replicas[idx]
    }

    pub fn log_len(&self) -> u64 {
        self.log.len() as u64
    }

    pub fn log(&self) -> &[Delta] {
        &self.log
    }

    /// Every reachable member's replica has applied the full log.
    pub fn converged(&self) -> bool {
        self.members
            .iter()
            .zip(&self.replicas)
            .all(|(m, r)| !m.up || r.lag(self.log.len() as u64) == 0)
    }

    // --- ownership partitioning ---

    /// Deterministic per-(job, member) locality jitter in `[0.75, 1.25)`:
    /// spreads ownership across comparably-eligible members without an RNG
    /// draw (so ownership is a pure function of job id and seed).
    fn jitter(&self, job: u64, idx: usize) -> f64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in [job, idx as u64, self.seed] {
            for byte in b.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x1_0000_01b3);
            }
        }
        0.75 + 0.5 * ((h >> 11) as f64 / (1u64 << 53) as f64)
    }

    fn pick_owner(&self, job: u64) -> usize {
        let mut best: Option<(usize, f64)> = None;
        for (i, m) in self.members.iter().enumerate() {
            if !m.up {
                continue;
            }
            let score = m.eligibility * self.jitter(job, i);
            match best {
                Some((_, s)) if s >= score => {}
                _ => best = Some((i, score)),
            }
        }
        // With every member down, ownership parks on the (stale) leader;
        // the next revival reassigns orphans before work resumes.
        best.map_or(self.leader, |(i, _)| i)
    }

    /// Assign `job` a data-plane owner and replicate the decision.
    pub fn assign_owner<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        p2p: &mut P2p,
        job: u64,
    ) -> usize {
        let owner = self.pick_owner(job);
        self.record(
            sim,
            net,
            p2p,
            Delta::Own {
                job,
                owner: owner as u32,
            },
        );
        owner
    }

    /// Current owner of `job` (member index). Falls back to the leader for
    /// jobs that were never assigned (e.g. streamed submissions).
    pub fn owner_index(&self, job: u64) -> usize {
        self.authority
            .owners
            .get(&job)
            .map_or(self.leader, |&o| o as usize)
    }

    pub fn owner_peer(&self, job: u64) -> PeerId {
        self.members[self.owner_index(job)].peer
    }

    /// Host whose uplink carries `job`'s data-plane transfers.
    pub fn owner_host(&self, job: u64) -> HostId {
        self.members[self.owner_index(job)].host
    }

    /// Stamp for an in-flight delivery addressed to `job`'s owner: owner
    /// index plus the owner's incarnation epoch. A membership change in
    /// between invalidates the stamp.
    pub fn output_stamp(&self, job: u64) -> u64 {
        let idx = self.owner_index(job);
        ((idx as u64) << 48) | (self.members[idx].epoch & 0xffff_ffff_ffff)
    }

    /// Is a delivery carrying `stamp` still addressed to `job`'s live
    /// owner?
    pub fn stamp_valid(&self, job: u64, stamp: u64) -> bool {
        let idx = self.owner_index(job);
        self.members[idx].up && self.output_stamp(job) == stamp
    }

    // --- replication ---

    /// Append a delta to the log, apply it to the authority and the
    /// leader's replica, and gossip it to every reachable follower.
    pub fn record<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        p2p: &mut P2p,
        d: Delta,
    ) {
        let seq = self.log.len() as u64;
        self.log.push(d);
        self.authority.catch_up(&self.log, seq, 1);
        if self.is_single() {
            self.replicas[0].catch_up(&self.log, seq, 1);
            return;
        }
        if !self.has_leader {
            // Leaderless interval: the write is queued in the log (the
            // authority view) and reaches replicas via anti-entropy once a
            // leader is re-established.
            return;
        }
        self.replicas[self.leader].catch_up(&self.log, seq, 1);
        let from = self.members[self.leader].peer;
        for i in 0..self.members.len() {
            if i == self.leader || !self.members[i].up {
                continue;
            }
            self.broadcasts += 1;
            self.obs.incr("orch.deltas_broadcast");
            let msg = Message::OrchDelta {
                seq,
                bytes: d.wire_bytes(),
            };
            if !p2p.gossip(sim, net, from, self.members[i].peer, msg) {
                self.obs.incr("orch.delta_send_failures");
            }
        }
    }

    /// A gossip delivery surfaced by the overlay
    /// ([`p2p::Incoming::Orch`]): apply it to the receiving member's
    /// replica. Returns how many log entries the member incorporated.
    pub fn deliver(&mut self, to: PeerId, seq: u64, count: u64, sync: bool) -> u64 {
        let Some(idx) = self.member_index(to) else {
            return 0;
        };
        let n = if sync {
            let n = self.replicas[idx].catch_up(&self.log, seq, count);
            self.repairs += n;
            self.obs.add("orch.anti_entropy_repairs", n);
            n
        } else {
            self.replicas[idx].deliver(&self.log, seq)
        };
        self.obs.add("orch.deltas_applied", n);
        n
    }

    /// One periodic anti-entropy round: the leader pushes a catch-up batch
    /// to every reachable lagging follower. Returns whether every
    /// reachable replica had already converged (callers keep ticking until
    /// this holds at quiesce).
    pub fn anti_entropy_round<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        p2p: &mut P2p,
    ) -> bool {
        if self.is_single() {
            return true;
        }
        self.rounds += 1;
        if self.rounds > self.cfg.max_rounds {
            return true; // safety cap: stop driving the sim
        }
        self.obs.incr("orch.gossip_rounds");
        if !self.has_leader {
            return false;
        }
        self.catch_up_leader();
        let log_len = self.log.len() as u64;
        let from = self.members[self.leader].peer;
        let mut converged = true;
        for i in 0..self.members.len() {
            if i == self.leader || !self.members[i].up {
                continue;
            }
            let behind = self.replicas[i].lag(log_len);
            if behind == 0 {
                continue;
            }
            converged = false;
            let from_seq = self.replicas[i].applied();
            let msg = Message::OrchSync {
                from_seq,
                count: behind,
                bytes: behind * 24,
            };
            p2p.gossip(sim, net, from, self.members[i].peer, msg);
        }
        converged && self.replicas[self.leader].lag(log_len) == 0
    }

    /// Replay any log suffix the leader's own replica is missing: the
    /// state-transfer half of a handoff. An elected member that was down
    /// while writes were logged must converge before it can resume
    /// schedules or repair anyone else — otherwise anti-entropy (which
    /// only pushes leader→follower) can never close its gap.
    fn catch_up_leader(&mut self) -> u64 {
        let log_len = self.log.len() as u64;
        let behind = self.replicas[self.leader].lag(log_len);
        if behind == 0 {
            return 0;
        }
        let from = self.replicas[self.leader].applied();
        let n = self.replicas[self.leader].catch_up(&self.log, from, behind);
        self.repairs += n;
        self.obs.add("orch.anti_entropy_repairs", n);
        self.obs.add("orch.deltas_applied", n);
        n
    }

    // --- membership & election ---

    fn reassign_orphans<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        p2p: &mut P2p,
    ) -> Vec<u64> {
        if !self.members.iter().any(|m| m.up) {
            return Vec::new();
        }
        let orphans: Vec<u64> = self
            .authority
            .owners
            .iter()
            .filter(|&(job, &owner)| {
                !self.members[owner as usize].up && !self.authority.done.contains(job)
            })
            .map(|(&job, _)| job)
            .collect();
        for &job in &orphans {
            let owner = self.pick_owner(job);
            self.obs.incr("orch.owners_reassigned");
            self.record(
                sim,
                net,
                p2p,
                Delta::Own {
                    job,
                    owner: owner as u32,
                },
            );
        }
        orphans
    }

    fn run_election(&mut self) {
        match elect(&view(&self.members)) {
            Some(idx) => {
                self.leader = idx;
                self.has_leader = true;
                self.epoch += 1;
                self.elections += 1;
                self.handoffs += 1;
                self.obs.incr("orch.elections");
                self.obs.incr("orch.handoffs");
                self.catch_up_leader();
            }
            None => {
                self.has_leader = false;
                self.epoch += 1;
            }
        }
    }

    /// Member `idx` became unreachable (crash or partition). Runs the
    /// election if it was the leader and moves its orphaned units to
    /// reachable owners.
    pub fn set_member_down<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        p2p: &mut P2p,
        idx: usize,
    ) -> MembershipChange {
        if !self.members[idx].up {
            return MembershipChange::default();
        }
        self.members[idx].up = false;
        self.members[idx].epoch += 1;
        self.obs.incr("orch.member_down");
        let was_leader = self.has_leader && idx == self.leader;
        if was_leader {
            self.run_election();
        }
        let reassigned = self.reassign_orphans(sim, net, p2p);
        MembershipChange {
            was_leader,
            elected: false,
            reassigned,
        }
    }

    /// Member `idx` became reachable again (restart or partition heal). If
    /// the set was leaderless this runs the deferred election; either way
    /// units stranded on still-down members are re-owned. The revived
    /// member's replica catches up through the next anti-entropy rounds.
    pub fn set_member_up<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        p2p: &mut P2p,
        idx: usize,
    ) -> MembershipChange {
        if self.members[idx].up {
            return MembershipChange::default();
        }
        self.members[idx].up = true;
        self.members[idx].epoch += 1;
        self.obs.incr("orch.member_up");
        let mut elected = false;
        if !self.has_leader {
            self.run_election();
            elected = self.has_leader;
        }
        let reassigned = self.reassign_orphans(sim, net, p2p);
        MembershipChange {
            was_leader: false,
            elected,
            reassigned,
        }
    }
}

fn view(members: &[Member]) -> Vec<Elector> {
    members
        .iter()
        .map(|m| Elector {
            peer: m.peer,
            eligibility: m.eligibility,
            up: m.up,
        })
        .collect()
}

/// Cheap cloneable handle to a shared [`Orchestrators`] set, threaded
/// through schedulers and harnesses the way [`obs::Obs`] is.
#[derive(Clone)]
pub struct OrchestratorHandle {
    inner: Rc<RefCell<Orchestrators>>,
}

impl OrchestratorHandle {
    pub fn new(orch: Orchestrators) -> Self {
        OrchestratorHandle {
            inner: Rc::new(RefCell::new(orch)),
        }
    }

    /// The classic single-controller handle (compatibility shim).
    pub fn single(peer: PeerId, host: HostId) -> Self {
        OrchestratorHandle::new(Orchestrators::single(peer, host))
    }

    /// Immutable view of the set (for invariants and reports).
    pub fn inner(&self) -> Ref<'_, Orchestrators> {
        self.inner.borrow()
    }

    pub fn set_obs(&self, obs: Obs) {
        self.inner.borrow_mut().set_obs(obs);
    }

    pub fn is_single(&self) -> bool {
        self.inner.borrow().is_single()
    }

    pub fn n_members(&self) -> usize {
        self.inner.borrow().n_members()
    }

    pub fn member_up(&self, idx: usize) -> bool {
        self.inner.borrow().member_up(idx)
    }

    pub fn member_host(&self, idx: usize) -> HostId {
        self.inner.borrow().members()[idx].host
    }

    pub fn member_peer(&self, idx: usize) -> PeerId {
        self.inner.borrow().members()[idx].peer
    }

    pub fn has_leader(&self) -> bool {
        self.inner.borrow().has_leader()
    }

    pub fn leader_peer(&self) -> PeerId {
        self.inner.borrow().leader_peer()
    }

    pub fn leader_host(&self) -> HostId {
        self.inner.borrow().leader_host()
    }

    pub fn epoch(&self) -> u64 {
        self.inner.borrow().epoch()
    }

    pub fn anti_entropy_interval(&self) -> Duration {
        self.inner.borrow().anti_entropy_interval()
    }

    pub fn tick_exhausted(&self) -> bool {
        self.inner.borrow().tick_exhausted()
    }

    pub fn owner_host(&self, job: u64) -> HostId {
        self.inner.borrow().owner_host(job)
    }

    pub fn owner_index(&self, job: u64) -> usize {
        self.inner.borrow().owner_index(job)
    }

    pub fn output_stamp(&self, job: u64) -> u64 {
        self.inner.borrow().output_stamp(job)
    }

    pub fn stamp_valid(&self, job: u64, stamp: u64) -> bool {
        self.inner.borrow().stamp_valid(job, stamp)
    }

    pub fn converged(&self) -> bool {
        self.inner.borrow().converged()
    }

    pub fn assign_owner<E: From<P2pEvent>>(
        &self,
        sim: &mut Sim<E>,
        net: &mut Network,
        p2p: &mut P2p,
        job: u64,
    ) -> usize {
        self.inner.borrow_mut().assign_owner(sim, net, p2p, job)
    }

    pub fn record<E: From<P2pEvent>>(
        &self,
        sim: &mut Sim<E>,
        net: &mut Network,
        p2p: &mut P2p,
        d: Delta,
    ) {
        self.inner.borrow_mut().record(sim, net, p2p, d);
    }

    pub fn deliver(&self, to: PeerId, seq: u64, count: u64, sync: bool) -> u64 {
        self.inner.borrow_mut().deliver(to, seq, count, sync)
    }

    pub fn anti_entropy_round<E: From<P2pEvent>>(
        &self,
        sim: &mut Sim<E>,
        net: &mut Network,
        p2p: &mut P2p,
    ) -> bool {
        self.inner.borrow_mut().anti_entropy_round(sim, net, p2p)
    }

    pub fn set_member_down<E: From<P2pEvent>>(
        &self,
        sim: &mut Sim<E>,
        net: &mut Network,
        p2p: &mut P2p,
        idx: usize,
    ) -> MembershipChange {
        self.inner.borrow_mut().set_member_down(sim, net, p2p, idx)
    }

    pub fn set_member_up<E: From<P2pEvent>>(
        &self,
        sim: &mut Sim<E>,
        net: &mut Network,
        p2p: &mut P2p,
        idx: usize,
    ) -> MembershipChange {
        self.inner.borrow_mut().set_member_up(sim, net, p2p, idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::HostSpec;
    use p2p::{DiscoveryMode, Incoming};

    type Ev = P2pEvent;

    struct World {
        sim: Sim<Ev>,
        net: Network,
        p2p: P2p,
    }

    fn world(n: usize) -> (World, Vec<OrchestratorSpec>) {
        let mut w = World {
            sim: Sim::new(42),
            net: Network::new(),
            p2p: P2p::new(DiscoveryMode::Flooding),
        };
        let specs: Vec<OrchestratorSpec> = (0..n)
            .map(|i| {
                let host = w.net.add_host(HostSpec::lan_workstation());
                let peer = w.p2p.add_peer(host);
                OrchestratorSpec {
                    peer,
                    host,
                    eligibility: 1.0 - i as f64 * 0.1,
                }
            })
            .collect();
        (w, specs)
    }

    /// Drain the sim, feeding gossip deliveries back into the set.
    fn run(w: &mut World, orch: &OrchestratorHandle) {
        while let Some(ev) = w.sim.step() {
            for inc in w.p2p.handle(&mut w.sim, &mut w.net, ev) {
                if let Incoming::Orch {
                    to,
                    seq,
                    count,
                    sync,
                } = inc
                {
                    orch.deliver(to, seq, count, sync);
                }
            }
        }
    }

    #[test]
    fn single_member_set_needs_no_gossip() {
        let (mut w, specs) = world(1);
        let orch = OrchestratorHandle::new(Orchestrators::new(&specs, 1, OrchConfig::default()));
        orch.assign_owner(&mut w.sim, &mut w.net, &mut w.p2p, 0);
        orch.record(
            &mut w.sim,
            &mut w.net,
            &mut w.p2p,
            Delta::Complete { job: 0 },
        );
        assert!(orch.converged());
        assert_eq!(orch.owner_index(0), 0);
        assert!(w.sim.step().is_none(), "no messages in single mode");
    }

    #[test]
    fn deltas_gossip_to_every_follower() {
        let (mut w, specs) = world(3);
        let orch = OrchestratorHandle::new(Orchestrators::new(&specs, 1, OrchConfig::default()));
        for job in 0..4 {
            orch.assign_owner(&mut w.sim, &mut w.net, &mut w.p2p, job);
        }
        run(&mut w, &orch);
        assert!(orch.converged());
        let inner = orch.inner();
        for i in 0..3 {
            assert_eq!(inner.replica(i).applied(), 4);
            assert_eq!(inner.replica(i).owners.len(), 4);
        }
    }

    #[test]
    fn ownership_spreads_across_members() {
        let (mut w, specs) = world(3);
        let orch = OrchestratorHandle::new(Orchestrators::new(&specs, 7, OrchConfig::default()));
        let mut seen = std::collections::BTreeSet::new();
        for job in 0..32 {
            seen.insert(orch.assign_owner(&mut w.sim, &mut w.net, &mut w.p2p, job));
        }
        assert!(seen.len() > 1, "all 32 units landed on one orchestrator");
    }

    #[test]
    fn leader_crash_elects_next_best_and_reassigns_orphans() {
        let (mut w, specs) = world(3);
        let orch = OrchestratorHandle::new(Orchestrators::new(&specs, 1, OrchConfig::default()));
        assert_eq!(orch.inner().leader_index(), 0); // highest eligibility
        let jobs: Vec<u64> = (0..8).collect();
        for &j in &jobs {
            orch.assign_owner(&mut w.sim, &mut w.net, &mut w.p2p, j);
        }
        let stamp = orch.output_stamp(0);
        let change = orch.set_member_down(&mut w.sim, &mut w.net, &mut w.p2p, 0);
        assert!(change.was_leader);
        assert_eq!(orch.inner().leader_index(), 1);
        assert_eq!(orch.inner().elections(), 1);
        // Every unit the dead member owned moved to a live owner, and any
        // stamp minted before the change is now stale for those units.
        for &j in &jobs {
            assert!(orch.member_up(orch.owner_index(j)));
        }
        if change.reassigned.contains(&0) {
            assert!(!orch.stamp_valid(0, stamp));
        }
        run(&mut w, &orch);
    }

    #[test]
    fn anti_entropy_repairs_a_revived_member() {
        let (mut w, specs) = world(3);
        let orch = OrchestratorHandle::new(Orchestrators::new(&specs, 1, OrchConfig::default()));
        orch.set_member_down(&mut w.sim, &mut w.net, &mut w.p2p, 2);
        w.net.set_online(specs[2].host, false);
        for job in 0..6 {
            orch.assign_owner(&mut w.sim, &mut w.net, &mut w.p2p, job);
        }
        run(&mut w, &orch);
        assert!(!orch.converged() || orch.inner().replica(2).applied() == 0);
        w.net.set_online(specs[2].host, true);
        orch.set_member_up(&mut w.sim, &mut w.net, &mut w.p2p, 2);
        let mut rounds = 0;
        while !orch.converged() && rounds < 10 {
            orch.anti_entropy_round(&mut w.sim, &mut w.net, &mut w.p2p);
            run(&mut w, &orch);
            rounds += 1;
        }
        assert!(orch.converged());
        assert!(orch.inner().anti_entropy_repairs() >= 6);
    }

    #[test]
    fn leaderless_interval_defers_election_until_revival() {
        let (mut w, specs) = world(2);
        let orch = OrchestratorHandle::new(Orchestrators::new(&specs, 1, OrchConfig::default()));
        orch.assign_owner(&mut w.sim, &mut w.net, &mut w.p2p, 0);
        orch.set_member_down(&mut w.sim, &mut w.net, &mut w.p2p, 1);
        let change = orch.set_member_down(&mut w.sim, &mut w.net, &mut w.p2p, 0);
        assert!(change.was_leader);
        assert!(!orch.has_leader());
        let change = orch.set_member_up(&mut w.sim, &mut w.net, &mut w.p2p, 1);
        assert!(change.elected);
        assert!(orch.has_leader());
        assert_eq!(orch.inner().leader_index(), 1);
        assert_eq!(orch.owner_index(0), 1);
        run(&mut w, &orch);
    }

    #[test]
    fn duplicate_membership_transitions_are_noops() {
        let (mut w, specs) = world(3);
        let orch = OrchestratorHandle::new(Orchestrators::new(&specs, 1, OrchConfig::default()));
        orch.set_member_down(&mut w.sim, &mut w.net, &mut w.p2p, 1);
        let before = orch.inner().members()[1].epoch;
        let change = orch.set_member_down(&mut w.sim, &mut w.net, &mut w.p2p, 1);
        assert!(change.reassigned.is_empty());
        assert_eq!(orch.inner().members()[1].epoch, before);
    }
}
