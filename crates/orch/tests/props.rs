//! Property tests for the decentralised-orchestration primitives:
//!
//! * **Election determinism** — the same membership view always elects the
//!   same leader, no matter how the view is permuted; every elected leader
//!   is reachable and unbeaten.
//! * **Anti-entropy convergence** — whatever order gossip deliveries
//!   arrive in (duplicated, reordered, partially dropped), a replica that
//!   finally receives a catch-up batch reaches exactly the state a
//!   sequential application of the log produces.

use orch::{elect, Delta, Elector, Replica};
use p2p::PeerId;
use proptest::prelude::*;

/// A deterministic membership view derived from compact generator output:
/// peer ids are distinct by construction, eligibility is quantised so exact
/// ties actually occur, and each member is up with probability ~3/4.
fn build_view(raw: &[(u8, u8)]) -> Vec<Elector> {
    raw.iter()
        .enumerate()
        .map(|(i, &(score, flags))| Elector {
            peer: PeerId(i as u32),
            eligibility: f64::from(score % 8) / 8.0,
            up: flags % 4 != 0,
        })
        .collect()
}

/// Reference implementation: exhaustive scan for the best reachable member.
fn oracle_elect(view: &[Elector]) -> Option<usize> {
    view.iter()
        .enumerate()
        .filter(|(_, m)| m.up)
        .min_by(|(_, a), (_, b)| {
            b.eligibility
                .partial_cmp(&a.eligibility)
                .unwrap()
                .then(a.peer.0.cmp(&b.peer.0))
        })
        .map(|(i, _)| i)
}

/// Apply the whole log in sequence: the state every replica must converge
/// to.
fn sequential_oracle(log: &[Delta]) -> Replica {
    let mut r = Replica::default();
    r.catch_up(log, 0, log.len() as u64);
    r
}

/// Decode generator bytes into a delta log over a small job space.
fn build_log(raw: &[(u8, u8)]) -> Vec<Delta> {
    raw.iter()
        .map(|&(kind, arg)| {
            let job = u64::from(arg % 5);
            match kind % 5 {
                0 => Delta::Own {
                    job,
                    owner: u32::from(arg) % 3,
                },
                1 => Delta::Dispatch {
                    job,
                    worker: u32::from(arg) % 7,
                },
                2 => Delta::Head {
                    job,
                    permille: u32::from(arg) * 4 % 1000,
                },
                3 => Delta::Requeue { job },
                _ => Delta::Complete { job },
            }
        })
        .collect()
}

fn same_state(a: &Replica, b: &Replica) -> bool {
    a.applied() == b.applied()
        && a.owners == b.owners
        && a.dispatch == b.dispatch
        && a.heads == b.heads
        && a.done == b.done
}

proptest! {
    #[test]
    fn election_is_deterministic_and_optimal(
        raw in proptest::collection::vec((0u8..255, 0u8..255), 1..12),
    ) {
        let view = build_view(&raw);
        let winner = elect(&view);
        // Same view, same winner — and it matches the exhaustive oracle.
        prop_assert_eq!(winner, elect(&view));
        prop_assert_eq!(winner, oracle_elect(&view));
        if let Some(w) = winner {
            prop_assert!(view[w].up);
            for m in view.iter().filter(|m| m.up) {
                // Nobody reachable strictly beats the winner.
                prop_assert!(
                    m.eligibility < view[w].eligibility
                        || (m.eligibility == view[w].eligibility
                            && m.peer.0 >= view[w].peer.0)
                );
            }
        } else {
            prop_assert!(view.iter().all(|m| !m.up));
        }
    }

    #[test]
    fn election_is_invariant_under_view_permutation(
        raw in proptest::collection::vec((0u8..255, 0u8..255), 1..10),
        rot in 0usize..10,
    ) {
        let view = build_view(&raw);
        let mut rotated = view.clone();
        rotated.rotate_left(rot % view.len().max(1));
        let a = elect(&view).map(|i| view[i].peer);
        let b = elect(&rotated).map(|i| rotated[i].peer);
        // The winning *peer* is a function of the view's contents, not of
        // the order members are listed in.
        prop_assert_eq!(a, b);
    }

    #[test]
    fn any_gossip_interleaving_converges_to_the_sequential_oracle(
        raw in proptest::collection::vec((0u8..255, 0u8..255), 1..24),
        order in proptest::collection::vec((0u16..1024, 0u8..4), 0..48),
    ) {
        let log = build_log(&raw);
        let oracle = sequential_oracle(&log);
        let mut replica = Replica::default();
        // An adversarial delivery schedule: arbitrary sequence numbers
        // (reordered, duplicated, some never delivered), with occasional
        // anti-entropy batches mixed in.
        for &(pick, kind) in &order {
            let seq = u64::from(pick) % log.len() as u64;
            if kind == 0 {
                replica.catch_up(&log, replica.applied(), u64::from(pick % 3) + 1);
            } else {
                replica.deliver(&log, seq);
            }
        }
        // Replica state is always a valid prefix of the log.
        let prefix = {
            let mut p = Replica::default();
            p.catch_up(&log, 0, replica.applied());
            p
        };
        prop_assert!(same_state(&replica, &prefix));
        // One full anti-entropy repair lands the replica exactly on the
        // sequential-oracle state, regardless of the interleaving above.
        replica.catch_up(&log, replica.applied(), log.len() as u64);
        prop_assert!(same_state(&replica, &oracle));
        prop_assert_eq!(replica.buffered(), 0);
    }
}
