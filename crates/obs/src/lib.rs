//! Grid-wide observability for the consumer-grid workspace.
//!
//! Two pieces:
//!
//! * a metrics [`Registry`] — monotonic counters, gauges, power-of-two
//!   bucketed latency [`Histogram`]s — plus a bounded structured event log
//!   keyed on **virtual** (simulation) time;
//! * a cheap handle, [`Obs`], threaded through the engine, grid
//!   schedulers, P2P overlay and TVM. A disabled handle is a single
//!   `Option` branch per call site, so instrumentation costs nothing when
//!   off (the default everywhere).
//!
//! Snapshots serialize to JSON with a fixed key order and no wall-clock
//! data, so two identically-seeded runs emit byte-identical files; see
//! [`Registry::snapshot_json`]. Wall-clock measurements live in a separate
//! volatile section surfaced only by [`Registry::snapshot_json_full`].
//!
//! The crate is dependency-free (it ships its own tiny JSON emitter and
//! parser in [`json`]) so every other crate can depend on it without
//! widening the build graph.

pub mod json;
pub mod registry;

pub use registry::{Event, Histogram, Registry, DEFAULT_EVENT_CAPACITY};

use std::sync::Arc;

/// Cheap, cloneable observability handle.
///
/// `Obs::disabled()` (also `Obs::default()`) is a `None` inside: every
/// recording method is one branch and returns. `Obs::enabled()` allocates
/// a shared [`Registry`] that all clones feed.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Registry>>,
}

impl Obs {
    /// The no-op handle; recording methods do nothing.
    pub fn disabled() -> Self {
        Obs { inner: None }
    }

    /// A recording handle backed by a fresh shared registry.
    pub fn enabled() -> Self {
        Obs {
            inner: Some(Arc::new(Registry::default())),
        }
    }

    /// A recording handle with a bounded event log of `capacity` entries.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Obs {
            inner: Some(Arc::new(Registry::with_event_capacity(capacity))),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The backing registry, if enabled (for snapshots).
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.inner.as_ref()
    }

    /// Add `delta` to the named monotonic counter.
    pub fn add(&self, name: &str, delta: u64) {
        if let Some(r) = &self.inner {
            r.add_counter(name, delta);
        }
    }

    /// Increment the named counter by one.
    pub fn incr(&self, name: &str) {
        self.add(name, 1);
    }

    /// Set a gauge to an absolute value.
    pub fn gauge(&self, name: &str, value: i64) {
        if let Some(r) = &self.inner {
            r.set_gauge(name, value);
        }
    }

    /// Raise a gauge to `value` if it is a new high-water mark.
    pub fn gauge_max(&self, name: &str, value: i64) {
        if let Some(r) = &self.inner {
            r.max_gauge(name, value);
        }
    }

    /// Record one sample into the named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(r) = &self.inner {
            r.observe(name, value);
        }
    }

    /// Append a structured event at virtual time `t_micros`. The detail
    /// closure only runs when recording is enabled, so call sites can
    /// format freely without paying for it when off.
    pub fn event(&self, t_micros: u64, kind: &str, detail: impl FnOnce() -> String) {
        if let Some(r) = &self.inner {
            r.record_event(t_micros, kind, detail());
        }
    }

    /// Record a wall-clock / host-dependent value; excluded from the
    /// deterministic snapshot.
    pub fn volatile(&self, name: &str, value: f64) {
        if let Some(r) = &self.inner {
            r.set_volatile(name, value);
        }
    }

    /// Deterministic JSON snapshot, or `None` when disabled.
    pub fn snapshot_json(&self) -> Option<String> {
        self.inner.as_ref().map(|r| r.snapshot_json())
    }

    /// Snapshot including the volatile section, or `None` when disabled.
    pub fn snapshot_json_full(&self) -> Option<String> {
        self.inner.as_ref().map(|r| r.snapshot_json_full())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        obs.incr("x");
        obs.gauge("g", 1);
        obs.observe("h", 1);
        obs.event(0, "k", || unreachable!("detail closure must not run"));
        assert!(!obs.is_enabled());
        assert!(obs.snapshot_json().is_none());
    }

    #[test]
    fn clones_share_one_registry() {
        let obs = Obs::enabled();
        let other = obs.clone();
        obs.incr("shared");
        other.add("shared", 4);
        assert_eq!(obs.registry().unwrap().counter_value("shared"), 5);
    }

    #[test]
    fn snapshot_parses_with_expected_sections() {
        let obs = Obs::enabled();
        obs.incr("engine.fires");
        obs.observe("lat", 3);
        obs.event(1_000_000, "farm.dispatch", || "job=1".to_string());
        let snap = obs.snapshot_json().unwrap();
        let v = json::parse(&snap).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("triana-obs/1"));
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("engine.fires")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        let events = v.get("events").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("t").unwrap().as_u64(), Some(1_000_000));
        assert_eq!(
            events[0].get("kind").unwrap().as_str(),
            Some("farm.dispatch")
        );
        assert_eq!(v.get("events_dropped").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn identical_recording_gives_identical_bytes() {
        let run = || {
            let obs = Obs::enabled();
            for i in 0..10u64 {
                obs.add("c", i);
                obs.observe("h", i * 17);
                obs.event(i * 5, "tick", || format!("i={i}"));
            }
            obs.snapshot_json().unwrap()
        };
        assert_eq!(run(), run());
    }
}
