//! The metrics registry: counters, gauges, fixed-bucket histograms and a
//! bounded structured event log.
//!
//! All collections are `BTreeMap`s so snapshot emission is deterministic
//! without a sort pass. Wall-clock measurements go into the separate
//! *volatile* section, which [`Registry::snapshot_json`] excludes — the
//! deterministic snapshot of a seeded run must be byte-identical across
//! machines and runs.

use crate::json;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default bound on retained events; older events are dropped (and counted).
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// Power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples `v` with `2^(i-1) < v <= 2^i` (bucket 0 takes
/// `v <= 1`). Only non-empty buckets appear in snapshots.
#[derive(Clone, Debug)]
pub struct Histogram {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    buckets: [u64; 64],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 64],
        }
    }
}

impl Histogram {
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    fn bucket_index(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            (64 - (value - 1).leading_zeros() as usize).min(63)
        }
    }

    /// Upper bound of bucket `i` (inclusive).
    fn bucket_bound(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Non-empty `(upper_bound, count)` pairs in ascending bound order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_bound(i), c))
            .collect()
    }
}

/// One structured trace event, timestamped with virtual (simulation) time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual time in microseconds (netsim `SimTime::as_micros`).
    pub t_micros: u64,
    /// Dotted event kind, e.g. `"farm.dispatch"`.
    pub kind: String,
    /// Free-form detail, e.g. `"job=3 worker=1"`.
    pub detail: String,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    events: VecDeque<Event>,
    events_dropped: u64,
    /// Wall-clock / host-dependent values, excluded from the deterministic
    /// snapshot.
    volatile: BTreeMap<String, f64>,
}

/// Shared metrics store. Cheap to clone via `Arc` inside [`crate::Obs`];
/// all mutation is behind one mutex (instrumented paths hold it for a few
/// map operations only).
pub struct Registry {
    inner: Mutex<Inner>,
    event_capacity: usize,
}

impl Default for Registry {
    fn default() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }
}

impl Registry {
    pub fn with_event_capacity(event_capacity: usize) -> Self {
        Registry {
            inner: Mutex::new(Inner::default()),
            event_capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("obs registry poisoned")
    }

    pub fn add_counter(&self, name: &str, delta: u64) {
        let mut inner = self.lock();
        match inner.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                inner.counters.insert(name.to_string(), delta);
            }
        }
    }

    pub fn set_gauge(&self, name: &str, value: i64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Set the gauge to `value` only if it exceeds the current value
    /// (high-water marks such as peak queue depth).
    pub fn max_gauge(&self, name: &str, value: i64) {
        let mut inner = self.lock();
        match inner.gauges.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                inner.gauges.insert(name.to_string(), value);
            }
        }
    }

    pub fn observe(&self, name: &str, value: u64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    pub fn record_event(&self, t_micros: u64, kind: &str, detail: String) {
        let mut inner = self.lock();
        if inner.events.len() >= self.event_capacity {
            inner.events.pop_front();
            inner.events_dropped += 1;
        }
        inner.events.push_back(Event {
            t_micros,
            kind: kind.to_string(),
            detail,
        });
    }

    pub fn set_volatile(&self, name: &str, value: f64) {
        self.lock().volatile.insert(name.to_string(), value);
    }

    pub fn counter_value(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.lock().gauges.get(name).copied()
    }

    pub fn event_count(&self) -> usize {
        self.lock().events.len()
    }

    /// The deterministic snapshot: fixed top-level key order, `BTreeMap`
    /// iteration order inside each section, virtual-time timestamps only.
    /// Two identically-seeded runs produce byte-identical output.
    pub fn snapshot_json(&self) -> String {
        self.emit(false)
    }

    /// Deterministic snapshot plus the volatile (wall-clock) section; for
    /// human consumption, not for byte-comparison.
    pub fn snapshot_json_full(&self) -> String {
        self.emit(true)
    }

    fn emit(&self, with_volatile: bool) -> String {
        let inner = self.lock();
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":\"triana-obs/1\",\"counters\":{");
        for (i, (k, v)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in inner.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_string(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in inner.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_string(&mut out, k);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                h.count, h.sum, h.min, h.max
            ));
            for (j, (bound, count)) in h.nonzero_buckets().into_iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{bound},{count}]"));
            }
            out.push_str("]}");
        }
        out.push_str("},\"events\":[");
        for (i, e) in inner.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"t\":{},\"kind\":", e.t_micros));
            json::push_string(&mut out, &e.kind);
            out.push_str(",\"detail\":");
            json::push_string(&mut out, &e.detail);
            out.push('}');
        }
        out.push_str(&format!("],\"events_dropped\":{}", inner.events_dropped));
        if with_volatile {
            out.push_str(",\"volatile\":{");
            for (i, (k, v)) in inner.volatile.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::push_string(&mut out, k);
                out.push(':');
                out.push_str(&format!("{v}"));
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = Registry::default();
        r.add_counter("a", 2);
        r.add_counter("a", 3);
        assert_eq!(r.counter_value("a"), 5);
        r.add_counter("b", u64::MAX);
        r.add_counter("b", 10);
        assert_eq!(r.counter_value("b"), u64::MAX);
    }

    #[test]
    fn gauges_set_and_max() {
        let r = Registry::default();
        r.set_gauge("depth", 4);
        r.set_gauge("depth", 2);
        assert_eq!(r.gauge_value("depth"), Some(2));
        r.max_gauge("peak", 3);
        r.max_gauge("peak", 1);
        r.max_gauge("peak", 9);
        assert_eq!(r.gauge_value("peak"), Some(9));
    }

    #[test]
    fn histogram_buckets_power_of_two() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 5, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.sum, 1015);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        // 0,1 -> bound 1; 2 -> 2; 3,4 -> 4; 5 -> 8; 1000 -> 1024
        assert_eq!(
            h.nonzero_buckets(),
            vec![(1, 2), (2, 1), (4, 2), (8, 1), (1024, 1)]
        );
    }

    #[test]
    fn histogram_extremes() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.nonzero_buckets(), vec![(u64::MAX, 1)]);
    }

    #[test]
    fn event_ring_bounds_and_counts_drops() {
        let r = Registry::with_event_capacity(3);
        for i in 0..5u64 {
            r.record_event(i, "k", format!("e{i}"));
        }
        assert_eq!(r.event_count(), 3);
        let snap = r.snapshot_json();
        assert!(snap.contains("\"events_dropped\":2"));
        assert!(snap.contains("e4"));
        assert!(!snap.contains("e0"));
    }

    #[test]
    fn snapshot_is_deterministic_and_ordered() {
        let build = || {
            let r = Registry::default();
            r.add_counter("z.last", 1);
            r.add_counter("a.first", 2);
            r.observe("lat", 7);
            r.record_event(10, "kind", "detail \"quoted\"".to_string());
            r.set_volatile("wall_secs", 1.25);
            r.snapshot_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        // BTreeMap ordering: a.first before z.last.
        let ai = a.find("a.first").unwrap();
        let zi = a.find("z.last").unwrap();
        assert!(ai < zi);
        // Volatile section excluded from the deterministic snapshot.
        assert!(!a.contains("wall_secs"));
        assert!(!a.contains("volatile"));
    }

    #[test]
    fn full_snapshot_includes_volatile() {
        let r = Registry::default();
        r.set_volatile("wall_secs", 0.5);
        let full = r.snapshot_json_full();
        assert!(full.contains("\"volatile\":{\"wall_secs\":0.5}"));
    }
}
