//! Minimal JSON support: string escaping for the snapshot emitter and a
//! small recursive-descent parser so tests (and tools) can validate
//! snapshots without an external JSON dependency.

use std::collections::BTreeMap;
use std::fmt;

/// Append `s` as a JSON string literal (quotes, escapes) onto `out`.
pub fn push_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value. Objects keep key order via `BTreeMap` (snapshot
/// keys are emitted sorted, so round-tripping preserves order).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not needed for snapshot data.
                            s.push(char::from_u32(code).ok_or_else(|| self.err("bad code point"))?);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar: find its byte length.
                    let start = self.pos;
                    let rest = &self.bytes[start..];
                    let len = utf8_len(rest[0]);
                    if rest.len() < len {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let chunk =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny"},"d":true,"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e"), Some(&Value::Null));
    }

    #[test]
    fn escape_round_trip() {
        let original = "quote \" backslash \\ tab \t newline \n control \u{1} unicode é";
        let mut emitted = String::new();
        push_string(&mut emitted, original);
        let parsed = parse(&emitted).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5e2").unwrap().as_f64(), Some(-150.0));
    }
}
