//! On-demand module management (§3.3).
//!
//! "When distributing an application, a Triana peer can send a connectivity
//! graph to another peer node … the peer can request executable code for
//! modules that are present within the connectivity graph. This dynamic
//! download of code … allows the peer to only host code that is necessary –
//! and overcomes the problem of having inconsistent versions of executables
//! … A resource-constrained device may also decide to selectively download
//! and release executable modules."
//!
//! * [`ModuleLibrary`] — the owner side: (name, version) → blob.
//! * [`ModuleCache`] — the hosting peer side: an LRU cache bounded in bytes,
//!   the "selectively download and release" mechanism.

use obs::Obs;
use std::collections::HashMap;
use std::sync::Arc;
use tvm::{ExecTier, ModuleBlob, TierPolicy};

/// Identity of a module: name plus version. Content hash disambiguates
/// further (stale copies of the same version are detected by hash).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModuleKey {
    pub name: String,
    pub version: u32,
}

impl ModuleKey {
    pub fn new(name: &str, version: u32) -> Self {
        ModuleKey {
            name: name.to_string(),
            version,
        }
    }
}

/// The code owner's library: source of truth for module blobs.
#[derive(Debug, Default)]
pub struct ModuleLibrary {
    blobs: HashMap<ModuleKey, ModuleBlob>,
}

impl ModuleLibrary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a blob. Re-publishing the same key replaces the blob —
    /// because peers always re-request from the owner, every subsequent
    /// execution uses the new code (the paper's version-consistency
    /// property).
    pub fn publish(&mut self, key: ModuleKey, blob: ModuleBlob) {
        self.blobs.insert(key, blob);
    }

    pub fn fetch(&self, key: &ModuleKey) -> Option<&ModuleBlob> {
        self.blobs.get(key)
    }

    /// Latest version of a named module.
    pub fn latest(&self, name: &str) -> Option<&ModuleKey> {
        self.blobs
            .keys()
            .filter(|k| k.name == name)
            .max_by_key(|k| k.version)
    }

    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }
}

/// Cache statistics for experiment E8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    /// Bytes inserted into the cache over its lifetime (= bytes downloaded).
    pub bytes_fetched: u64,
    /// High-water resident size.
    pub peak_resident: u64,
    /// Verify-once preparations performed at admission.
    pub prepares: u64,
    /// `get_prepared` lookups that found a resident prepared module.
    pub prepared_hits: u64,
    /// `get_prepared` lookups that found nothing prepared for the key.
    pub prepared_misses: u64,
}

/// A byte-bounded LRU cache of module blobs on a hosting peer.
///
/// Admission is also the verify-once point and the execution-tier
/// selection point: every cached blob is admitted through
/// [`tvm::tier::admit`] exactly once, so steady-state execution never
/// re-runs the bytecode verifier (the paper's JVM analogue: class
/// verification happens at load, not per invocation). Under the default
/// [`TierPolicy::Auto`], modules with translatable hot loops come back as
/// tier 2, straight-line code as the prepared tier.
pub struct ModuleCache {
    capacity: u64,
    resident: u64,
    /// Insertion/access order: front = least recently used.
    order: Vec<ModuleKey>,
    blobs: HashMap<ModuleKey, ModuleBlob>,
    /// Admitted execution tier of each resident blob (absent only if the
    /// blob failed to verify — corrupt entries stay resident for
    /// integrity audits).
    prepared: HashMap<ModuleKey, Arc<dyn ExecTier>>,
    tier_policy: TierPolicy,
    stats: CacheStats,
    obs: Obs,
}

impl std::fmt::Debug for ModuleCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModuleCache")
            .field("capacity", &self.capacity)
            .field("resident", &self.resident)
            .field("order", &self.order)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ModuleCache {
    /// `capacity` in bytes — on a handheld this is small (§3.3's
    /// "limited capability to host code locally – due to memory
    /// constraints").
    pub fn new(capacity: u64) -> Self {
        ModuleCache {
            capacity,
            resident: 0,
            order: Vec::new(),
            blobs: HashMap::new(),
            prepared: HashMap::new(),
            tier_policy: TierPolicy::default(),
            stats: CacheStats::default(),
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability handle; preparations and prepared-lookup
    /// hits/misses are metered through it.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Choose which execution tier future admissions construct. Already
    /// resident modules keep the tier they were admitted under.
    pub fn set_tier_policy(&mut self, policy: TierPolicy) {
        self.tier_policy = policy;
    }

    pub fn tier_policy(&self) -> TierPolicy {
        self.tier_policy
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn resident_bytes(&self) -> u64 {
        self.resident
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    pub fn contains(&self, key: &ModuleKey) -> bool {
        self.blobs.contains_key(key)
    }

    pub fn len(&self) -> usize {
        self.blobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blobs.is_empty()
    }

    /// Iterate over resident entries without touching recency or hit/miss
    /// accounting. Iteration follows LRU order (least recent first) so
    /// walks are deterministic; integrity audits re-hash each blob against
    /// the content id expected for its key.
    pub fn entries(&self) -> impl Iterator<Item = (&ModuleKey, &ModuleBlob)> {
        self.order.iter().map(|k| (k, &self.blobs[k]))
    }

    /// Look up a blob, updating recency and hit/miss counters.
    pub fn get(&mut self, key: &ModuleKey) -> Option<&ModuleBlob> {
        if self.blobs.contains_key(key) {
            self.stats.hits += 1;
            self.touch(key);
            self.blobs.get(key)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Look up the admitted execution tier of a resident module, updating
    /// recency and prepared hit/miss counters. This is the execution-path
    /// accessor: workers call it once per run and reuse the returned
    /// [`Arc`] across an [`tvm::ExecContext`].
    pub fn get_prepared(&mut self, key: &ModuleKey) -> Option<Arc<dyn ExecTier>> {
        if let Some(p) = self.prepared.get(key) {
            let p = Arc::clone(p);
            self.stats.prepared_hits += 1;
            self.obs.incr("tvm.prepared_cache_hits");
            self.touch(key);
            Some(p)
        } else {
            self.stats.prepared_misses += 1;
            self.obs.incr("tvm.prepared_cache_misses");
            None
        }
    }

    /// Admitted tier of a resident module without touching recency or
    /// hit/miss accounting — for integrity audits (chaos invariants check
    /// that every admitted module still matches its key's content id).
    pub fn prepared_of(&self, key: &ModuleKey) -> Option<&Arc<dyn ExecTier>> {
        self.prepared.get(key)
    }

    /// Insert a downloaded blob, evicting least-recently-used entries until
    /// it fits. Returns `false` (and caches nothing) if the blob alone
    /// exceeds capacity — the device executes it streaming-style without
    /// retention. Admitted blobs are verified and prepared exactly once,
    /// here; blobs that fail verification stay resident (integrity audits
    /// want to see them) but have no prepared form.
    pub fn insert(&mut self, key: ModuleKey, blob: ModuleBlob) -> bool {
        let size = blob.len() as u64;
        self.stats.bytes_fetched += size;
        if size > self.capacity {
            return false;
        }
        if let Some(old) = self.blobs.remove(&key) {
            self.resident -= old.len() as u64;
            self.order.retain(|k| k != &key);
            self.prepared.remove(&key);
        }
        while self.resident + size > self.capacity {
            let victim = self.order.remove(0);
            let evicted = self
                .blobs
                .remove(&victim)
                .expect("order and map out of sync");
            self.prepared.remove(&victim);
            self.resident -= evicted.len() as u64;
            self.stats.evictions += 1;
        }
        match tvm::tier::admit(&blob, self.tier_policy) {
            Ok(tier) => {
                self.stats.prepares += 1;
                self.obs.incr("tvm.prepares");
                self.obs
                    .observe("tvm.prepare_us", tier.modeled_prepare_us());
                let regions = tier.regions_translated() as u64;
                if regions > 0 {
                    self.obs.add("tvm.tier2_regions", regions);
                }
                self.prepared.insert(key.clone(), tier);
            }
            Err(_) => {
                self.obs.incr("tvm.prepare_failures");
            }
        }
        self.resident += size;
        self.order.push(key.clone());
        self.blobs.insert(key, blob);
        self.stats.peak_resident = self.stats.peak_resident.max(self.resident);
        true
    }

    /// Explicitly release a module ("download and release code modules
    /// on-demand").
    pub fn release(&mut self, key: &ModuleKey) -> bool {
        if let Some(b) = self.blobs.remove(key) {
            self.resident -= b.len() as u64;
            self.order.retain(|k| k != key);
            self.prepared.remove(key);
            true
        } else {
            false
        }
    }

    fn touch(&mut self, key: &ModuleKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tvm::asm::assemble;

    fn blob_of_size(name: &str, approx: usize) -> ModuleBlob {
        // Pad with push/pop pairs (9+1 bytes each) to reach ~approx bytes.
        let pairs = approx / 10;
        let mut src = format!(".module {name} 1 0 0\n.func main 0\n");
        for _ in 0..pairs {
            src.push_str(" push 1\n pop\n");
        }
        src.push_str(" halt\n");
        assemble(&src).unwrap().to_blob()
    }

    #[test]
    fn library_publish_fetch_latest() {
        let mut lib = ModuleLibrary::new();
        lib.publish(ModuleKey::new("FFT", 1), blob_of_size("FFT", 100));
        lib.publish(ModuleKey::new("FFT", 3), blob_of_size("FFT", 100));
        lib.publish(ModuleKey::new("Wave", 2), blob_of_size("Wave", 100));
        assert_eq!(lib.latest("FFT"), Some(&ModuleKey::new("FFT", 3)));
        assert!(lib.fetch(&ModuleKey::new("FFT", 1)).is_some());
        assert!(lib.fetch(&ModuleKey::new("FFT", 2)).is_none());
        assert_eq!(lib.len(), 3);
    }

    #[test]
    fn republish_replaces_blob() {
        let mut lib = ModuleLibrary::new();
        let k = ModuleKey::new("M", 1);
        let b1 = blob_of_size("M", 50);
        let b2 = blob_of_size("M", 500);
        lib.publish(k.clone(), b1.clone());
        lib.publish(k.clone(), b2.clone());
        assert_eq!(lib.fetch(&k).unwrap().hash, b2.hash);
        assert_ne!(b1.hash, b2.hash);
    }

    #[test]
    fn cache_hits_and_misses_counted() {
        let mut cache = ModuleCache::new(10_000);
        let k = ModuleKey::new("A", 1);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), blob_of_size("A", 100));
        assert!(cache.get(&k).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let a = blob_of_size("A", 400);
        let b = blob_of_size("B", 400);
        let c = blob_of_size("C", 400);
        let cap = a.len() as u64 + b.len() as u64 + 10; // fits two
        let mut cache = ModuleCache::new(cap);
        cache.insert(ModuleKey::new("A", 1), a);
        cache.insert(ModuleKey::new("B", 1), b);
        // Touch A so B becomes LRU.
        assert!(cache.get(&ModuleKey::new("A", 1)).is_some());
        cache.insert(ModuleKey::new("C", 1), c);
        assert!(cache.contains(&ModuleKey::new("A", 1)));
        assert!(
            !cache.contains(&ModuleKey::new("B", 1)),
            "B should be evicted"
        );
        assert!(cache.contains(&ModuleKey::new("C", 1)));
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn oversized_blob_is_not_cached() {
        let mut cache = ModuleCache::new(100);
        let big = blob_of_size("Big", 5_000);
        assert!(!cache.insert(ModuleKey::new("Big", 1), big.clone()));
        assert!(cache.is_empty());
        // but the download still counted
        assert_eq!(cache.stats().bytes_fetched, big.len() as u64);
    }

    #[test]
    fn resident_bytes_tracked_through_insert_release() {
        let mut cache = ModuleCache::new(100_000);
        let a = blob_of_size("A", 1_000);
        let sz = a.len() as u64;
        cache.insert(ModuleKey::new("A", 1), a);
        assert_eq!(cache.resident_bytes(), sz);
        assert!(cache.release(&ModuleKey::new("A", 1)));
        assert_eq!(cache.resident_bytes(), 0);
        assert!(!cache.release(&ModuleKey::new("A", 1)));
        assert_eq!(cache.stats().peak_resident, sz);
    }

    #[test]
    fn admission_prepares_exactly_once() {
        let mut cache = ModuleCache::new(100_000);
        let k = ModuleKey::new("A", 1);
        let blob = blob_of_size("A", 200);
        cache.insert(k.clone(), blob.clone());
        assert_eq!(cache.stats().prepares, 1);
        let p1 = cache.get_prepared(&k).expect("prepared at admission");
        let p2 = cache.get_prepared(&k).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "same prepared instance reused");
        assert_eq!(p1.source_hash(), blob.hash);
        let s = cache.stats();
        assert_eq!((s.prepared_hits, s.prepared_misses), (2, 0));
        // Lookups of non-resident keys meter as prepared misses.
        assert!(cache.get_prepared(&ModuleKey::new("B", 1)).is_none());
        assert_eq!(cache.stats().prepared_misses, 1);
    }

    #[test]
    fn corrupt_blob_admitted_without_prepared_form() {
        let mut cache = ModuleCache::new(100_000);
        let mut blob = blob_of_size("A", 200);
        let last = blob.bytes.len() - 1;
        blob.bytes[last] ^= 0xff; // break content integrity
        let k = ModuleKey::new("A", 1);
        assert!(cache.insert(k.clone(), blob));
        assert!(cache.contains(&k), "corrupt blob stays resident for audits");
        assert!(cache.get_prepared(&k).is_none());
        assert_eq!(cache.stats().prepares, 0);
        assert_eq!(cache.stats().prepared_misses, 1);
    }

    #[test]
    fn eviction_and_release_drop_prepared_forms() {
        let a = blob_of_size("A", 400);
        let b = blob_of_size("B", 400);
        let cap = a.len() as u64 + 10; // fits one
        let mut cache = ModuleCache::new(cap);
        let ka = ModuleKey::new("A", 1);
        let kb = ModuleKey::new("B", 1);
        cache.insert(ka.clone(), a);
        cache.insert(kb.clone(), b);
        assert!(cache.prepared_of(&ka).is_none(), "evicted with its blob");
        assert!(cache.prepared_of(&kb).is_some());
        cache.release(&kb);
        assert!(cache.prepared_of(&kb).is_none());
    }

    #[test]
    fn auto_admission_selects_tier_per_module() {
        let mut cache = ModuleCache::new(100_000);
        cache.insert(ModuleKey::new("A", 1), blob_of_size("A", 100));
        let straight = cache.prepared_of(&ModuleKey::new("A", 1)).unwrap();
        assert_eq!(straight.tier_name(), "prepared");
        assert_eq!(straight.regions_translated(), 0);
        let src = "\
.module Loop 1 0 1
.func main 1
 push 4
 store 0
loop:
 load 0
 outpush 0
 load 0
 push 1
 sub
 store 0
 load 0
 jnz loop
 halt
";
        let blob = assemble(src).unwrap().to_blob();
        cache.insert(ModuleKey::new("Loop", 1), blob);
        let tier = cache.prepared_of(&ModuleKey::new("Loop", 1)).unwrap();
        assert_eq!(tier.tier_name(), "tier2");
        assert_eq!(tier.regions_translated(), 1);
        // An explicit policy overrides Auto for subsequent admissions.
        cache.set_tier_policy(TierPolicy::Legacy);
        cache.insert(ModuleKey::new("B", 1), blob_of_size("B", 100));
        let legacy = cache.prepared_of(&ModuleKey::new("B", 1)).unwrap();
        assert_eq!(legacy.tier_name(), "legacy");
    }

    #[test]
    fn reinsert_same_key_does_not_double_count() {
        let mut cache = ModuleCache::new(100_000);
        let a = blob_of_size("A", 1_000);
        let sz = a.len() as u64;
        cache.insert(ModuleKey::new("A", 1), a.clone());
        cache.insert(ModuleKey::new("A", 1), a);
        assert_eq!(cache.resident_bytes(), sz);
        assert_eq!(cache.len(), 1);
    }
}
