//! The Triana data model: typed tokens flowing along cables.
//!
//! §3.1: Triana "provides a set of built-in data types that can be used to
//! connect different Peer services – and undertake type checking on their
//! connectivity". The variants below cover the paper's domains: signal
//! analysis (Figure 1/2), galaxy particle snapshots (Case 1), gravitational
//! wave chunks (Case 2), and tabular database records (Case 3).

use std::fmt;

/// A 3-D particle snapshot (Case 1: "binary data files that represent a
/// series of particles in three dimensions, along with their associated
/// properties as a snap shot in time").
#[derive(Clone, Debug, PartialEq)]
pub struct ParticleSet {
    /// Snapshot time in simulation units.
    pub time: f64,
    /// Positions, xyz per particle.
    pub pos: Vec<[f64; 3]>,
    /// Particle masses.
    pub mass: Vec<f64>,
    /// SPH smoothing lengths.
    pub smoothing: Vec<f64>,
}

impl ParticleSet {
    pub fn len(&self) -> usize {
        self.pos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pos.is_empty()
    }

    /// Internal consistency: all per-particle arrays the same length.
    pub fn is_consistent(&self) -> bool {
        self.mass.len() == self.pos.len() && self.smoothing.len() == self.pos.len()
    }
}

/// A rectangular numeric table with named columns (Case 3).
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    pub fn new(columns: Vec<String>) -> Self {
        Table {
            columns,
            rows: Vec::new(),
        }
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// All rows have the declared width.
    pub fn is_rectangular(&self) -> bool {
        self.rows.iter().all(|r| r.len() == self.columns.len())
    }
}

/// A data token.
#[derive(Clone, Debug, PartialEq)]
pub enum TrianaData {
    /// A single number (parameters, statistics, control values).
    Scalar(f64),
    /// Free text (status, queries).
    Text(String),
    /// A uniformly sampled time series.
    SampleSet { rate_hz: f64, samples: Vec<f64> },
    /// A one-sided power spectrum with bin width `df_hz`.
    Spectrum { df_hz: f64, power: Vec<f64> },
    /// A complex spectrum (interleaved-free: parallel re/im arrays).
    ComplexSpectrum {
        df_hz: f64,
        re: Vec<f64>,
        im: Vec<f64>,
    },
    /// A rendered 2-D image (row-major intensity).
    ImageFrame {
        width: u32,
        height: u32,
        pixels: Vec<f64>,
    },
    /// A particle snapshot.
    Particles(ParticleSet),
    /// A numeric table.
    Table(Table),
    /// Raw bytes (module blobs, opaque payloads).
    Bytes(Vec<u8>),
}

/// The type tag of a token.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DataType {
    Scalar,
    Text,
    SampleSet,
    Spectrum,
    ComplexSpectrum,
    ImageFrame,
    Particles,
    Table,
    Bytes,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Scalar => "Scalar",
            DataType::Text => "Text",
            DataType::SampleSet => "SampleSet",
            DataType::Spectrum => "Spectrum",
            DataType::ComplexSpectrum => "ComplexSpectrum",
            DataType::ImageFrame => "ImageFrame",
            DataType::Particles => "Particles",
            DataType::Table => "Table",
            DataType::Bytes => "Bytes",
        };
        f.write_str(s)
    }
}

/// What a unit input port accepts.
#[derive(Clone, Debug, PartialEq)]
pub enum TypeSpec {
    Exact(DataType),
    OneOf(Vec<DataType>),
    Any,
}

impl TypeSpec {
    pub fn accepts(&self, t: DataType) -> bool {
        match self {
            TypeSpec::Exact(e) => *e == t,
            TypeSpec::OneOf(ts) => ts.contains(&t),
            TypeSpec::Any => true,
        }
    }
}

impl fmt::Display for TypeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeSpec::Exact(t) => write!(f, "{t}"),
            TypeSpec::OneOf(ts) => {
                let names: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
                write!(f, "{}", names.join("|"))
            }
            TypeSpec::Any => write!(f, "Any"),
        }
    }
}

impl TrianaData {
    pub fn dtype(&self) -> DataType {
        match self {
            TrianaData::Scalar(_) => DataType::Scalar,
            TrianaData::Text(_) => DataType::Text,
            TrianaData::SampleSet { .. } => DataType::SampleSet,
            TrianaData::Spectrum { .. } => DataType::Spectrum,
            TrianaData::ComplexSpectrum { .. } => DataType::ComplexSpectrum,
            TrianaData::ImageFrame { .. } => DataType::ImageFrame,
            TrianaData::Particles(_) => DataType::Particles,
            TrianaData::Table(_) => DataType::Table,
            TrianaData::Bytes(_) => DataType::Bytes,
        }
    }

    /// Approximate serialized size, used by the network model when a token
    /// crosses peers. Matches the paper's Case 2 arithmetic: samples are
    /// 4-byte values ("stored in 4 bytes").
    pub fn wire_size(&self) -> u64 {
        match self {
            TrianaData::Scalar(_) => 16,
            TrianaData::Text(s) => 16 + s.len() as u64,
            TrianaData::SampleSet { samples, .. } => 24 + 4 * samples.len() as u64,
            TrianaData::Spectrum { power, .. } => 24 + 4 * power.len() as u64,
            TrianaData::ComplexSpectrum { re, im, .. } => 24 + 4 * (re.len() + im.len()) as u64,
            TrianaData::ImageFrame { pixels, .. } => 24 + 4 * pixels.len() as u64,
            // pos(3) + mass + smoothing = 5 floats of 4 bytes per particle
            TrianaData::Particles(p) => 32 + 20 * p.len() as u64,
            TrianaData::Table(t) => {
                let header: u64 = t.columns.iter().map(|c| c.len() as u64 + 4).sum();
                16 + header + (t.n_rows() * t.n_cols()) as u64 * 8
            }
            TrianaData::Bytes(b) => 16 + b.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_tags_match_variants() {
        assert_eq!(TrianaData::Scalar(1.0).dtype(), DataType::Scalar);
        assert_eq!(
            TrianaData::SampleSet {
                rate_hz: 1.0,
                samples: vec![]
            }
            .dtype(),
            DataType::SampleSet
        );
        assert_eq!(TrianaData::Bytes(vec![]).dtype(), DataType::Bytes);
    }

    #[test]
    fn typespec_acceptance() {
        assert!(TypeSpec::Any.accepts(DataType::Table));
        assert!(TypeSpec::Exact(DataType::Scalar).accepts(DataType::Scalar));
        assert!(!TypeSpec::Exact(DataType::Scalar).accepts(DataType::Text));
        let union = TypeSpec::OneOf(vec![DataType::SampleSet, DataType::Spectrum]);
        assert!(union.accepts(DataType::Spectrum));
        assert!(!union.accepts(DataType::Bytes));
    }

    #[test]
    fn case2_chunk_wire_size_matches_paper() {
        // "2,000 samples per second … chunks of 15 minutes … results in a
        // 7.2MB of data (4 x 900 x 2000)".
        let chunk = TrianaData::SampleSet {
            rate_hz: 2_000.0,
            samples: vec![0.0; 900 * 2_000],
        };
        let sz = chunk.wire_size();
        assert!((sz as i64 - 7_200_000).unsigned_abs() < 100, "{sz}");
    }

    #[test]
    fn particle_set_consistency() {
        let ok = ParticleSet {
            time: 0.0,
            pos: vec![[0.0; 3]; 3],
            mass: vec![1.0; 3],
            smoothing: vec![0.1; 3],
        };
        assert!(ok.is_consistent());
        assert_eq!(ok.len(), 3);
        let bad = ParticleSet {
            mass: vec![1.0; 2],
            ..ok.clone()
        };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn table_shape_checks() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.rows.push(vec![1.0, 2.0]);
        assert!(t.is_rectangular());
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.column_index("z"), None);
        t.rows.push(vec![3.0]);
        assert!(!t.is_rectangular());
    }

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = TrianaData::ImageFrame {
            width: 2,
            height: 2,
            pixels: vec![0.0; 4],
        };
        let big = TrianaData::ImageFrame {
            width: 100,
            height: 100,
            pixels: vec![0.0; 10_000],
        };
        assert!(big.wire_size() > small.wire_size() * 100);
    }
}
