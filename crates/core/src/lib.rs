//! `triana-core` — the Triana workflow engine and Consumer Grid runtime.
//!
//! This crate is the paper's primary contribution, reimplemented:
//!
//! * a typed dataflow **data model** ([`data`]) — "a set of built-in data
//!   types that can be used to connect different Peer services – and
//!   undertake type checking on their connectivity" (§3.1);
//! * **units** and the toolbox registry ([`mod@unit`]);
//! * **task graphs** with group units and per-group distribution policies
//!   ([`graph`]) — "the unit of distribution is a group" (§3.3);
//! * a real multi-threaded **local executor** ([`engine`]) so the same
//!   graph that runs distributed also runs (and speeds up) on the host;
//! * on-demand **module management** with content-hashed blobs and an LRU
//!   cache ([`modules`]) — §3.3's dynamic code download;
//! * the **Consumer Grid runtime** ([`grid`]): Triana Services and a
//!   Controller executing groups across simulated volunteer peers under the
//!   `parallel` (farm-out) and `peer-to-peer` (pipeline) policies, with
//!   churn, checkpointing and migration (§3.2–§3.6);
//! * **checkpointing** support ([`checkpoint`]) — "a check-pointing
//!   mechanism may also be employed to migrate computation" (§3.6.2).

pub mod checkpoint;
pub mod data;
pub mod engine;
pub mod graph;
pub mod grid;
pub mod modules;
pub mod rewrite;
pub mod unit;

pub use data::{DataType, ParticleSet, Table, TrianaData, TypeSpec};
pub use engine::{run_graph, run_graph_obs, EngineConfig, RunResult};
pub use graph::{Cable, DistributionPolicy, Group, GroupId, Task, TaskGraph, TaskId};
pub use modules::{ModuleCache, ModuleKey, ModuleLibrary};
pub use rewrite::{annotate, plan_parallel, plan_peer_to_peer, DistributedPlan};
pub use unit::{Params, Unit, UnitError, UnitRegistry};
