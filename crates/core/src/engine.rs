//! The local execution engine ("the Triana engine", §3.1).
//!
//! Runs a validated task graph on the local host, either single-threaded
//! (deterministic reference semantics) or with one thread per task connected
//! by channels — real pipeline/task parallelism on the host, the same
//! dataflow the Consumer Grid distributes across peers. Both modes produce
//! identical results for the same graph and iteration count: units fire
//! once per iteration, consuming one token per input port and producing one
//! token per output port.

use crate::data::TrianaData;
use crate::graph::{GraphError, TaskGraph, TaskId};
use crate::unit::{Unit, UnitError, UnitRegistry};
use crossbeam::channel::{unbounded, Receiver, Sender};
use obs::Obs;
use std::collections::BTreeMap;
use std::fmt;
use std::time::Instant;

/// Engine failure.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    Graph(GraphError),
    Unit {
        task: TaskId,
        error: UnitError,
    },
    /// A worker thread disappeared without reporting (channel torn down).
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Graph(e) => write!(f, "graph error: {e}"),
            EngineError::Unit { task, error } => write!(f, "{task:?}: {error}"),
            EngineError::Internal(m) => write!(f, "engine internal error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<GraphError> for EngineError {
    fn from(e: GraphError) -> Self {
        EngineError::Graph(e)
    }
}

/// Execution configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// How many times source units fire (Figure 2 uses 20 iterations).
    pub iterations: usize,
    /// Thread-per-task pipeline parallelism vs. sequential reference mode.
    pub threaded: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            iterations: 1,
            threaded: true,
        }
    }
}

/// Tokens collected at every unconnected output port, in firing order.
#[derive(Debug, Default)]
pub struct RunResult {
    pub outputs: BTreeMap<(TaskId, usize), Vec<TrianaData>>,
}

impl RunResult {
    /// All tokens from the single unconnected port of the named task.
    pub fn of(&self, graph: &TaskGraph, task_name: &str) -> &[TrianaData] {
        graph
            .task_by_name(task_name)
            .and_then(|t| {
                self.outputs
                    .iter()
                    .find(|((tid, _), _)| *tid == t.id)
                    .map(|(_, v)| v.as_slice())
            })
            .unwrap_or(&[])
    }

    /// The last token produced at the given collection point.
    pub fn last_of(&self, graph: &TaskGraph, task_name: &str) -> Option<&TrianaData> {
        self.of(graph, task_name).last()
    }
}

/// Validate, type-check, instantiate, and run a graph.
pub fn run_graph(
    graph: &TaskGraph,
    registry: &UnitRegistry,
    config: &EngineConfig,
) -> Result<RunResult, EngineError> {
    run_graph_obs(graph, registry, config, &Obs::disabled())
}

/// [`run_graph`] with observability. With a recording handle the engine
/// counts per-task fires, token traffic and (in sequential mode) cable
/// queue depths; per-task fire counters are sums, so threaded runs report
/// the same values as sequential ones regardless of interleaving.
pub fn run_graph_obs(
    graph: &TaskGraph,
    registry: &UnitRegistry,
    config: &EngineConfig,
    observer: &Obs,
) -> Result<RunResult, EngineError> {
    graph.validate()?;
    graph.typecheck(registry)?;
    let mut units: Vec<Box<dyn Unit>> = Vec::with_capacity(graph.tasks.len());
    for t in &graph.tasks {
        units.push(
            registry
                .create(&t.unit_type, &t.params)
                .map_err(|error| EngineError::Unit { task: t.id, error })?,
        );
    }
    observer.incr("engine.runs");
    observer.add("engine.iterations", config.iterations as u64);
    observer.gauge("engine.tasks", graph.tasks.len() as i64);
    observer.gauge("engine.cables", graph.cables.len() as i64);
    let started = Instant::now();
    let result = if config.threaded {
        run_threaded(graph, units, config.iterations, observer)
    } else {
        run_sequential(graph, units, config.iterations, observer)
    };
    // Wall-clock duration is host-dependent: volatile section only.
    observer.volatile("engine.wall_secs", started.elapsed().as_secs_f64());
    result
}

/// Flush per-task fire counts accumulated locally (so the disabled path
/// never formats counter names and the enabled path locks once per task,
/// not once per fire).
fn flush_fires(observer: &Obs, graph: &TaskGraph, fires: &[u64]) {
    if !observer.is_enabled() {
        return;
    }
    for (task, &n) in graph.tasks.iter().zip(fires) {
        if n > 0 {
            observer.add(&format!("engine.fire.{}", task.name), n);
        }
    }
}

fn run_sequential(
    graph: &TaskGraph,
    mut units: Vec<Box<dyn Unit>>,
    iterations: usize,
    observer: &Obs,
) -> Result<RunResult, EngineError> {
    let order = graph.topo_order()?;
    let mut result = RunResult::default();
    let collect_ports = graph.unconnected_outputs();
    let mut fires = vec![0u64; graph.tasks.len()];
    let mut tokens_emitted = 0u64;
    // One FIFO per cable.
    let mut queues: BTreeMap<(TaskId, usize, TaskId, usize), Vec<TrianaData>> = BTreeMap::new();
    for _ in 0..iterations {
        for &tid in &order {
            let task = graph.task(tid)?;
            let mut inputs = Vec::with_capacity(task.n_in);
            for c in graph.in_cables(tid) {
                let q = queues
                    .get_mut(&(c.from.0, c.from.1, c.to.0, c.to.1))
                    .ok_or_else(|| EngineError::Internal("missing queue".into()))?;
                inputs.push(q.remove(0));
            }
            let outputs = units[tid.0 as usize]
                .process(inputs)
                .map_err(|error| EngineError::Unit { task: tid, error })?;
            fires[tid.0 as usize] += 1;
            if outputs.len() != task.n_out {
                return Err(EngineError::Unit {
                    task: tid,
                    error: UnitError::ArityMismatch {
                        expected: task.n_out,
                        got: outputs.len(),
                    },
                });
            }
            for (port, token) in outputs.into_iter().enumerate() {
                tokens_emitted += 1;
                let consumers: Vec<_> = graph
                    .out_cables(tid)
                    .into_iter()
                    .filter(|c| c.from.1 == port)
                    .collect();
                if consumers.is_empty() {
                    result.outputs.entry((tid, port)).or_default().push(token);
                } else {
                    for c in consumers {
                        let q = queues
                            .entry((c.from.0, c.from.1, c.to.0, c.to.1))
                            .or_default();
                        q.push(token.clone());
                        if observer.is_enabled() {
                            // Depth at enqueue time; only meaningful (and
                            // deterministic) in sequential mode.
                            observer.observe("engine.queue_depth", q.len() as u64);
                            observer.gauge_max("engine.queue_peak", q.len() as i64);
                        }
                    }
                }
            }
        }
    }
    for (t, p) in collect_ports {
        result.outputs.entry((t, p)).or_default();
    }
    flush_fires(observer, graph, &fires);
    observer.add("engine.tokens_emitted", tokens_emitted);
    Ok(result)
}

fn run_threaded(
    graph: &TaskGraph,
    units: Vec<Box<dyn Unit>>,
    iterations: usize,
    observer: &Obs,
) -> Result<RunResult, EngineError> {
    // Channel per cable; collector channel per unconnected output port.
    let mut senders: BTreeMap<TaskId, Vec<(usize, Sender<TrianaData>)>> = BTreeMap::new();
    let mut receivers: BTreeMap<TaskId, Vec<(usize, Receiver<TrianaData>)>> = BTreeMap::new();
    for c in &graph.cables {
        let (tx, rx) = unbounded();
        senders.entry(c.from.0).or_default().push((c.from.1, tx));
        receivers.entry(c.to.0).or_default().push((c.to.1, rx));
    }
    let mut collectors: Vec<((TaskId, usize), Receiver<TrianaData>)> = Vec::new();
    for (t, p) in graph.unconnected_outputs() {
        let (tx, rx) = unbounded();
        senders.entry(t).or_default().push((p, tx));
        collectors.push(((t, p), rx));
    }
    let (err_tx, err_rx) = unbounded::<EngineError>();

    let mut result = RunResult::default();
    std::thread::scope(|scope| {
        for (tid, mut unit) in graph.tasks.iter().map(|t| t.id).zip(units) {
            let task = graph.task(tid).expect("validated");
            let n_out = task.n_out;
            let task_name = task.name.as_str();
            let mut my_rx = receivers.remove(&tid).unwrap_or_default();
            my_rx.sort_by_key(|(p, _)| *p);
            let my_tx = senders.remove(&tid).unwrap_or_default();
            let err_tx = err_tx.clone();
            let observer = observer.clone();
            scope.spawn(move || {
                // Count locally, publish once at thread exit: totals are
                // interleaving-independent sums, so threaded runs match
                // sequential ones.
                let mut fired = 0u64;
                let mut emitted = 0u64;
                let flush = |fired: u64, emitted: u64| {
                    if observer.is_enabled() && fired > 0 {
                        observer.add(&format!("engine.fire.{task_name}"), fired);
                        observer.add("engine.tokens_emitted", emitted);
                    }
                };
                for _iter in 0..iterations {
                    let mut inputs = Vec::with_capacity(my_rx.len());
                    for (_, rx) in &my_rx {
                        match rx.recv() {
                            Ok(tok) => inputs.push(tok),
                            // Upstream stopped early (error path): stop too.
                            Err(_) => {
                                flush(fired, emitted);
                                return;
                            }
                        }
                    }
                    let outputs = match unit.process(inputs) {
                        Ok(o) => o,
                        Err(error) => {
                            let _ = err_tx.send(EngineError::Unit { task: tid, error });
                            flush(fired, emitted);
                            return;
                        }
                    };
                    fired += 1;
                    if outputs.len() != n_out {
                        let _ = err_tx.send(EngineError::Unit {
                            task: tid,
                            error: UnitError::ArityMismatch {
                                expected: n_out,
                                got: outputs.len(),
                            },
                        });
                        flush(fired, emitted);
                        return;
                    }
                    for (port, token) in outputs.into_iter().enumerate() {
                        emitted += 1;
                        for (p, tx) in &my_tx {
                            if *p == port {
                                // A closed downstream means an error was
                                // reported there; just stop quietly.
                                if tx.send(token.clone()).is_err() {
                                    flush(fired, emitted);
                                    return;
                                }
                            }
                        }
                    }
                }
                flush(fired, emitted);
            });
        }
        drop(err_tx);
        // Drain collectors on this thread while workers run.
        for ((t, p), rx) in collectors {
            let bucket = result.outputs.entry((t, p)).or_default();
            while let Ok(tok) = rx.recv() {
                bucket.push(tok);
            }
        }
    });
    if let Ok(e) = err_rx.try_recv() {
        return Err(e);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::test_units::test_registry;
    use crate::unit::Params;

    fn diamond() -> (TaskGraph, UnitRegistry) {
        let reg = test_registry();
        let mut g = TaskGraph::new("diamond");
        let c = g.add_task(&reg, "Counter", "c", Params::new()).unwrap();
        let s1 = g
            .add_task(
                &reg,
                "Scale",
                "s1",
                Params::from([("k".to_string(), "2".to_string())]),
            )
            .unwrap();
        let s2 = g
            .add_task(
                &reg,
                "Scale",
                "s2",
                Params::from([("k".to_string(), "10".to_string())]),
            )
            .unwrap();
        let add = g.add_task(&reg, "Add", "add", Params::new()).unwrap();
        g.connect(c, 0, s1, 0).unwrap();
        g.connect(c, 0, s2, 0).unwrap();
        g.connect(s1, 0, add, 0).unwrap();
        g.connect(s2, 0, add, 1).unwrap();
        (g, reg)
    }

    fn scalars(tokens: &[TrianaData]) -> Vec<f64> {
        tokens
            .iter()
            .map(|t| match t {
                TrianaData::Scalar(x) => *x,
                other => panic!("expected scalar, got {other:?}"),
            })
            .collect()
    }

    #[test]
    fn sequential_diamond_twelve_x() {
        let (g, reg) = diamond();
        let r = run_graph(
            &g,
            &reg,
            &EngineConfig {
                iterations: 5,
                threaded: false,
            },
        )
        .unwrap();
        // add = 2*i + 10*i = 12*i
        assert_eq!(scalars(r.of(&g, "add")), vec![0.0, 12.0, 24.0, 36.0, 48.0]);
    }

    #[test]
    fn threaded_matches_sequential() {
        let (g, reg) = diamond();
        let seq = run_graph(
            &g,
            &reg,
            &EngineConfig {
                iterations: 20,
                threaded: false,
            },
        )
        .unwrap();
        let par = run_graph(
            &g,
            &reg,
            &EngineConfig {
                iterations: 20,
                threaded: true,
            },
        )
        .unwrap();
        assert_eq!(seq.outputs, par.outputs);
    }

    #[test]
    fn fanout_clones_tokens() {
        let reg = test_registry();
        let mut g = TaskGraph::new("fan");
        let c = g.add_task(&reg, "Counter", "c", Params::new()).unwrap();
        let a = g
            .add_task(
                &reg,
                "Scale",
                "a",
                Params::from([("k".to_string(), "1".to_string())]),
            )
            .unwrap();
        let b = g
            .add_task(
                &reg,
                "Scale",
                "b",
                Params::from([("k".to_string(), "-1".to_string())]),
            )
            .unwrap();
        g.connect(c, 0, a, 0).unwrap();
        g.connect(c, 0, b, 0).unwrap();
        let r = run_graph(
            &g,
            &reg,
            &EngineConfig {
                iterations: 3,
                threaded: true,
            },
        )
        .unwrap();
        assert_eq!(scalars(r.of(&g, "a")), vec![0.0, 1.0, 2.0]);
        assert_eq!(scalars(r.of(&g, "b")), vec![0.0, -1.0, -2.0]);
    }

    #[test]
    fn unit_error_surfaces_with_task_id() {
        let reg = test_registry();
        let mut g = TaskGraph::new("err");
        // Add expects two scalars; wire only... actually wire both from one
        // counter but register a failing unit instead.
        let mut reg2 = reg.clone();
        reg2.register("Fail", |_p| {
            struct F;
            impl Unit for F {
                fn type_name(&self) -> &str {
                    "Fail"
                }
                fn input_types(&self) -> Vec<crate::data::TypeSpec> {
                    vec![crate::data::TypeSpec::Any]
                }
                fn output_types(&self) -> Vec<crate::data::DataType> {
                    vec![crate::data::DataType::Scalar]
                }
                fn process(&mut self, _i: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
                    Err(UnitError::Runtime("boom".into()))
                }
            }
            Ok(Box::new(F))
        });
        let c = g.add_task(&reg2, "Counter", "c", Params::new()).unwrap();
        let f = g.add_task(&reg2, "Fail", "f", Params::new()).unwrap();
        g.connect(c, 0, f, 0).unwrap();
        for threaded in [false, true] {
            let e = run_graph(
                &g,
                &reg2,
                &EngineConfig {
                    iterations: 2,
                    threaded,
                },
            )
            .unwrap_err();
            match e {
                EngineError::Unit { task, error } => {
                    assert_eq!(task, f);
                    assert_eq!(error, UnitError::Runtime("boom".into()));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn invalid_graph_rejected_before_running() {
        let reg = test_registry();
        let mut g = TaskGraph::new("bad");
        g.add_task(&reg, "Scale", "s", Params::new()).unwrap();
        assert!(matches!(
            run_graph(&g, &reg, &EngineConfig::default()),
            Err(EngineError::Graph(GraphError::InputUnconnected { .. }))
        ));
    }

    #[test]
    fn zero_iterations_runs_nothing() {
        let (g, reg) = diamond();
        let r = run_graph(
            &g,
            &reg,
            &EngineConfig {
                iterations: 0,
                threaded: true,
            },
        )
        .unwrap();
        assert!(r.of(&g, "add").is_empty());
    }

    #[test]
    fn stateful_units_carry_state_across_iterations() {
        // Counter's value increments per iteration — verified above; also
        // confirm sequential mode resets nothing between iterations.
        let reg = test_registry();
        let mut g = TaskGraph::new("count");
        g.add_task(&reg, "Counter", "c", Params::new()).unwrap();
        let r = run_graph(
            &g,
            &reg,
            &EngineConfig {
                iterations: 4,
                threaded: false,
            },
        )
        .unwrap();
        assert_eq!(scalars(r.of(&g, "c")), vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn obs_counts_fires_identically_in_both_modes() {
        let count = |threaded: bool| {
            let (g, reg) = diamond();
            let observer = Obs::enabled();
            run_graph_obs(
                &g,
                &reg,
                &EngineConfig {
                    iterations: 7,
                    threaded,
                },
                &observer,
            )
            .unwrap();
            let r = observer.registry().unwrap().clone();
            (
                r.counter_value("engine.fire.c"),
                r.counter_value("engine.fire.add"),
                r.counter_value("engine.tokens_emitted"),
            )
        };
        let seq = count(false);
        let par = count(true);
        assert_eq!(seq, (7, 7, 28));
        assert_eq!(seq, par);
    }

    #[test]
    fn obs_queue_depth_recorded_sequentially() {
        let (g, reg) = diamond();
        let observer = Obs::enabled();
        run_graph_obs(
            &g,
            &reg,
            &EngineConfig {
                iterations: 3,
                threaded: false,
            },
            &observer,
        )
        .unwrap();
        let r = observer.registry().unwrap();
        assert_eq!(r.gauge_value("engine.queue_peak"), Some(1));
        assert_eq!(r.counter_value("engine.runs"), 1);
        assert_eq!(r.counter_value("engine.iterations"), 3);
    }

    #[test]
    fn result_lookup_helpers() {
        let (g, reg) = diamond();
        let r = run_graph(
            &g,
            &reg,
            &EngineConfig {
                iterations: 2,
                threaded: false,
            },
        )
        .unwrap();
        assert_eq!(r.last_of(&g, "add"), Some(&TrianaData::Scalar(12.0)));
        assert!(r.of(&g, "missing").is_empty());
        assert_eq!(r.last_of(&g, "missing"), None);
    }
}
