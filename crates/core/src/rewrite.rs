//! Distribution planning: re-wiring a group for execution on the grid.
//!
//! §3.3: "Control units reroute input data and dynamically re-wire the task
//! graph to create a distributed version that is annotated with the
//! particular resources the particular groups will run on and the specific
//! data channels that are used for the communication." §3.4: "each group
//! input and output connection is uniquely labelled by the local service".
//!
//! [`plan_parallel`] and [`plan_peer_to_peer`] implement the two control
//! units: they take a validated graph, a group, and a set of candidate
//! peers, and produce a [`DistributedPlan`] — clone/stage assignments plus
//! uniquely-named channels. [`annotate`] bakes a plan back into the task
//! graph as parameters, so the "distributed version" round-trips through
//! the XML dialect exactly as the paper describes. The glue functions turn
//! a plan into the farm jobs / pipeline stages the grid schedulers consume.

use crate::data::TrianaData;
use crate::graph::{Cable, DistributionPolicy, GraphError, GroupId, TaskGraph, TaskId};
use crate::grid::farm::JobSpec;
use crate::unit::UnitRegistry;
use p2p::PeerId;
use std::collections::HashSet;

/// One placement decision.
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// Clone index (parallel) or stage index (peer-to-peer).
    pub index: usize,
    /// The member tasks that run at this placement.
    pub tasks: Vec<TaskId>,
    pub peer: PeerId,
}

/// A uniquely-labelled data channel (§3.4's pipe names).
#[derive(Clone, Debug, PartialEq)]
pub struct NamedChannel {
    pub name: String,
    /// The original cable this channel carries.
    pub cable: Cable,
    /// Clone/stage index the channel belongs to.
    pub index: usize,
}

/// The distributed version of one group.
#[derive(Clone, Debug, PartialEq)]
pub struct DistributedPlan {
    pub group: GroupId,
    pub policy: DistributionPolicy,
    pub assignments: Vec<Assignment>,
    pub channels: Vec<NamedChannel>,
}

/// Planning failure.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanError {
    Graph(GraphError),
    UnknownGroup(GroupId),
    NoPeers,
    /// Peer-to-peer needs one peer per member task.
    NotEnoughPeers {
        needed: usize,
        got: usize,
    },
    /// The group's policy does not match the requested plan.
    PolicyMismatch {
        group: DistributionPolicy,
        requested: DistributionPolicy,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Graph(e) => write!(f, "{e}"),
            PlanError::UnknownGroup(g) => write!(f, "unknown group {g:?}"),
            PlanError::NoPeers => write!(f, "no candidate peers"),
            PlanError::NotEnoughPeers { needed, got } => {
                write!(f, "peer-to-peer needs {needed} peers, got {got}")
            }
            PlanError::PolicyMismatch { group, requested } => {
                write!(f, "group policy is {group:?}, requested {requested:?}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl From<GraphError> for PlanError {
    fn from(e: GraphError) -> Self {
        PlanError::Graph(e)
    }
}

fn channel_name(graph: &TaskGraph, group_name: &str, cable: &Cable, index: usize) -> String {
    let from = &graph.tasks[cable.from.0 .0 as usize].name;
    let to = &graph.tasks[cable.to.0 .0 as usize].name;
    format!(
        "{}.{}[{}].{}:{}-{}:{}",
        graph.name, group_name, index, from, cable.from.1, to, cable.to.1
    )
}

/// The `parallel` control unit: clone the whole group across the peers;
/// boundary cables become per-clone scatter/gather channels.
pub fn plan_parallel(
    graph: &TaskGraph,
    gid: GroupId,
    peers: &[PeerId],
) -> Result<DistributedPlan, PlanError> {
    graph.validate()?;
    let group = graph.group(gid).ok_or(PlanError::UnknownGroup(gid))?;
    if group.policy != DistributionPolicy::Parallel {
        return Err(PlanError::PolicyMismatch {
            group: group.policy,
            requested: DistributionPolicy::Parallel,
        });
    }
    if peers.is_empty() {
        return Err(PlanError::NoPeers);
    }
    let (incoming, outgoing) = graph.group_boundary(gid);
    let mut channels = Vec::new();
    let assignments = peers
        .iter()
        .enumerate()
        .map(|(index, &peer)| {
            for c in incoming.iter().chain(outgoing.iter()) {
                channels.push(NamedChannel {
                    name: channel_name(graph, &group.name, c, index),
                    cable: *c,
                    index,
                });
            }
            Assignment {
                index,
                tasks: group.members.clone(),
                peer,
            }
        })
        .collect();
    Ok(DistributedPlan {
        group: gid,
        policy: DistributionPolicy::Parallel,
        assignments,
        channels,
    })
}

/// The `peer-to-peer` control unit: each member task onto its own peer
/// (in topological order), internal cables become inter-peer channels.
pub fn plan_peer_to_peer(
    graph: &TaskGraph,
    gid: GroupId,
    peers: &[PeerId],
) -> Result<DistributedPlan, PlanError> {
    graph.validate()?;
    let group = graph.group(gid).ok_or(PlanError::UnknownGroup(gid))?;
    if group.policy != DistributionPolicy::PeerToPeer {
        return Err(PlanError::PolicyMismatch {
            group: group.policy,
            requested: DistributionPolicy::PeerToPeer,
        });
    }
    let members: HashSet<TaskId> = group.members.iter().copied().collect();
    if peers.len() < members.len() {
        return Err(PlanError::NotEnoughPeers {
            needed: members.len(),
            got: peers.len(),
        });
    }
    // Stage order: the graph's topological order restricted to members.
    let order: Vec<TaskId> = graph
        .topo_order()?
        .into_iter()
        .filter(|t| members.contains(t))
        .collect();
    let assignments: Vec<Assignment> = order
        .iter()
        .enumerate()
        .map(|(index, &task)| Assignment {
            index,
            tasks: vec![task],
            peer: peers[index],
        })
        .collect();
    let mut channels = Vec::new();
    for (index, c) in graph.group_internal_cables(gid).into_iter().enumerate() {
        channels.push(NamedChannel {
            name: channel_name(graph, &group.name, &c, index),
            cable: c,
            index,
        });
    }
    // Boundary channels carry data in and out of the chain.
    let (incoming, outgoing) = graph.group_boundary(gid);
    for (index, c) in incoming.into_iter().chain(outgoing).enumerate() {
        channels.push(NamedChannel {
            name: channel_name(graph, &group.name, &c, index + 1000),
            cable: c,
            index,
        });
    }
    Ok(DistributedPlan {
        group: gid,
        policy: DistributionPolicy::PeerToPeer,
        assignments,
        channels,
    })
}

/// Bake a plan into the task graph as parameters — the "annotated"
/// distributed version of §3.3, which serializes through the XML dialect.
/// Each member task gets `_peer` (its placement) and each assignment's
/// clone index is recorded for parallel plans.
pub fn annotate(graph: &TaskGraph, plan: &DistributedPlan) -> TaskGraph {
    let mut g = graph.clone();
    for a in &plan.assignments {
        for &t in &a.tasks {
            let task = &mut g.tasks[t.0 as usize];
            match plan.policy {
                DistributionPolicy::PeerToPeer => {
                    task.params
                        .insert("_peer".to_string(), a.peer.0.to_string());
                    task.params
                        .insert("_stage".to_string(), a.index.to_string());
                }
                DistributionPolicy::Parallel => {
                    // Every clone of the member runs somewhere; record the
                    // full placement list once.
                    let entry = task.params.entry("_peers".to_string()).or_default();
                    if !entry.is_empty() {
                        entry.push(',');
                    }
                    entry.push_str(&a.peer.0.to_string());
                }
            }
        }
    }
    g
}

/// Estimate the farm job for executing one whole-group clone on one input
/// token: work is the sum of member unit estimates (each fed the token —
/// an upper-bound approximation documented in DESIGN.md), input/output
/// bytes from the token and the group's boundary arity.
pub fn group_job_spec(
    graph: &TaskGraph,
    registry: &UnitRegistry,
    gid: GroupId,
    token: &TrianaData,
) -> Result<JobSpec, PlanError> {
    let group = graph.group(gid).ok_or(PlanError::UnknownGroup(gid))?;
    let mut work = 0.0;
    for &t in &group.members {
        let task = graph.task(t)?;
        let unit = registry
            .create(&task.unit_type, &task.params)
            .map_err(GraphError::Unit)?;
        let inputs: Vec<TrianaData> = (0..task.n_in.max(1)).map(|_| token.clone()).collect();
        work += unit.work_estimate(&inputs);
    }
    let (incoming, outgoing) = graph.group_boundary(gid);
    Ok(JobSpec {
        work_gigacycles: work,
        input_bytes: token.wire_size() * incoming.len().max(1) as u64,
        output_bytes: token.wire_size() * outgoing.len().max(1) as u64,
        module: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::test_units::test_registry;
    use crate::unit::Params;
    use taskless::build_group_graph;

    /// Helpers building a Counter -> [Scale -> Scale] -> (out) graph.
    mod taskless {
        use super::*;

        pub fn build_group_graph(policy: DistributionPolicy) -> (TaskGraph, GroupId) {
            let reg = test_registry();
            let mut g = TaskGraph::new("job");
            let c = g.add_task(&reg, "Counter", "src", Params::new()).unwrap();
            let s1 = g.add_task(&reg, "Scale", "stage1", Params::new()).unwrap();
            let s2 = g.add_task(&reg, "Scale", "stage2", Params::new()).unwrap();
            let out = g.add_task(&reg, "Scale", "out", Params::new()).unwrap();
            g.connect(c, 0, s1, 0).unwrap();
            g.connect(s1, 0, s2, 0).unwrap();
            g.connect(s2, 0, out, 0).unwrap();
            let gid = g.add_group("grp", vec![s1, s2], policy).unwrap();
            (g, gid)
        }
    }

    #[test]
    fn parallel_plan_clones_group_per_peer() {
        let (g, gid) = build_group_graph(DistributionPolicy::Parallel);
        let peers = [PeerId(3), PeerId(5), PeerId(9)];
        let plan = plan_parallel(&g, gid, &peers).unwrap();
        assert_eq!(plan.assignments.len(), 3);
        for (i, a) in plan.assignments.iter().enumerate() {
            assert_eq!(a.index, i);
            assert_eq!(a.peer, peers[i]);
            assert_eq!(a.tasks.len(), 2, "whole group per clone");
        }
        // One incoming + one outgoing boundary cable per clone.
        assert_eq!(plan.channels.len(), 6);
    }

    #[test]
    fn channel_names_are_unique_and_descriptive() {
        let (g, gid) = build_group_graph(DistributionPolicy::Parallel);
        let plan = plan_parallel(&g, gid, &[PeerId(0), PeerId(1)]).unwrap();
        let names: HashSet<&str> = plan.channels.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names.len(), plan.channels.len(), "unique labels (§3.4)");
        assert!(plan.channels[0].name.contains("job.grp"));
        assert!(plan.channels[0].name.contains("src:0-stage1:0"));
    }

    #[test]
    fn peer_to_peer_plan_one_stage_per_member_in_topo_order() {
        let (g, gid) = build_group_graph(DistributionPolicy::PeerToPeer);
        let peers = [PeerId(7), PeerId(8)];
        let plan = plan_peer_to_peer(&g, gid, &peers).unwrap();
        assert_eq!(plan.assignments.len(), 2);
        let stage_names: Vec<&str> = plan
            .assignments
            .iter()
            .map(|a| g.tasks[a.tasks[0].0 as usize].name.as_str())
            .collect();
        assert_eq!(stage_names, vec!["stage1", "stage2"], "topological stages");
    }

    #[test]
    fn peer_to_peer_needs_enough_peers() {
        let (g, gid) = build_group_graph(DistributionPolicy::PeerToPeer);
        assert_eq!(
            plan_peer_to_peer(&g, gid, &[PeerId(1)]),
            Err(PlanError::NotEnoughPeers { needed: 2, got: 1 })
        );
    }

    #[test]
    fn policy_mismatch_rejected() {
        let (g, gid) = build_group_graph(DistributionPolicy::Parallel);
        assert!(matches!(
            plan_peer_to_peer(&g, gid, &[PeerId(1), PeerId(2)]),
            Err(PlanError::PolicyMismatch { .. })
        ));
        let (g2, gid2) = build_group_graph(DistributionPolicy::PeerToPeer);
        assert!(matches!(
            plan_parallel(&g2, gid2, &[PeerId(1)]),
            Err(PlanError::PolicyMismatch { .. })
        ));
    }

    #[test]
    fn empty_peer_set_rejected() {
        let (g, gid) = build_group_graph(DistributionPolicy::Parallel);
        assert_eq!(plan_parallel(&g, gid, &[]), Err(PlanError::NoPeers));
    }

    #[test]
    fn annotation_embeds_placements_and_stays_a_valid_graph() {
        let (g, gid) = build_group_graph(DistributionPolicy::PeerToPeer);
        let plan = plan_peer_to_peer(&g, gid, &[PeerId(4), PeerId(6)]).unwrap();
        let annotated = annotate(&g, &plan);
        annotated.validate().unwrap();
        let s1 = annotated.task_by_name("stage1").unwrap();
        assert_eq!(s1.params.get("_peer").map(String::as_str), Some("4"));
        assert_eq!(s1.params.get("_stage").map(String::as_str), Some("0"));
        let s2 = annotated.task_by_name("stage2").unwrap();
        assert_eq!(s2.params.get("_peer").map(String::as_str), Some("6"));
        // The source is not in the group and carries no annotation.
        assert!(!annotated
            .task_by_name("src")
            .unwrap()
            .params
            .contains_key("_peer"));
    }

    #[test]
    fn parallel_annotation_lists_all_clone_peers() {
        let (g, gid) = build_group_graph(DistributionPolicy::Parallel);
        let plan = plan_parallel(&g, gid, &[PeerId(1), PeerId(2), PeerId(3)]).unwrap();
        let annotated = annotate(&g, &plan);
        let s1 = annotated.task_by_name("stage1").unwrap();
        assert_eq!(s1.params.get("_peers").map(String::as_str), Some("1,2,3"));
    }

    #[test]
    fn group_job_spec_scales_with_token_size() {
        let (g, gid) = build_group_graph(DistributionPolicy::Parallel);
        let reg = test_registry();
        let small = group_job_spec(&g, &reg, gid, &TrianaData::Scalar(1.0)).unwrap();
        let big = group_job_spec(
            &g,
            &reg,
            gid,
            &TrianaData::SampleSet {
                rate_hz: 1.0,
                samples: vec![0.0; 100_000],
            },
        )
        .unwrap();
        assert!(big.work_gigacycles > small.work_gigacycles);
        assert!(big.input_bytes > small.input_bytes);
        assert!(small.work_gigacycles > 0.0);
    }
}
