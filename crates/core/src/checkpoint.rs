//! Checkpointing and migration support (§3.6.2: "a check-pointing mechanism
//! may also be employed to migrate computation if necessary").
//!
//! A running job periodically persists a checkpoint of its progress. When
//! its worker churns away, the job migrates to another worker and resumes
//! from the last checkpoint instead of from scratch — the difference
//! measured by experiment E10.

use netsim::Duration;

/// When and how big checkpoints are.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CheckpointPolicy {
    /// Wall interval between checkpoints of a running job.
    pub interval: Duration,
    /// Size of a checkpoint image on the wire (transferred on migration).
    pub image_bytes: u64,
}

impl CheckpointPolicy {
    pub fn every(interval: Duration, image_bytes: u64) -> Self {
        CheckpointPolicy {
            interval,
            image_bytes,
        }
    }
}

/// Progress snapshot of one job.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Checkpoint {
    /// Completed fraction of the job's work, in [0, 1].
    pub fraction: f64,
}

impl Checkpoint {
    /// The checkpointed fraction after `ran_for` out of `total` execution
    /// time under `policy` — progress rounds *down* to the last completed
    /// checkpoint boundary. Without a policy the fraction is always 0
    /// (restart from scratch).
    pub fn after(
        policy: Option<&CheckpointPolicy>,
        ran_for: Duration,
        total: Duration,
    ) -> Checkpoint {
        let Some(policy) = policy else {
            return Checkpoint { fraction: 0.0 };
        };
        if total.is_zero() || policy.interval.is_zero() {
            return Checkpoint { fraction: 0.0 };
        }
        let completed_intervals = ran_for.as_micros() / policy.interval.as_micros();
        let saved = policy.interval.as_micros() * completed_intervals;
        let fraction = (saved as f64 / total.as_micros() as f64).min(1.0);
        Checkpoint { fraction }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_policy_means_restart_from_zero() {
        let cp = Checkpoint::after(None, Duration::from_secs(100), Duration::from_secs(200));
        assert_eq!(cp.fraction, 0.0);
    }

    #[test]
    fn progress_rounds_down_to_checkpoint_boundary() {
        let p = CheckpointPolicy::every(Duration::from_secs(60), 1_000);
        // Ran 150 s of a 600 s job: last checkpoint at 120 s -> 20%.
        let cp = Checkpoint::after(Some(&p), Duration::from_secs(150), Duration::from_secs(600));
        assert!((cp.fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    fn fraction_capped_at_one() {
        let p = CheckpointPolicy::every(Duration::from_secs(10), 0);
        let cp = Checkpoint::after(Some(&p), Duration::from_secs(999), Duration::from_secs(100));
        assert_eq!(cp.fraction, 1.0);
    }

    #[test]
    fn sub_interval_progress_saves_nothing() {
        let p = CheckpointPolicy::every(Duration::from_secs(60), 0);
        let cp = Checkpoint::after(Some(&p), Duration::from_secs(59), Duration::from_secs(600));
        assert_eq!(cp.fraction, 0.0);
    }

    #[test]
    fn zero_total_or_interval_is_safe() {
        let p = CheckpointPolicy::every(Duration::ZERO, 0);
        let cp = Checkpoint::after(Some(&p), Duration::from_secs(10), Duration::from_secs(100));
        assert_eq!(cp.fraction, 0.0);
        let p2 = CheckpointPolicy::every(Duration::from_secs(1), 0);
        let cp2 = Checkpoint::after(Some(&p2), Duration::from_secs(10), Duration::ZERO);
        assert_eq!(cp2.fraction, 0.0);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The fraction always lands in [0, 1], whatever the durations.
        #[test]
        fn fraction_always_in_unit_interval(
            interval_s in 1u64..3_600,
            ran_s in 0u64..1_000_000,
            total_s in 1u64..1_000_000,
        ) {
            let p = CheckpointPolicy::every(Duration::from_secs(interval_s), 1_000);
            let cp = Checkpoint::after(
                Some(&p),
                Duration::from_secs(ran_s),
                Duration::from_secs(total_s),
            );
            prop_assert!((0.0..=1.0).contains(&cp.fraction), "fraction {}", cp.fraction);
        }

        /// Progress rounds down to the last completed interval boundary:
        /// the saved fraction equals floor(ran / interval) * interval over
        /// the total, capped at 1.
        #[test]
        fn fraction_rounds_down_to_boundary(
            interval_s in 1u64..3_600,
            ran_s in 0u64..1_000_000,
            total_s in 1u64..1_000_000,
        ) {
            let p = CheckpointPolicy::every(Duration::from_secs(interval_s), 1_000);
            let cp = Checkpoint::after(
                Some(&p),
                Duration::from_secs(ran_s),
                Duration::from_secs(total_s),
            );
            let boundaries = ran_s / interval_s;
            let expect = ((boundaries * interval_s) as f64 / total_s as f64).min(1.0);
            prop_assert!(
                (cp.fraction - expect).abs() < 1e-12,
                "fraction {} expected {expect}",
                cp.fraction
            );
            // Running longer never checkpoints less: one more interval of
            // progress rounds down to a boundary at least as far along.
            let later = Checkpoint::after(
                Some(&p),
                Duration::from_secs(ran_s + interval_s),
                Duration::from_secs(total_s),
            );
            prop_assert!(later.fraction >= cp.fraction);
        }

        /// Without a policy the job always restarts from scratch.
        #[test]
        fn no_policy_always_restarts(
            ran_s in 0u64..1_000_000,
            total_s in 0u64..1_000_000,
        ) {
            let cp = Checkpoint::after(
                None,
                Duration::from_secs(ran_s),
                Duration::from_secs(total_s),
            );
            prop_assert_eq!(cp.fraction, 0.0);
        }
    }
}
