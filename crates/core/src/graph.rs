//! Task graphs: tasks, cables, and group units with distribution policies.
//!
//! §3.3: "Group units are aggregate tools which can contain many
//! interconnected units … Tools have to be grouped in order to be
//! distributed … Each group has a distribution policy which is, in fact,
//! implemented as a Triana unit." Two policies exist in the paper and here:
//! `Parallel` ("a farming out mechanism and generally involves no
//! communication between hosts") and `PeerToPeer` ("distributing the group
//! vertically i.e. each unit in the group is distributed onto a separate
//! resource and data is passed between them").

use crate::unit::{Params, UnitError, UnitRegistry};
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// Index of a task within its graph.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Index of a group within its graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GroupId(pub u32);

/// One unit instantiation in the graph.
#[derive(Clone, Debug, PartialEq)]
pub struct Task {
    pub id: TaskId,
    /// Unique instance name (used for pipe naming, §3.4).
    pub name: String,
    /// Toolbox type name.
    pub unit_type: String,
    pub params: Params,
    pub n_in: usize,
    pub n_out: usize,
}

/// A dataflow connection between an output port and an input port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cable {
    pub from: (TaskId, usize),
    pub to: (TaskId, usize),
}

/// How a group is distributed over the Consumer Grid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DistributionPolicy {
    /// Farm whole-group clones across peers; scatter tokens, gather in order.
    Parallel,
    /// Place each member unit on its own peer; tokens stream through.
    PeerToPeer,
}

/// An aggregate of member tasks with a distribution policy (the control
/// unit of §3.3 is the policy value).
#[derive(Clone, Debug, PartialEq)]
pub struct Group {
    pub id: GroupId,
    pub name: String,
    pub members: Vec<TaskId>,
    pub policy: DistributionPolicy,
}

/// Graph construction / validation failure.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphError {
    DuplicateTaskName(String),
    UnknownTask(TaskId),
    PortOutOfRange {
        task: TaskId,
        port: usize,
        is_input: bool,
    },
    InputAlreadyDriven {
        task: TaskId,
        port: usize,
    },
    InputUnconnected {
        task: TaskId,
        port: usize,
    },
    Cycle,
    GroupMemberMissing {
        group: String,
        task: TaskId,
    },
    OverlappingGroups {
        task: TaskId,
    },
    EmptyGroup(String),
    Unit(UnitError),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use GraphError::*;
        match self {
            DuplicateTaskName(n) => write!(f, "duplicate task name `{n}`"),
            UnknownTask(t) => write!(f, "unknown task {t:?}"),
            PortOutOfRange {
                task,
                port,
                is_input,
            } => write!(
                f,
                "{} port {port} out of range on {task:?}",
                if *is_input { "input" } else { "output" }
            ),
            InputAlreadyDriven { task, port } => {
                write!(f, "input {port} of {task:?} already has a driver")
            }
            InputUnconnected { task, port } => {
                write!(f, "input {port} of {task:?} is unconnected")
            }
            Cycle => write!(f, "task graph contains a cycle"),
            GroupMemberMissing { group, task } => {
                write!(f, "group `{group}` references missing {task:?}")
            }
            OverlappingGroups { task } => write!(f, "{task:?} belongs to two groups"),
            EmptyGroup(n) => write!(f, "group `{n}` has no members"),
            Unit(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<UnitError> for GraphError {
    fn from(e: UnitError) -> Self {
        GraphError::Unit(e)
    }
}

/// A complete Triana workflow description (the XML task graph of
/// Code Segment 1, in memory).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TaskGraph {
    pub name: String,
    pub tasks: Vec<Task>,
    pub cables: Vec<Cable>,
    pub groups: Vec<Group>,
}

impl TaskGraph {
    pub fn new(name: &str) -> Self {
        TaskGraph {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Add a task whose arity is taken from the registry signature.
    pub fn add_task(
        &mut self,
        registry: &UnitRegistry,
        unit_type: &str,
        name: &str,
        params: Params,
    ) -> Result<TaskId, GraphError> {
        let (ins, outs) = registry.signature(unit_type, &params)?;
        self.add_task_raw(unit_type, name, params, ins.len(), outs.len())
    }

    /// Add a task with explicit arity (used by the XML loader, which may
    /// not have the toolbox at hand).
    pub fn add_task_raw(
        &mut self,
        unit_type: &str,
        name: &str,
        params: Params,
        n_in: usize,
        n_out: usize,
    ) -> Result<TaskId, GraphError> {
        if self.tasks.iter().any(|t| t.name == name) {
            return Err(GraphError::DuplicateTaskName(name.to_string()));
        }
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task {
            id,
            name: name.to_string(),
            unit_type: unit_type.to_string(),
            params,
            n_in,
            n_out,
        });
        Ok(id)
    }

    pub fn task(&self, id: TaskId) -> Result<&Task, GraphError> {
        self.tasks
            .get(id.0 as usize)
            .ok_or(GraphError::UnknownTask(id))
    }

    pub fn task_by_name(&self, name: &str) -> Option<&Task> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Connect an output port to an input port (one driver per input).
    pub fn connect(
        &mut self,
        from: TaskId,
        from_port: usize,
        to: TaskId,
        to_port: usize,
    ) -> Result<(), GraphError> {
        let ft = self.task(from)?;
        if from_port >= ft.n_out {
            return Err(GraphError::PortOutOfRange {
                task: from,
                port: from_port,
                is_input: false,
            });
        }
        let tt = self.task(to)?;
        if to_port >= tt.n_in {
            return Err(GraphError::PortOutOfRange {
                task: to,
                port: to_port,
                is_input: true,
            });
        }
        if self.cables.iter().any(|c| c.to == (to, to_port)) {
            return Err(GraphError::InputAlreadyDriven {
                task: to,
                port: to_port,
            });
        }
        self.cables.push(Cable {
            from: (from, from_port),
            to: (to, to_port),
        });
        Ok(())
    }

    /// Declare a group over member tasks.
    pub fn add_group(
        &mut self,
        name: &str,
        members: Vec<TaskId>,
        policy: DistributionPolicy,
    ) -> Result<GroupId, GraphError> {
        if members.is_empty() {
            return Err(GraphError::EmptyGroup(name.to_string()));
        }
        for &m in &members {
            self.task(m).map_err(|_| GraphError::GroupMemberMissing {
                group: name.to_string(),
                task: m,
            })?;
            if self.groups.iter().any(|g| g.members.contains(&m)) {
                return Err(GraphError::OverlappingGroups { task: m });
            }
        }
        let id = GroupId(self.groups.len() as u32);
        self.groups.push(Group {
            id,
            name: name.to_string(),
            members,
            policy,
        });
        Ok(id)
    }

    pub fn group(&self, id: GroupId) -> Option<&Group> {
        self.groups.get(id.0 as usize)
    }

    /// Cables feeding `task`'s inputs, ordered by input port.
    pub fn in_cables(&self, task: TaskId) -> Vec<Cable> {
        let mut cs: Vec<Cable> = self
            .cables
            .iter()
            .copied()
            .filter(|c| c.to.0 == task)
            .collect();
        cs.sort_by_key(|c| c.to.1);
        cs
    }

    /// Cables leaving `task`'s outputs.
    pub fn out_cables(&self, task: TaskId) -> Vec<Cable> {
        self.cables
            .iter()
            .copied()
            .filter(|c| c.from.0 == task)
            .collect()
    }

    /// Output ports with no cable attached — where run results are
    /// collected (the Grapher role when no explicit sink exists).
    pub fn unconnected_outputs(&self) -> Vec<(TaskId, usize)> {
        let mut out = Vec::new();
        for t in &self.tasks {
            for p in 0..t.n_out {
                if !self.cables.iter().any(|c| c.from == (t.id, p)) {
                    out.push((t.id, p));
                }
            }
        }
        out
    }

    /// Structural validation: every input driven exactly once, all ports in
    /// range (guaranteed by `connect`), acyclicity.
    pub fn validate(&self) -> Result<(), GraphError> {
        for t in &self.tasks {
            for p in 0..t.n_in {
                let drivers = self.cables.iter().filter(|c| c.to == (t.id, p)).count();
                match drivers {
                    0 => {
                        return Err(GraphError::InputUnconnected {
                            task: t.id,
                            port: p,
                        })
                    }
                    1 => {}
                    _ => {
                        return Err(GraphError::InputAlreadyDriven {
                            task: t.id,
                            port: p,
                        })
                    }
                }
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Kahn topological order (deterministic: lowest task id first).
    pub fn topo_order(&self) -> Result<Vec<TaskId>, GraphError> {
        let n = self.tasks.len();
        let mut indeg = vec![0usize; n];
        for c in &self.cables {
            indeg[c.to.0 .0 as usize] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&i) = ready.iter().min() {
            ready.retain(|&x| x != i);
            order.push(TaskId(i as u32));
            for c in &self.cables {
                if c.from.0 .0 as usize == i {
                    let j = c.to.0 .0 as usize;
                    indeg[j] -= 1;
                    if indeg[j] == 0 {
                        ready.push(j);
                    }
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(GraphError::Cycle)
        }
    }

    /// Type-check every cable against the registry signatures (§3.1 type
    /// checking on connectivity).
    pub fn typecheck(&self, registry: &UnitRegistry) -> Result<(), GraphError> {
        let mut sigs = BTreeMap::new();
        for t in &self.tasks {
            let sig = registry.signature(&t.unit_type, &t.params)?;
            sigs.insert(t.id, sig);
        }
        for c in &self.cables {
            let out_ty = sigs[&c.from.0].1[c.from.1];
            let in_spec = &sigs[&c.to.0].0[c.to.1];
            if !in_spec.accepts(out_ty) {
                return Err(GraphError::Unit(UnitError::TypeMismatch {
                    port: c.to.1,
                    expected: in_spec.to_string(),
                    got: out_ty,
                }));
            }
        }
        Ok(())
    }

    /// The cables crossing into and out of a group: `(incoming, outgoing)`.
    /// Incoming cables end on a member but start outside; outgoing start on
    /// a member and end outside. Their order defines the group's external
    /// port numbering (Code Segment 1's `node0` mapping).
    pub fn group_boundary(&self, gid: GroupId) -> (Vec<Cable>, Vec<Cable>) {
        let members: HashSet<TaskId> = match self.group(gid) {
            Some(g) => g.members.iter().copied().collect(),
            None => return (Vec::new(), Vec::new()),
        };
        let incoming = self
            .cables
            .iter()
            .copied()
            .filter(|c| members.contains(&c.to.0) && !members.contains(&c.from.0))
            .collect();
        let outgoing = self
            .cables
            .iter()
            .copied()
            .filter(|c| members.contains(&c.from.0) && !members.contains(&c.to.0))
            .collect();
        (incoming, outgoing)
    }

    /// Cables strictly inside a group.
    pub fn group_internal_cables(&self, gid: GroupId) -> Vec<Cable> {
        let members: HashSet<TaskId> = match self.group(gid) {
            Some(g) => g.members.iter().copied().collect(),
            None => return Vec::new(),
        };
        self.cables
            .iter()
            .copied()
            .filter(|c| members.contains(&c.from.0) && members.contains(&c.to.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::test_units::test_registry;

    /// Counter -> Scale -> (unconnected): the simplest pipeline.
    fn chain() -> (TaskGraph, TaskId, TaskId) {
        let reg = test_registry();
        let mut g = TaskGraph::new("chain");
        let c = g.add_task(&reg, "Counter", "c", Params::new()).unwrap();
        let s = g.add_task(&reg, "Scale", "s", Params::new()).unwrap();
        g.connect(c, 0, s, 0).unwrap();
        (g, c, s)
    }

    #[test]
    fn build_validate_typecheck() {
        let (g, _, s) = chain();
        g.validate().unwrap();
        g.typecheck(&test_registry()).unwrap();
        assert_eq!(g.unconnected_outputs(), vec![(s, 0)]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let reg = test_registry();
        let mut g = TaskGraph::new("x");
        g.add_task(&reg, "Counter", "a", Params::new()).unwrap();
        assert!(matches!(
            g.add_task(&reg, "Counter", "a", Params::new()),
            Err(GraphError::DuplicateTaskName(_))
        ));
    }

    #[test]
    fn port_range_checked_on_connect() {
        let (mut g, c, s) = chain();
        assert!(matches!(
            g.connect(c, 1, s, 0),
            Err(GraphError::PortOutOfRange {
                is_input: false,
                ..
            })
        ));
        assert!(matches!(
            g.connect(c, 0, s, 5),
            Err(GraphError::PortOutOfRange { is_input: true, .. })
        ));
    }

    #[test]
    fn single_driver_per_input() {
        let reg = test_registry();
        let mut g = TaskGraph::new("x");
        let c1 = g.add_task(&reg, "Counter", "c1", Params::new()).unwrap();
        let c2 = g.add_task(&reg, "Counter", "c2", Params::new()).unwrap();
        let s = g.add_task(&reg, "Scale", "s", Params::new()).unwrap();
        g.connect(c1, 0, s, 0).unwrap();
        assert!(matches!(
            g.connect(c2, 0, s, 0),
            Err(GraphError::InputAlreadyDriven { .. })
        ));
    }

    #[test]
    fn unconnected_input_fails_validation() {
        let reg = test_registry();
        let mut g = TaskGraph::new("x");
        g.add_task(&reg, "Scale", "s", Params::new()).unwrap();
        assert!(matches!(
            g.validate(),
            Err(GraphError::InputUnconnected { .. })
        ));
    }

    #[test]
    fn cycles_detected() {
        let reg = test_registry();
        let mut g = TaskGraph::new("cyc");
        let a = g.add_task(&reg, "Scale", "a", Params::new()).unwrap();
        let b = g.add_task(&reg, "Scale", "b", Params::new()).unwrap();
        g.connect(a, 0, b, 0).unwrap();
        g.connect(b, 0, a, 0).unwrap();
        assert_eq!(g.validate(), Err(GraphError::Cycle));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let reg = test_registry();
        let mut g = TaskGraph::new("diamond");
        let c = g.add_task(&reg, "Counter", "c", Params::new()).unwrap();
        let s1 = g.add_task(&reg, "Scale", "s1", Params::new()).unwrap();
        let s2 = g.add_task(&reg, "Scale", "s2", Params::new()).unwrap();
        let add = g.add_task(&reg, "Add", "add", Params::new()).unwrap();
        g.connect(c, 0, s1, 0).unwrap();
        g.connect(c, 0, s2, 0).unwrap();
        g.connect(s1, 0, add, 0).unwrap();
        g.connect(s2, 0, add, 1).unwrap();
        let order = g.topo_order().unwrap();
        let pos = |t: TaskId| order.iter().position(|&x| x == t).unwrap();
        assert!(pos(c) < pos(s1));
        assert!(pos(c) < pos(s2));
        assert!(pos(s1) < pos(add));
        assert!(pos(s2) < pos(add));
    }

    #[test]
    fn typecheck_catches_mismatch() {
        let reg = test_registry();
        let mut g = TaskGraph::new("bad");
        // Manually create a task claiming wrong arity/types: Text into Scale.
        let t = g
            .add_task_raw("TextSource", "txt", Params::new(), 0, 1)
            .unwrap();
        let s = g.add_task(&reg, "Scale", "s", Params::new()).unwrap();
        g.connect(t, 0, s, 0).unwrap();
        // Register a TextSource producing Text.
        let mut reg2 = test_registry();
        reg2.register("TextSource", |_p| {
            use crate::data::{DataType, TrianaData, TypeSpec};
            struct T;
            impl crate::unit::Unit for T {
                fn type_name(&self) -> &str {
                    "TextSource"
                }
                fn input_types(&self) -> Vec<TypeSpec> {
                    vec![]
                }
                fn output_types(&self) -> Vec<DataType> {
                    vec![DataType::Text]
                }
                fn process(
                    &mut self,
                    _i: Vec<TrianaData>,
                ) -> Result<Vec<TrianaData>, crate::unit::UnitError> {
                    Ok(vec![TrianaData::Text("hi".into())])
                }
            }
            Ok(Box::new(T))
        });
        assert!(matches!(
            g.typecheck(&reg2),
            Err(GraphError::Unit(UnitError::TypeMismatch { .. }))
        ));
    }

    #[test]
    fn groups_disjoint_and_nonempty() {
        let (mut g, c, s) = chain();
        g.add_group("g1", vec![s], DistributionPolicy::Parallel)
            .unwrap();
        assert!(matches!(
            g.add_group("g2", vec![s], DistributionPolicy::Parallel),
            Err(GraphError::OverlappingGroups { .. })
        ));
        assert!(matches!(
            g.add_group("g3", vec![], DistributionPolicy::Parallel),
            Err(GraphError::EmptyGroup(_))
        ));
        assert!(matches!(
            g.add_group("g4", vec![TaskId(99)], DistributionPolicy::Parallel),
            Err(GraphError::GroupMemberMissing { .. })
        ));
        let _ = c;
    }

    #[test]
    fn group_boundary_identifies_external_cables() {
        // Wave -> [Gaussian -> FFT] -> Grapher shape, as in Code Segment 1.
        let reg = test_registry();
        let mut g = TaskGraph::new("cs1");
        let w = g.add_task(&reg, "Counter", "wave", Params::new()).unwrap();
        let ga = g.add_task(&reg, "Scale", "gauss", Params::new()).unwrap();
        let ff = g.add_task(&reg, "Scale", "fft", Params::new()).unwrap();
        let gr = g.add_task(&reg, "Scale", "graph", Params::new()).unwrap();
        g.connect(w, 0, ga, 0).unwrap();
        g.connect(ga, 0, ff, 0).unwrap();
        g.connect(ff, 0, gr, 0).unwrap();
        let gid = g
            .add_group("GroupTask", vec![ga, ff], DistributionPolicy::Parallel)
            .unwrap();
        let (inc, out) = g.group_boundary(gid);
        assert_eq!(
            inc,
            vec![Cable {
                from: (w, 0),
                to: (ga, 0)
            }]
        );
        assert_eq!(
            out,
            vec![Cable {
                from: (ff, 0),
                to: (gr, 0)
            }]
        );
        assert_eq!(
            g.group_internal_cables(gid),
            vec![Cable {
                from: (ga, 0),
                to: (ff, 0)
            }]
        );
    }
}
