//! Units (the paper's "programs") and the toolbox registry.
//!
//! §3.1: "There are several hundred units (i.e. programs) and networks of
//! units can be created by graphical connections to construct new and more
//! complex programs." A [`Unit`] declares its port signature, is driven by
//! `process` once per data token set, and may be stateful across iterations
//! (e.g. `AccumStat` averaging spectra). The [`UnitRegistry`] maps unit type
//! names to factories — the local equivalent of the Triana toolbox; modules
//! that are not native are provided as TVM code via the adapter in
//! `triana-toolbox`.

use crate::data::{DataType, TrianaData, TypeSpec};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Unit construction / execution failure.
#[derive(Clone, Debug, PartialEq)]
pub enum UnitError {
    UnknownUnit(String),
    UnknownParam {
        unit: String,
        param: String,
    },
    BadParam {
        param: String,
        message: String,
    },
    ArityMismatch {
        expected: usize,
        got: usize,
    },
    TypeMismatch {
        port: usize,
        expected: String,
        got: DataType,
    },
    Runtime(String),
}

impl fmt::Display for UnitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use UnitError::*;
        match self {
            UnknownUnit(n) => write!(f, "unknown unit type `{n}`"),
            UnknownParam { unit, param } => write!(f, "unit `{unit}` has no param `{param}`"),
            BadParam { param, message } => write!(f, "bad param `{param}`: {message}"),
            ArityMismatch { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
            TypeMismatch {
                port,
                expected,
                got,
            } => write!(f, "port {port}: expected {expected}, got {got}"),
            Runtime(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for UnitError {}

/// String key/value parameters, as carried in the task-graph XML.
pub type Params = BTreeMap<String, String>;

/// Parse helper for unit parameter maps.
pub fn param_f64(params: &Params, key: &str, default: f64) -> Result<f64, UnitError> {
    match params.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| UnitError::BadParam {
            param: key.to_string(),
            message: format!("`{v}` is not a number"),
        }),
    }
}

/// Parse helper for integer parameters.
pub fn param_usize(params: &Params, key: &str, default: usize) -> Result<usize, UnitError> {
    match params.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| UnitError::BadParam {
            param: key.to_string(),
            message: format!("`{v}` is not an integer"),
        }),
    }
}

/// One processing unit instance.
pub trait Unit: Send {
    /// The toolbox type name (e.g. `"Wave"`, `"FFT"`).
    fn type_name(&self) -> &str;

    /// Accepted type per input port; the length is the input arity.
    fn input_types(&self) -> Vec<TypeSpec>;

    /// Produced type per output port; the length is the output arity.
    fn output_types(&self) -> Vec<DataType>;

    /// Consume one token per input port, produce one token per output port.
    /// Source units (no inputs) are called once per iteration.
    fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError>;

    /// Reset internal state (between runs).
    fn reset(&mut self) {}

    /// Estimated work in gigacycles to process `inputs`; drives the
    /// simulated executor's timing. The default charges a nominal cost
    /// proportional to input size.
    fn work_estimate(&self, inputs: &[TrianaData]) -> f64 {
        let bytes: u64 = inputs.iter().map(TrianaData::wire_size).sum();
        // ~10 cycles per input byte as a generic default.
        bytes as f64 * 10.0 / 1e9
    }

    fn is_source(&self) -> bool {
        self.input_types().is_empty()
    }

    fn is_sink(&self) -> bool {
        self.output_types().is_empty()
    }
}

type Factory = dyn Fn(&Params) -> Result<Box<dyn Unit>, UnitError> + Send + Sync;

/// The toolbox: unit type name → factory.
#[derive(Clone, Default)]
pub struct UnitRegistry {
    factories: BTreeMap<String, Arc<Factory>>,
}

impl UnitRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a factory under a type name (replacing any existing one —
    /// later toolboxes may shadow built-ins, like user units in Triana).
    pub fn register<F>(&mut self, name: &str, factory: F)
    where
        F: Fn(&Params) -> Result<Box<dyn Unit>, UnitError> + Send + Sync + 'static,
    {
        self.factories.insert(name.to_string(), Arc::new(factory));
    }

    /// Instantiate a unit.
    pub fn create(&self, name: &str, params: &Params) -> Result<Box<dyn Unit>, UnitError> {
        let f = self
            .factories
            .get(name)
            .ok_or_else(|| UnitError::UnknownUnit(name.to_string()))?;
        f(params)
    }

    /// Port signature of a unit type (by instantiating a probe with the
    /// given params, since arity may depend on them).
    pub fn signature(
        &self,
        name: &str,
        params: &Params,
    ) -> Result<(Vec<TypeSpec>, Vec<DataType>), UnitError> {
        let u = self.create(name, params)?;
        Ok((u.input_types(), u.output_types()))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.factories.len()
    }

    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

#[cfg(test)]
pub(crate) mod test_units {
    use super::*;

    /// Emits consecutive integers 0,1,2,… as scalars.
    pub struct Counter {
        pub next: f64,
    }

    impl Unit for Counter {
        fn type_name(&self) -> &str {
            "Counter"
        }
        fn input_types(&self) -> Vec<TypeSpec> {
            vec![]
        }
        fn output_types(&self) -> Vec<DataType> {
            vec![DataType::Scalar]
        }
        fn process(&mut self, _inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
            let v = self.next;
            self.next += 1.0;
            Ok(vec![TrianaData::Scalar(v)])
        }
        fn reset(&mut self) {
            self.next = 0.0;
        }
    }

    /// Multiplies a scalar by `k`.
    pub struct Scale {
        pub k: f64,
    }

    impl Unit for Scale {
        fn type_name(&self) -> &str {
            "Scale"
        }
        fn input_types(&self) -> Vec<TypeSpec> {
            vec![TypeSpec::Exact(DataType::Scalar)]
        }
        fn output_types(&self) -> Vec<DataType> {
            vec![DataType::Scalar]
        }
        fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
            match inputs.as_slice() {
                [TrianaData::Scalar(x)] => Ok(vec![TrianaData::Scalar(x * self.k)]),
                _ => Err(UnitError::Runtime("expected one scalar".into())),
            }
        }
    }

    /// Adds two scalars.
    pub struct AddU;

    impl Unit for AddU {
        fn type_name(&self) -> &str {
            "Add"
        }
        fn input_types(&self) -> Vec<TypeSpec> {
            vec![
                TypeSpec::Exact(DataType::Scalar),
                TypeSpec::Exact(DataType::Scalar),
            ]
        }
        fn output_types(&self) -> Vec<DataType> {
            vec![DataType::Scalar]
        }
        fn process(&mut self, inputs: Vec<TrianaData>) -> Result<Vec<TrianaData>, UnitError> {
            match inputs.as_slice() {
                [TrianaData::Scalar(a), TrianaData::Scalar(b)] => {
                    Ok(vec![TrianaData::Scalar(a + b)])
                }
                _ => Err(UnitError::Runtime("expected two scalars".into())),
            }
        }
    }

    pub fn test_registry() -> UnitRegistry {
        let mut r = UnitRegistry::new();
        r.register("Counter", |_p| Ok(Box::new(Counter { next: 0.0 })));
        r.register("Scale", |p| {
            Ok(Box::new(Scale {
                k: param_f64(p, "k", 1.0)?,
            }))
        });
        r.register("Add", |_p| Ok(Box::new(AddU)));
        r
    }
}

#[cfg(test)]
mod tests {
    use super::test_units::*;
    use super::*;

    #[test]
    fn registry_creates_units_with_params() {
        let reg = test_registry();
        let mut scale = reg
            .create("Scale", &Params::from([("k".to_string(), "3".to_string())]))
            .unwrap();
        let out = scale.process(vec![TrianaData::Scalar(2.0)]).unwrap();
        assert_eq!(out, vec![TrianaData::Scalar(6.0)]);
    }

    #[test]
    fn unknown_unit_is_an_error() {
        let reg = test_registry();
        assert_eq!(
            reg.create("Nope", &Params::new()).err(),
            Some(UnitError::UnknownUnit("Nope".into()))
        );
    }

    #[test]
    fn bad_param_is_reported() {
        let reg = test_registry();
        let e = reg
            .create("Scale", &Params::from([("k".to_string(), "x".to_string())]))
            .err()
            .expect("bad param must fail");
        assert!(matches!(e, UnitError::BadParam { .. }));
    }

    #[test]
    fn signature_reports_arity_and_types() {
        let reg = test_registry();
        let (ins, outs) = reg.signature("Add", &Params::new()).unwrap();
        assert_eq!(ins.len(), 2);
        assert_eq!(outs, vec![DataType::Scalar]);
    }

    #[test]
    fn source_and_sink_flags() {
        let c = Counter { next: 0.0 };
        assert!(c.is_source());
        assert!(!c.is_sink());
        let a = AddU;
        assert!(!a.is_source());
    }

    #[test]
    fn counter_is_stateful_and_resets() {
        let mut c = Counter { next: 0.0 };
        assert_eq!(c.process(vec![]).unwrap(), vec![TrianaData::Scalar(0.0)]);
        assert_eq!(c.process(vec![]).unwrap(), vec![TrianaData::Scalar(1.0)]);
        c.reset();
        assert_eq!(c.process(vec![]).unwrap(), vec![TrianaData::Scalar(0.0)]);
    }

    #[test]
    fn default_work_estimate_scales_with_input() {
        let a = AddU;
        let small = [TrianaData::Scalar(1.0), TrianaData::Scalar(2.0)];
        let big = [
            TrianaData::SampleSet {
                rate_hz: 1.0,
                samples: vec![0.0; 100_000],
            },
            TrianaData::Scalar(2.0),
        ];
        assert!(a.work_estimate(&big) > a.work_estimate(&small) * 100.0);
    }

    #[test]
    fn later_registration_shadows() {
        let mut reg = test_registry();
        reg.register("Counter", |_p| Ok(Box::new(Counter { next: 100.0 })));
        let mut c = reg.create("Counter", &Params::new()).unwrap();
        assert_eq!(c.process(vec![]).unwrap(), vec![TrianaData::Scalar(100.0)]);
    }
}
