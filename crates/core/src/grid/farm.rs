//! The `parallel` distribution policy: farm jobs out to volunteer peers.
//!
//! Implements the paper's Case 1/Case 2 execution model: a Triana
//! Controller holds a queue of independent jobs (animation frames, GW data
//! chunks); each job is shipped to an idle volunteer peer — module blob
//! first if the peer doesn't host the code yet (§3.3 on-demand download),
//! then input data — computed there, and the results returned. Volunteers
//! churn (connection lost, user intervenes, §3.6.2); interrupted jobs are
//! migrated and resume from their last checkpoint if a
//! [`CheckpointPolicy`] is configured.

use std::collections::{HashMap, VecDeque};

use netsim::avail::AvailabilityTrace;
use netsim::{Duration, HostId, HostSpec, Sim, SimTime};
use obs::Obs;
use orch::{Delta, OrchestratorHandle};
use p2p::{AdvertBody, Advertisement, BlobAdvert, PeerId, QueryId, QueryKind};
use store::{assign_round_robin, BlobId, ChunkStore, FetchTracker};

use resources::account::{BillingLedger, UsageRecord, VirtualAccount};
use trust::{Candidate, GridTrustConfig, PolicyHandle, ProfileRegistry};

use crate::checkpoint::{Checkpoint, CheckpointPolicy};
use crate::grid::{ChunkSource, GridEvent, GridWorld, JobId, WorkerId, WorkerSetup};
use crate::modules::{ModuleCache, ModuleKey, ModuleLibrary};

/// One distributable unit of work.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Compute cost on the reference scale (gigacycles).
    pub work_gigacycles: f64,
    /// Input payload shipped controller → worker.
    pub input_bytes: u64,
    /// Result payload shipped worker → controller.
    pub output_bytes: u64,
    /// Code module required on the worker (fetched on demand).
    pub module: Option<ModuleKey>,
}

/// Scheduler configuration.
#[derive(Clone, Debug, Default)]
pub struct FarmConfig {
    /// Checkpoint/migration policy; `None` restarts interrupted jobs.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Peer-assisted module distribution; `None` keeps the classic
    /// controller-direct download of §3.3.
    pub swarm: Option<SwarmConfig>,
    /// Peer profiling and adaptive scheduling; `None` keeps the legacy
    /// memoryless fastest-advertised-clock dispatch (profiles are still
    /// collected so reports and redundancy can read them).
    pub trust: Option<GridTrustConfig>,
}

/// Settings for peer-assisted (swarm) module distribution: modules are
/// content-addressed, chunked, and pulled from other workers that already
/// hold them, offloading the controller's uplink.
#[derive(Clone, Debug)]
pub struct SwarmConfig {
    /// Chunk size blobs are split into.
    pub chunk_bytes: u64,
    /// Flood TTL of provider-discovery queries.
    pub query_ttl: u8,
    /// How long a fetching worker collects provider hits before picking
    /// sources (or falling back to the controller).
    pub query_window: Duration,
    /// Pull chunks from at most this many providers in parallel.
    pub max_providers: usize,
    /// Lifetime of the provider adverts seeded workers publish.
    pub advert_ttl: Duration,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        SwarmConfig {
            chunk_bytes: 16 * 1024,
            query_ttl: 4,
            query_window: Duration::from_secs(2),
            max_providers: 4,
            advert_ttl: Duration::from_secs(86_400),
        }
    }
}

/// One in-flight swarm module fetch (keyed by job in the scheduler).
struct SwarmFetch {
    key: ModuleKey,
    query: QueryId,
    tracker: FetchTracker,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Pending,
    FetchingModule,
    SendingInput,
    Running,
    Returning,
    Done,
}

struct Job {
    spec: JobSpec,
    created: SimTime,
    completed: Option<SimTime>,
    /// Worker that produced the accepted result.
    completed_by: Option<WorkerId>,
    /// Jobs this one must not share a worker with (replica voting,
    /// SETI-style: redundant copies on distinct volunteers).
    conflicts: Vec<JobId>,
    state: JobState,
    /// Owner stamp minted when the result transfer left the worker; an
    /// orchestrator change in between makes in-flight arrivals stale.
    out_stamp: u64,
    /// Fraction of the work already checkpointed.
    fraction: f64,
    /// (worker, worker-epoch) currently responsible, if any.
    assigned: Option<(WorkerId, u64)>,
    attempts: u32,
    /// Compute time lost to interruptions (beyond the checkpointed part).
    wasted: Duration,
    /// In-flight speculative duplicate (straggler mitigation), if any.
    spec_attempt: Option<SpecAttempt>,
}

/// A speculative duplicate of a straggling job, racing the primary copy on
/// a second worker. First finisher wins; the loser is cancelled and its
/// compute metered as waste.
struct SpecAttempt {
    worker: WorkerId,
    epoch: u64,
    state: JobState,
    started: Option<SimTime>,
    exec: Duration,
    /// Work the duplicate recomputes (the primary's remaining fraction).
    gigacycles: f64,
}

struct RunningJob {
    job: JobId,
    started: SimTime,
    exec: Duration,
    /// Work this run covers, for runtime profiling on completion.
    gigacycles: f64,
}

struct Worker {
    peer: PeerId,
    host: HostId,
    spec: HostSpec,
    up: bool,
    /// Bumped on every availability transition; stale in-flight events
    /// carry an older epoch and are ignored.
    epoch: u64,
    /// Concurrent job slots (1 = a plain PC; >1 models a cluster or SMP
    /// node behind a local resource manager, §3.1).
    capacity: u32,
    /// Jobs currently assigned (any in-flight state), bounded by capacity.
    active: u32,
    /// Jobs currently computing on this worker.
    running: Vec<RunningJob>,
    /// Fraction of the advertised clock actually delivered (1.0 = honest
    /// advert). Models the paper's §3.7 gap between a peer's advertised
    /// "machine type, speed" and the computational bandwidth it reaches —
    /// only runtime profiling can see through it.
    efficiency: f64,
    cache: ModuleCache,
    /// Reusable execution state for running resident modules: the verify-
    /// once / allocate-once half of the prepared-execution pipeline lives
    /// in the cache, the per-run scratch lives here.
    ctx: tvm::ExecContext,
    /// Chunks of content-addressed blobs this worker holds and can serve
    /// to swarm-fetching peers.
    store: ChunkStore,
    jobs_completed: u64,
    /// Usage metered against the controller's virtual account (§2:
    /// "billing information for resources used").
    ledger: BillingLedger,
}

/// Aggregate outcome of a farm run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FarmStats {
    pub jobs_done: u64,
    pub jobs_total: u64,
    /// Last completion instant.
    pub makespan: SimTime,
    /// Sum of per-job (completed - created).
    pub total_latency: Duration,
    /// Max per-job latency (the "lag" of Case 2).
    pub max_latency: Duration,
    /// Compute time lost to churn.
    pub wasted: Duration,
    /// Total (re)assignments.
    pub attempts: u64,
    /// Speculative duplicates launched against stragglers.
    pub spec_dispatches: u64,
    /// Speculative duplicates that beat their primary.
    pub spec_wins: u64,
}

/// Outcome of executing a cache-resident module: the output ports and
/// retired-instruction stats on success, the sandbox/runtime error otherwise.
pub type ResidentExec = Result<(Vec<Vec<f64>>, tvm::ExecStats), tvm::TvmError>;

/// The Triana Controller's farm scheduler.
///
/// Runs either classically (one controller, [`FarmScheduler::new`]) or
/// decentralised ([`FarmScheduler::with_orchestrators`]): the task graph is
/// partitioned across an orchestrator set, each job's data plane (input,
/// module, result) is served by its owning orchestrator, and dispatch-table
/// changes are replicated so a surviving orchestrator can take over
/// mid-farm.
pub struct FarmScheduler {
    orch: OrchestratorHandle,
    /// An anti-entropy tick is scheduled and will re-arm itself.
    tick_armed: bool,
    cfg: FarmConfig,
    workers: Vec<Worker>,
    jobs: Vec<Job>,
    pending: VecDeque<JobId>,
    /// Module blobs owned by the controller ("the client … pipes modules,
    /// programs and data to the other required Triana service daemons").
    pub library: ModuleLibrary,
    /// Job spec used for streaming chunk arrivals (Case 2).
    pub chunk_spec: Option<JobSpec>,
    /// The submitting user's virtual account, billed on every worker.
    pub account: VirtualAccount,
    /// In-flight swarm module fetches, by job.
    fetches: HashMap<JobId, SwarmFetch>,
    /// Reverse map for serving swarm chunks out of a provider's store.
    peer_workers: HashMap<PeerId, WorkerId>,
    /// Learned per-worker runtime, availability, and trust estimates.
    profiles: ProfileRegistry,
    /// Worker-selection policy resolved from `cfg.trust` at construction.
    policy: PolicyHandle,
    spec_dispatches: u64,
    spec_wins: u64,
    obs: Obs,
}

impl FarmScheduler {
    /// Classic single-controller farm: a one-member orchestrator set,
    /// behaviourally identical to the pre-decentralisation scheduler.
    pub fn new(world: &GridWorld, controller: PeerId, cfg: FarmConfig) -> Self {
        let orch = OrchestratorHandle::single(controller, world.p2p.host_of(controller));
        FarmScheduler::with_orchestrators(orch, cfg)
    }

    /// Decentralised farm: the handle's members partition ownership of the
    /// submitted jobs and replicate scheduler state between themselves.
    pub fn with_orchestrators(orch: OrchestratorHandle, cfg: FarmConfig) -> Self {
        let tcfg = cfg.trust.clone().unwrap_or_default();
        FarmScheduler {
            orch,
            tick_armed: false,
            cfg,
            workers: Vec::new(),
            jobs: Vec::new(),
            pending: VecDeque::new(),
            library: ModuleLibrary::new(),
            chunk_spec: None,
            account: VirtualAccount("controller".to_string()),
            fetches: HashMap::new(),
            peer_workers: HashMap::new(),
            profiles: ProfileRegistry::new(tcfg.profile),
            policy: tcfg.policy,
            spec_dispatches: 0,
            spec_wins: 0,
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability handle; dispatches, retries, completions,
    /// module-cache traffic (including prepared-module metering) and worker
    /// churn are recorded through it.
    pub fn set_obs(&mut self, obs: Obs) {
        for w in &mut self.workers {
            w.cache.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// Set the fraction of its advertised clock a worker actually delivers
    /// (1.0 = honest advert). The scheduler never reads this directly —
    /// it only shapes simulated execution times, which the profile layer
    /// then learns from.
    pub fn set_worker_efficiency(&mut self, wid: WorkerId, efficiency: f64) {
        assert!(efficiency > 0.0);
        self.workers[wid.0 as usize].efficiency = efficiency;
    }

    /// Learned per-worker profiles (runtime, availability, trust).
    pub fn profiles(&self) -> &ProfileRegistry {
        &self.profiles
    }

    /// Mutable profile access for verification layers feeding vote
    /// evidence back into the scheduler (see [`crate::grid::redundancy`]).
    pub fn profiles_mut(&mut self) -> &mut ProfileRegistry {
        &mut self.profiles
    }

    /// Feed a verification verdict for a worker into its profile and
    /// refresh the blacklist gauge.
    pub fn record_vote(&mut self, wid: WorkerId, agreed: bool) {
        self.profiles.record_vote(wid.0, agreed);
        self.obs.incr(if agreed {
            "trust.votes_agreed"
        } else {
            "trust.votes_dissented"
        });
        self.refresh_blacklist_gauge();
    }

    /// Name of the active worker-selection policy.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Is this worker currently excluded by the blacklist floor?
    pub fn worker_blacklisted(&self, wid: WorkerId) -> bool {
        self.cfg
            .trust
            .as_ref()
            .and_then(|t| t.blacklist.as_ref())
            .is_some_and(|bl| self.profiles.blacklisted(wid.0, bl))
    }

    fn refresh_blacklist_gauge(&mut self) {
        if let Some(bl) = self.cfg.trust.as_ref().and_then(|t| t.blacklist.as_ref()) {
            self.obs.gauge(
                "trust.blacklisted",
                self.profiles.blacklisted_count(bl) as i64,
            );
        }
    }

    /// Host whose uplink serves `job`'s data plane (input, module blob,
    /// result): the owning orchestrator, i.e. the controller in single
    /// mode.
    fn owner_host(&self, job: JobId) -> HostId {
        self.orch.owner_host(job.0)
    }

    /// Replicate a scheduler-state change across the orchestrator set.
    fn record_delta(&mut self, world: &mut GridWorld, d: Delta) {
        self.orch
            .record(&mut world.sim, &mut world.net, &mut world.p2p, d);
    }

    /// Simulated execution time of `gigacycles` on a worker, including its
    /// (hidden) efficiency factor.
    fn effective_exec(&self, wid: WorkerId, gigacycles: f64) -> Duration {
        let w = &self.workers[wid.0 as usize];
        let base = w.spec.exec_time(gigacycles);
        if w.efficiency == 1.0 {
            base
        } else {
            Duration::from_secs_f64(base.as_secs_f64() / w.efficiency)
        }
    }

    /// Enrol a single-slot worker (an ordinary volunteer PC).
    pub fn add_worker(&mut self, world: &mut GridWorld, setup: WorkerSetup) -> WorkerId {
        self.add_worker_with_capacity(world, setup, 1)
    }

    /// Enrol a worker with `capacity` concurrent job slots — the gateway
    /// case of §3.1: a Triana peer fronting "parallel machines or
    /// workstations clusters" through its local resource manager.
    pub fn add_worker_with_capacity(
        &mut self,
        world: &mut GridWorld,
        setup: WorkerSetup,
        capacity: u32,
    ) -> WorkerId {
        assert!(capacity >= 1);
        let id = WorkerId(self.workers.len() as u32);
        let host = world.p2p.host_of(setup.peer);
        let up = setup.trace.is_up(SimTime::ZERO);
        world.net.set_online(host, up);
        schedule_transitions(&mut world.sim, id, &setup.trace);
        let chunk_bytes = self.cfg.swarm.as_ref().map_or(16 * 1024, |s| s.chunk_bytes);
        self.peer_workers.insert(setup.peer, id);
        self.profiles.register(id.0, setup.spec.cpu_ghz, up);
        let mut cache = ModuleCache::new(setup.cache_bytes);
        cache.set_obs(self.obs.clone());
        self.workers.push(Worker {
            peer: setup.peer,
            host,
            spec: setup.spec,
            up,
            epoch: 0,
            capacity,
            active: 0,
            running: Vec::new(),
            efficiency: 1.0,
            cache,
            store: ChunkStore::new(chunk_bytes),
            jobs_completed: 0,
            ctx: tvm::ExecContext::new(),
            ledger: BillingLedger::new(),
        });
        id
    }

    /// Queue a job and try to place it.
    pub fn submit(&mut self, world: &mut GridWorld, spec: JobSpec) -> JobId {
        self.submit_with_conflicts(world, spec, Vec::new())
    }

    /// Queue a job that must never run on a worker hosting (or having
    /// completed) any of the `conflicts` jobs — the placement constraint
    /// behind redundant result verification. The relation is symmetric:
    /// each conflicting job also learns about this one, so a replica
    /// requeued by a crash can never re-land on a worker already holding
    /// (or having completed) a sibling — one bad volunteer must not get
    /// two votes on the same unit.
    pub fn submit_with_conflicts(
        &mut self,
        world: &mut GridWorld,
        spec: JobSpec,
        conflicts: Vec<JobId>,
    ) -> JobId {
        let id = JobId(self.jobs.len() as u64);
        for &cj in &conflicts {
            self.jobs[cj.0 as usize].conflicts.push(id);
        }
        self.jobs.push(Job {
            spec,
            created: world.sim.now(),
            completed: None,
            completed_by: None,
            conflicts,
            state: JobState::Pending,
            out_stamp: 0,
            fraction: 0.0,
            assigned: None,
            attempts: 0,
            wasted: Duration::ZERO,
            spec_attempt: None,
        });
        // Partition: the best-scoring reachable orchestrator owns this
        // unit's data plane (a no-op choice in single-controller mode).
        self.orch
            .assign_owner(&mut world.sim, &mut world.net, &mut world.p2p, id.0);
        self.arm_tick(world);
        self.pending.push_back(id);
        self.dispatch(world);
        id
    }

    /// Schedule the first anti-entropy tick of a multi-orchestrator run;
    /// the tick re-arms itself until the farm quiesces converged.
    fn arm_tick(&mut self, world: &mut GridWorld) {
        if self.tick_armed || self.orch.is_single() {
            return;
        }
        self.tick_armed = true;
        world
            .sim
            .schedule(self.orch.anti_entropy_interval(), GridEvent::OrchTick);
    }

    /// May `job` run on `wid` given its conflict set?
    fn eligible(&self, job_id: JobId, wid: WorkerId) -> bool {
        self.jobs[job_id.0 as usize].conflicts.iter().all(|&cj| {
            let c = &self.jobs[cj.0 as usize];
            c.completed_by != Some(wid)
                && !matches!(c.assigned, Some((w, _)) if w == wid)
                && !matches!(&c.spec_attempt, Some(s) if s.worker == wid)
        })
    }

    /// Schedule `count` streaming chunk arrivals spaced `interval` apart
    /// (Case 2: a 900 s data chunk arrives every 900 s). Requires
    /// `chunk_spec` to be set before the first arrival fires.
    pub fn schedule_chunks(&mut self, sim: &mut Sim<GridEvent>, interval: Duration, count: u64) {
        for seq in 0..count {
            sim.schedule(interval * (seq + 1), GridEvent::ChunkArrives { seq });
        }
    }

    /// Idle workers a job may run on, in worker-id order (so every policy
    /// sees a deterministic candidate list). `exclude` drops one worker —
    /// the straggling primary when picking a speculative backup.
    fn candidates_for(&self, job_id: JobId, exclude: Option<WorkerId>) -> Vec<Candidate> {
        let blacklist = self.cfg.trust.as_ref().and_then(|t| t.blacklist.as_ref());
        self.workers
            .iter()
            .enumerate()
            .filter_map(|(i, w)| {
                let wid = WorkerId(i as u32);
                let open = w.up && w.active < w.capacity && Some(wid) != exclude;
                let trusted = blacklist.is_none_or(|bl| !self.profiles.blacklisted(wid.0, bl));
                (open && trusted && self.eligible(job_id, wid)).then_some(Candidate {
                    worker: wid.0,
                    cpu_ghz: w.spec.cpu_ghz,
                })
            })
            .collect()
    }

    fn dispatch(&mut self, world: &mut GridWorld) {
        // Jobs whose assignment bounced straight back to the queue (the
        // path to the chosen worker is severed, so the very first transfer
        // failed synchronously): skip them for the rest of this pass, or
        // the deterministic policy would pick the same pairing forever.
        let mut bounced: Vec<JobId> = Vec::new();
        loop {
            // FIFO over pending jobs, skipping jobs whose conflict set
            // rules out every idle worker; the configured policy picks
            // among the eligible idle workers (the legacy default takes
            // the fastest advertised clock, §3.7).
            let mut pick: Option<(usize, WorkerId)> = None;
            for (qi, &job_id) in self.pending.iter().enumerate() {
                if bounced.contains(&job_id) {
                    continue;
                }
                let cands = self.candidates_for(job_id, None);
                let work = {
                    let j = &self.jobs[job_id.0 as usize];
                    j.spec.work_gigacycles * (1.0 - j.fraction)
                };
                if let Some(ci) = self.policy.choose(work, &cands, &self.profiles) {
                    pick = Some((qi, WorkerId(cands[ci].worker)));
                    break;
                }
            }
            let Some((qi, wid)) = pick else {
                return;
            };
            let job_id = self.pending.remove(qi).expect("index from scan");
            self.assign(world, job_id, wid);
            if self.jobs[job_id.0 as usize].state == JobState::Pending {
                bounced.push(job_id);
            }
        }
    }

    /// Re-run the dispatch scan. Queue drains are normally triggered by
    /// grid events (worker churn, completions), but external connectivity
    /// repairs — e.g. a severed controller↔worker route healing — are not
    /// events the farm sees, so whoever restores the route must nudge the
    /// queue.
    pub fn kick(&mut self, world: &mut GridWorld) {
        self.dispatch(world);
    }

    fn assign(&mut self, world: &mut GridWorld, job_id: JobId, wid: WorkerId) {
        let epoch = self.workers[wid.0 as usize].epoch;
        self.workers[wid.0 as usize].active += 1;
        let module_key = self.jobs[job_id.0 as usize].spec.module.clone();
        // `get` (not `contains`) so cache hit/miss statistics are metered.
        let needs_module = match &module_key {
            Some(key) => self.workers[wid.0 as usize].cache.get(key).is_none(),
            None => false,
        };
        if module_key.is_some() {
            self.obs.incr(if needs_module {
                "farm.module_cache_misses"
            } else {
                "farm.module_cache_hits"
            });
        }
        self.obs.incr("farm.dispatches");
        self.obs
            .event(world.sim.now().as_micros(), "farm.dispatch", || {
                format!("job={} worker={}", job_id.0, wid.0)
            });
        self.record_delta(
            world,
            Delta::Dispatch {
                job: job_id.0,
                worker: wid.0,
            },
        );
        let job = &mut self.jobs[job_id.0 as usize];
        job.assigned = Some((wid, epoch));
        job.attempts += 1;
        if job.attempts > 1 {
            self.obs.incr("farm.retries");
        }
        if needs_module {
            let key = module_key.expect("checked above");
            self.jobs[job_id.0 as usize].state = JobState::FetchingModule;
            if self.cfg.swarm.is_some() {
                self.swarm_fetch(world, job_id, wid, epoch, key);
            } else {
                self.direct_fetch(world, job_id, wid, epoch, key);
            }
        } else {
            self.send_input(world, job_id, wid, epoch);
        }
    }

    /// Classic §3.3 module download: the controller ships the whole blob.
    /// Also the swarm's fallback when discovery finds no provider or
    /// verification rejects the assembled bytes.
    fn direct_fetch(
        &mut self,
        world: &mut GridWorld,
        job_id: JobId,
        wid: WorkerId,
        epoch: u64,
        key: ModuleKey,
    ) {
        let bytes = self
            .library
            .fetch(&key)
            .map(|b| b.len() as u64)
            .unwrap_or(0);
        self.obs.add("farm.module_bytes_sent", bytes);
        let dst = self.workers[wid.0 as usize].host;
        let src = self.owner_host(job_id);
        match world.net.transfer(world.sim.now(), src, dst, bytes) {
            Ok(delay) => world.sim.schedule(
                delay,
                GridEvent::ModuleArrived {
                    job: job_id,
                    worker: wid,
                    key,
                    epoch,
                },
            ),
            Err(_) => self.requeue(world, job_id, wid),
        }
    }

    /// Start a peer-assisted fetch: discover providers of the module's
    /// content hash over the overlay, then pull chunks in parallel once
    /// the discovery window closes.
    fn swarm_fetch(
        &mut self,
        world: &mut GridWorld,
        job_id: JobId,
        wid: WorkerId,
        epoch: u64,
        key: ModuleKey,
    ) {
        let sw = self.cfg.swarm.clone().expect("swarm fetch implies config");
        let (id, blob_len) = match self.library.fetch(&key) {
            Some(b) => (BlobId::of_blob(b), b.len() as u64),
            // Unknown module: keep the classic path's zero-byte transfer.
            None => return self.direct_fetch(world, job_id, wid, epoch, key),
        };
        // The worker may already hold every chunk (seeded by an earlier
        // job, then evicted from the LRU cache): rebuild locally for free.
        let w = &mut self.workers[wid.0 as usize];
        if w.store.is_complete(id) {
            if let Ok(rebuilt) = w.store.assemble(id) {
                w.cache.insert(key, rebuilt);
                self.obs.incr("store.local_rebuilds");
                return self.send_input(world, job_id, wid, epoch);
            }
            // Resident chunks are corrupt: drop them and fetch afresh.
            w.store.release(id);
        }
        let layout = w.store.layout_for(blob_len);
        let origin = w.peer;
        self.obs.incr("store.swarm_fetches");
        let query = world.p2p.query(
            &mut world.sim,
            &mut world.net,
            origin,
            QueryKind::ByBlob { hash: id.0 },
            sw.query_ttl,
        );
        world.sim.schedule(
            sw.query_window,
            GridEvent::SwarmProvidersDue {
                job: job_id,
                worker: wid,
                epoch,
            },
        );
        self.fetches.insert(
            job_id,
            SwarmFetch {
                key,
                query,
                tracker: FetchTracker::new(id, layout),
            },
        );
    }

    /// Request one chunk over the simulated network. Provider failures
    /// reroute the chunk to the controller (which is always online).
    fn request_chunk(
        &mut self,
        world: &mut GridWorld,
        job: JobId,
        wid: WorkerId,
        epoch: u64,
        chunk: u32,
        source: ChunkSource,
    ) {
        let Some(fetch) = self.fetches.get_mut(&job) else {
            return;
        };
        let bytes = fetch.tracker.layout().size(chunk);
        let src_host = match source {
            ChunkSource::Controller => self.orch.owner_host(job.0),
            ChunkSource::Peer(p) => world.p2p.host_of(p),
        };
        let dst = self.workers[wid.0 as usize].host;
        match world.net.transfer(world.sim.now(), src_host, dst, bytes) {
            Ok(delay) => {
                fetch.tracker.request(chunk, world.sim.now());
                world.sim.schedule(
                    delay,
                    GridEvent::SwarmChunkArrived {
                        job,
                        worker: wid,
                        epoch,
                        chunk,
                        source,
                    },
                );
            }
            Err(_) => match source {
                // Provider went offline between discovery and pull.
                ChunkSource::Peer(_) => {
                    self.obs.incr("store.chunk_reroutes");
                    self.request_chunk(world, job, wid, epoch, chunk, ChunkSource::Controller);
                }
                // Controller transfers only fail if the worker itself
                // vanished in this instant — treat as interrupt.
                ChunkSource::Controller => {
                    self.fetches.remove(&job);
                    self.requeue(world, job, wid);
                }
            },
        }
    }

    /// All chunks arrived: reassemble, verify the content hash, and only
    /// then admit the blob to the worker's module cache. A verification
    /// failure discards the chunks and falls back to the controller.
    fn swarm_assembled(&mut self, world: &mut GridWorld, job: JobId, wid: WorkerId, epoch: u64) {
        let Some(fetch) = self.fetches.remove(&job) else {
            return;
        };
        let blob_id = fetch.tracker.blob();
        let now = world.sim.now();
        let w = &mut self.workers[wid.0 as usize];
        match w.store.assemble(blob_id) {
            Ok(blob) => {
                w.cache.insert(fetch.key, blob);
                self.obs.incr("store.blobs_verified");
                self.advertise_provider(world, wid, blob_id);
                self.send_input(world, job, wid, epoch);
            }
            Err(_) => {
                // Corrupt or poisoned transfer: the blob never reaches the
                // module cache. Drop the chunks, count the rejection, and
                // fetch the authoritative copy from the controller.
                w.store.release(blob_id);
                self.obs.incr("store.verify_failures");
                self.obs.event(now.as_micros(), "store.verify_failure", || {
                    format!("job={} worker={} blob={}", job.0, wid.0, blob_id)
                });
                self.direct_fetch(world, job, wid, epoch, fetch.key);
            }
        }
    }

    /// Publish a provider advert for a blob this worker now fully holds.
    fn advertise_provider(&mut self, world: &mut GridWorld, wid: WorkerId, blob: BlobId) {
        let Some(sw) = self.cfg.swarm.clone() else {
            return;
        };
        let w = &self.workers[wid.0 as usize];
        let Some(layout) = w.store.layout_of(blob) else {
            return;
        };
        let peer = w.peer;
        let ad = Advertisement {
            body: AdvertBody::Blob(BlobAdvert {
                blob: blob.0,
                size_bytes: layout.blob_len,
                chunks: layout.count(),
                provider: peer,
            }),
            expires: world.sim.now() + sw.advert_ttl,
        };
        world.p2p.publish(&mut world.sim, &mut world.net, peer, ad);
        self.obs.incr("store.seed_adverts");
    }

    fn send_input(&mut self, world: &mut GridWorld, job_id: JobId, wid: WorkerId, epoch: u64) {
        let job = &mut self.jobs[job_id.0 as usize];
        job.state = JobState::SendingInput;
        // A resumed job also ships its checkpoint image.
        let mut bytes = job.spec.input_bytes;
        if job.fraction > 0.0 {
            if let Some(cp) = &self.cfg.checkpoint {
                bytes += cp.image_bytes;
            }
        }
        let dst = self.workers[wid.0 as usize].host;
        let src = self.owner_host(job_id);
        match world.net.transfer(world.sim.now(), src, dst, bytes) {
            Ok(delay) => world.sim.schedule(
                delay,
                GridEvent::InputArrived {
                    job: job_id,
                    worker: wid,
                    epoch,
                },
            ),
            Err(_) => self.requeue(world, job_id, wid),
        }
    }

    /// Is this in-flight event still the job's live assignment?
    fn live(&self, job_id: JobId, wid: WorkerId, epoch: u64, state: JobState) -> bool {
        let job = &self.jobs[job_id.0 as usize];
        job.assigned == Some((wid, epoch))
            && job.state == state
            && self.workers[wid.0 as usize].up
            && self.workers[wid.0 as usize].epoch == epoch
    }

    /// Unassign a job and put it back in the queue; frees the worker slot.
    /// Any in-flight speculative duplicate is cancelled with it.
    fn requeue(&mut self, world: &mut GridWorld, job_id: JobId, wid: WorkerId) {
        self.fetches.remove(&job_id);
        self.cancel_spec(world.sim.now(), job_id);
        let job = &mut self.jobs[job_id.0 as usize];
        job.state = JobState::Pending;
        job.assigned = None;
        self.pending.push_back(job_id);
        let w = &mut self.workers[wid.0 as usize];
        w.active = w.active.saturating_sub(1);
        w.running.retain(|r| r.job != job_id);
        self.obs.incr("farm.requeues");
        self.record_delta(world, Delta::Requeue { job: job_id.0 });
    }

    /// Main event handler. `GridEvent::P2p` must be routed to the overlay
    /// by the caller; everything else belongs here.
    pub fn handle(&mut self, world: &mut GridWorld, ev: GridEvent) {
        match ev {
            GridEvent::WorkerUp(wid) => {
                let w = &mut self.workers[wid.0 as usize];
                if w.up {
                    // Duplicate up-event for a live worker: bumping the epoch
                    // here would orphan its in-flight jobs (their completion
                    // events fail the `live` check and nothing requeues
                    // them), so it must be a no-op.
                    return;
                }
                w.up = true;
                w.epoch += 1;
                w.active = 0;
                w.running.clear();
                world.net.set_online(w.host, true);
                self.profiles.mark_up(wid.0, world.sim.now());
                self.obs.incr("farm.worker_up");
                self.obs
                    .event(world.sim.now().as_micros(), "farm.worker_up", || {
                        format!("worker={}", wid.0)
                    });
                self.dispatch(world);
            }
            GridEvent::WorkerDown(wid) => {
                if !self.workers[wid.0 as usize].up {
                    // Duplicate down-event: already handled; a second pass
                    // would bump the epoch again and double-meter abandons.
                    return;
                }
                self.obs.incr("farm.worker_down");
                self.obs
                    .event(world.sim.now().as_micros(), "farm.worker_down", || {
                        format!("worker={}", wid.0)
                    });
                self.worker_down(world, wid);
                self.dispatch(world);
            }
            GridEvent::ModuleArrived {
                job,
                worker,
                key,
                epoch,
            } => {
                if !self.live(job, worker, epoch, JobState::FetchingModule) {
                    return;
                }
                if let Some(blob) = self.library.fetch(&key) {
                    let blob = blob.clone();
                    let w = &mut self.workers[worker.0 as usize];
                    w.cache.insert(key, blob.clone());
                    // With the swarm on, a controller-fed worker becomes a
                    // seed: it chunks the blob and advertises itself.
                    if self.cfg.swarm.is_some() {
                        let id = w.store.seed_blob(&blob);
                        self.advertise_provider(world, worker, id);
                    }
                }
                self.send_input(world, job, worker, epoch);
            }
            GridEvent::SwarmProvidersDue { job, worker, epoch } => {
                if !self.live(job, worker, epoch, JobState::FetchingModule) {
                    return;
                }
                self.swarm_providers_due(world, job, worker, epoch);
            }
            GridEvent::SwarmChunkArrived {
                job,
                worker,
                epoch,
                chunk,
                source,
            } => {
                if !self.live(job, worker, epoch, JobState::FetchingModule) {
                    return;
                }
                self.swarm_chunk_arrived(world, job, worker, epoch, chunk, source);
            }
            GridEvent::InputArrived { job, worker, epoch } => {
                if !self.live(job, worker, epoch, JobState::SendingInput) {
                    return;
                }
                let j = &mut self.jobs[job.0 as usize];
                j.state = JobState::Running;
                let remaining = j.spec.work_gigacycles * (1.0 - j.fraction);
                let exec = self.effective_exec(worker, remaining);
                self.workers[worker.0 as usize].running.push(RunningJob {
                    job,
                    started: world.sim.now(),
                    exec,
                    gigacycles: remaining,
                });
                world
                    .sim
                    .schedule(exec, GridEvent::ComputeDone { job, worker, epoch });
                self.arm_straggler_check(world, job, worker, epoch, remaining);
            }
            GridEvent::ComputeDone { job, worker, epoch } => {
                if !self.live(job, worker, epoch, JobState::Running) {
                    return;
                }
                let j = &mut self.jobs[job.0 as usize];
                j.state = JobState::Returning;
                j.fraction = 1.0;
                j.completed_by = Some(worker);
                let out_bytes = j.spec.output_bytes;
                let in_bytes = j.spec.input_bytes;
                let w = &mut self.workers[worker.0 as usize];
                let (cpu, gigacycles) = w
                    .running
                    .iter()
                    .find(|r| r.job == job)
                    .map(|r| (r.exec, r.gigacycles))
                    .unwrap_or((Duration::ZERO, 0.0));
                w.ledger.charge(
                    &self.account,
                    UsageRecord {
                        at: world.sim.now(),
                        cpu,
                        bytes_in: in_bytes,
                        bytes_out: out_bytes,
                        instructions: 0,
                    },
                );
                w.running.retain(|r| r.job != job);
                w.active = w.active.saturating_sub(1);
                w.jobs_completed += 1;
                let src = w.host;
                if gigacycles > 0.0 {
                    self.profiles.record_completion(worker.0, gigacycles, cpu);
                }
                let dst = self.owner_host(job);
                let stamp = self.orch.output_stamp(job.0);
                self.jobs[job.0 as usize].out_stamp = stamp;
                match world.net.transfer(world.sim.now(), src, dst, out_bytes) {
                    Ok(delay) => world
                        .sim
                        .schedule(delay, GridEvent::OutputArrived { job, orch: stamp }),
                    // The owner is (normally) always on; a failure means
                    // the worker or owner vanished in this very instant —
                    // treat as interrupt.
                    Err(_) => self.requeue(world, job, worker),
                }
                self.dispatch(world);
            }
            GridEvent::OutputArrived { job, orch } => {
                let j = &mut self.jobs[job.0 as usize];
                if j.state == JobState::Returning
                    && (orch != j.out_stamp || !self.orch.stamp_valid(job.0, orch))
                {
                    // The owning orchestrator changed while the result was
                    // in flight: the arrival lands on a dead (or deposed)
                    // owner. Drop it — `on_orch_change` re-drives the
                    // result toward the new owner.
                    self.obs.incr("orch.stale_outputs_dropped");
                    return;
                }
                if j.state == JobState::Returning {
                    j.state = JobState::Done;
                    j.completed = Some(world.sim.now());
                    j.assigned = None;
                    let latency = world.sim.now().since(j.created);
                    self.obs.incr("farm.completions");
                    self.obs.observe("farm.job_latency_us", latency.as_micros());
                    self.obs
                        .event(world.sim.now().as_micros(), "farm.complete", || {
                            format!("job={} latency_us={}", job.0, latency.as_micros())
                        });
                    self.record_delta(world, Delta::Complete { job: job.0 });
                    // The primary beat its speculative duplicate: cancel
                    // the duplicate and meter its compute as waste.
                    if self.jobs[job.0 as usize].spec_attempt.is_some() {
                        self.obs.incr("trust.speculative_losses");
                        self.cancel_spec(world.sim.now(), job);
                        self.dispatch(world);
                    }
                }
            }
            GridEvent::ChunkArrives { .. } => {
                if let Some(spec) = self.chunk_spec.clone() {
                    self.submit(world, spec);
                }
            }
            GridEvent::OrchTick => {
                let converged =
                    self.orch
                        .anti_entropy_round(&mut world.sim, &mut world.net, &mut world.p2p);
                if (self.all_done() && converged) || self.orch.tick_exhausted() {
                    // Quiesced with every replica caught up — or the round
                    // budget is spent — stop ticking (a later submission
                    // wave re-arms via `submit`).
                    self.tick_armed = false;
                } else {
                    world
                        .sim
                        .schedule(self.orch.anti_entropy_interval(), GridEvent::OrchTick);
                }
            }
            GridEvent::StragglerCheck { job, worker, epoch } => {
                self.straggler_check(world, job, worker, epoch);
            }
            GridEvent::SpecInputArrived { job, worker, epoch } => {
                self.spec_input_arrived(world, job, worker, epoch);
            }
            GridEvent::SpecComputeDone { job, worker, epoch } => {
                self.spec_compute_done(world, job, worker, epoch);
            }
            GridEvent::SpecOutputArrived { job, worker, orch } => {
                self.spec_output_arrived(world, job, worker, orch);
            }
            GridEvent::P2p(_)
            | GridEvent::StageComputeDone { .. }
            | GridEvent::EmitToken { .. } => {
                // Not ours.
            }
        }
    }

    /// Schedule the straggler watchdog for a freshly started run: the
    /// check fires once the run exceeds `factor ×` its profiled expected
    /// runtime (never earlier than `min_runtime`).
    fn arm_straggler_check(
        &mut self,
        world: &mut GridWorld,
        job: JobId,
        worker: WorkerId,
        epoch: u64,
        gigacycles: f64,
    ) {
        let Some(st) = self.cfg.trust.as_ref().and_then(|t| t.straggler.as_ref()) else {
            return;
        };
        let expected = self.profiles.expected_runtime(worker.0, gigacycles);
        let delay = Duration::from_secs_f64(expected.as_secs_f64() * st.factor)
            .max(st.min_runtime)
            .max(Duration::from_secs(1));
        world
            .sim
            .schedule(delay, GridEvent::StragglerCheck { job, worker, epoch });
    }

    /// The watchdog fired: if the run is still going and has no duplicate
    /// yet, launch a speculative copy on the best other idle worker.
    fn straggler_check(&mut self, world: &mut GridWorld, job: JobId, worker: WorkerId, epoch: u64) {
        if !self.live(job, worker, epoch, JobState::Running)
            || self.jobs[job.0 as usize].spec_attempt.is_some()
        {
            return;
        }
        self.obs.incr("trust.straggler_checks");
        let gigacycles = {
            let j = &self.jobs[job.0 as usize];
            j.spec.work_gigacycles * (1.0 - j.fraction)
        };
        let cands = self.candidates_for(job, Some(worker));
        let Some(ci) = self.policy.choose(gigacycles, &cands, &self.profiles) else {
            // Nobody idle to duplicate onto: try again later, while the
            // straggler is still running.
            let retry = self
                .cfg
                .trust
                .as_ref()
                .and_then(|t| t.straggler.as_ref())
                .map_or(Duration::from_secs(5), |st| st.min_runtime)
                .max(Duration::from_secs(1));
            world
                .sim
                .schedule(retry, GridEvent::StragglerCheck { job, worker, epoch });
            return;
        };
        let backup = WorkerId(cands[ci].worker);
        let spec_epoch = self.workers[backup.0 as usize].epoch;
        self.workers[backup.0 as usize].active += 1;
        self.spec_dispatches += 1;
        self.obs.incr("trust.speculative_dispatches");
        self.obs
            .event(world.sim.now().as_micros(), "trust.speculate", || {
                format!("job={} straggler={} backup={}", job.0, worker.0, backup.0)
            });
        // Ship input (and the module, if the backup lacks it) controller-
        // direct; speculation is latency-critical, so no swarm detour.
        let mut bytes = self.jobs[job.0 as usize].spec.input_bytes;
        if let Some(key) = self.jobs[job.0 as usize].spec.module.clone() {
            if self.workers[backup.0 as usize].cache.get(&key).is_none() {
                let blob_len = self.library.fetch(&key).map_or(0, |b| b.len() as u64);
                self.obs.add("farm.module_bytes_sent", blob_len);
                bytes += blob_len;
            }
        }
        let j = &mut self.jobs[job.0 as usize];
        j.attempts += 1;
        j.spec_attempt = Some(SpecAttempt {
            worker: backup,
            epoch: spec_epoch,
            state: JobState::SendingInput,
            started: None,
            exec: Duration::ZERO,
            gigacycles,
        });
        let dst = self.workers[backup.0 as usize].host;
        let src = self.owner_host(job);
        match world.net.transfer(world.sim.now(), src, dst, bytes) {
            Ok(delay) => world.sim.schedule(
                delay,
                GridEvent::SpecInputArrived {
                    job,
                    worker: backup,
                    epoch: spec_epoch,
                },
            ),
            // The backup vanished in this instant: abort the duplicate.
            Err(_) => self.cancel_spec(world.sim.now(), job),
        }
    }

    /// Is this in-flight event still the job's live speculative attempt?
    fn spec_live(&self, job: JobId, wid: WorkerId, epoch: u64, state: JobState) -> bool {
        let w = &self.workers[wid.0 as usize];
        matches!(
            &self.jobs[job.0 as usize].spec_attempt,
            Some(s) if s.worker == wid && s.epoch == epoch && s.state == state
        ) && w.up
            && w.epoch == epoch
    }

    fn spec_input_arrived(&mut self, world: &mut GridWorld, job: JobId, wid: WorkerId, epoch: u64) {
        if !self.spec_live(job, wid, epoch, JobState::SendingInput) {
            return;
        }
        if let Some(key) = self.jobs[job.0 as usize].spec.module.clone() {
            if self.workers[wid.0 as usize].cache.get(&key).is_none() {
                if let Some(blob) = self.library.fetch(&key) {
                    let blob = blob.clone();
                    self.workers[wid.0 as usize].cache.insert(key, blob);
                }
            }
        }
        let gigacycles = self.jobs[job.0 as usize]
            .spec_attempt
            .as_ref()
            .expect("spec_live checked")
            .gigacycles;
        let exec = self.effective_exec(wid, gigacycles);
        self.workers[wid.0 as usize].running.push(RunningJob {
            job,
            started: world.sim.now(),
            exec,
            gigacycles,
        });
        let s = self.jobs[job.0 as usize]
            .spec_attempt
            .as_mut()
            .expect("checked");
        s.state = JobState::Running;
        s.started = Some(world.sim.now());
        s.exec = exec;
        world.sim.schedule(
            exec,
            GridEvent::SpecComputeDone {
                job,
                worker: wid,
                epoch,
            },
        );
    }

    fn spec_compute_done(&mut self, world: &mut GridWorld, job: JobId, wid: WorkerId, epoch: u64) {
        if !self.spec_live(job, wid, epoch, JobState::Running) {
            return;
        }
        let (in_bytes, out_bytes) = {
            let j = &self.jobs[job.0 as usize];
            (j.spec.input_bytes, j.spec.output_bytes)
        };
        let (exec, gigacycles) = {
            let s = self.jobs[job.0 as usize]
                .spec_attempt
                .as_ref()
                .expect("checked");
            (s.exec, s.gigacycles)
        };
        let w = &mut self.workers[wid.0 as usize];
        w.ledger.charge(
            &self.account,
            UsageRecord {
                at: world.sim.now(),
                cpu: exec,
                bytes_in: in_bytes,
                bytes_out: out_bytes,
                instructions: 0,
            },
        );
        w.running.retain(|r| r.job != job);
        w.active = w.active.saturating_sub(1);
        w.jobs_completed += 1;
        let src = w.host;
        self.profiles.record_completion(wid.0, gigacycles, exec);
        self.jobs[job.0 as usize]
            .spec_attempt
            .as_mut()
            .expect("checked")
            .state = JobState::Returning;
        let dst = self.owner_host(job);
        let stamp = self.orch.output_stamp(job.0);
        match world.net.transfer(world.sim.now(), src, dst, out_bytes) {
            Ok(delay) => world.sim.schedule(
                delay,
                GridEvent::SpecOutputArrived {
                    job,
                    worker: wid,
                    orch: stamp,
                },
            ),
            Err(_) => self.cancel_spec(world.sim.now(), job),
        }
        self.dispatch(world);
    }

    fn spec_output_arrived(&mut self, world: &mut GridWorld, job: JobId, wid: WorkerId, orch: u64) {
        let returning = matches!(
            &self.jobs[job.0 as usize].spec_attempt,
            Some(s) if s.worker == wid && s.state == JobState::Returning
        );
        if !returning {
            return;
        }
        if !self.orch.stamp_valid(job.0, orch) {
            // The owner this copy was racing toward is gone; drop the
            // arrival and let the primary (or a later resume) win.
            self.obs.incr("orch.stale_outputs_dropped");
            return;
        }
        self.jobs[job.0 as usize].spec_attempt = None;
        let now = world.sim.now();
        // The duplicate beat the primary: cancel the straggling run and
        // meter the compute it sank as waste.
        if let Some((pw, pe)) = self.jobs[job.0 as usize].assigned {
            let alive = {
                let w = &self.workers[pw.0 as usize];
                w.up && w.epoch == pe
            };
            if alive {
                let sunk = self.workers[pw.0 as usize]
                    .running
                    .iter()
                    .find(|r| r.job == job)
                    .map(|r| now.since(r.started));
                if let Some(sunk) = sunk {
                    self.jobs[job.0 as usize].wasted += sunk;
                    self.obs
                        .add("trust.speculative_wasted_us", sunk.as_micros());
                }
                let w = &mut self.workers[pw.0 as usize];
                w.running.retain(|r| r.job != job);
                w.active = w.active.saturating_sub(1);
            }
        }
        let j = &mut self.jobs[job.0 as usize];
        j.state = JobState::Done;
        j.fraction = 1.0;
        j.completed = Some(now);
        j.completed_by = Some(wid);
        j.assigned = None;
        let latency = now.since(j.created);
        self.spec_wins += 1;
        self.record_delta(world, Delta::Complete { job: job.0 });
        self.obs.incr("trust.speculative_wins");
        self.obs.incr("farm.completions");
        self.obs.observe("farm.job_latency_us", latency.as_micros());
        self.obs
            .event(now.as_micros(), "trust.speculative_win", || {
                format!(
                    "job={} worker={} latency_us={}",
                    job.0,
                    wid.0,
                    latency.as_micros()
                )
            });
        self.dispatch(world);
    }

    /// Drop a job's speculative attempt (primary won, job requeued, or the
    /// backup vanished), freeing the backup's slot and metering any
    /// compute it already sank.
    fn cancel_spec(&mut self, now: SimTime, job: JobId) {
        let Some(s) = self.jobs[job.0 as usize].spec_attempt.take() else {
            return;
        };
        self.obs.incr("trust.speculative_cancelled");
        let alive = {
            let w = &self.workers[s.worker.0 as usize];
            w.up && w.epoch == s.epoch
        };
        if !alive {
            return;
        }
        if let Some(started) = s.started {
            let sunk = now.since(started);
            self.jobs[job.0 as usize].wasted += sunk;
            self.obs
                .add("trust.speculative_wasted_us", sunk.as_micros());
        }
        let w = &mut self.workers[s.worker.0 as usize];
        w.running.retain(|r| r.job != job);
        w.active = w.active.saturating_sub(1);
    }

    /// The discovery window of a swarm fetch closed: pick providers and
    /// pull missing chunks round-robin, or fall back to the controller.
    fn swarm_providers_due(
        &mut self,
        world: &mut GridWorld,
        job: JobId,
        wid: WorkerId,
        epoch: u64,
    ) {
        let (query, blob, layout, key) = match self.fetches.get(&job) {
            Some(f) => (f.query, f.tracker.blob(), f.tracker.layout(), f.key.clone()),
            None => return,
        };
        let origin = self.workers[wid.0 as usize].peer;
        let sw = self.cfg.swarm.clone().expect("swarm fetch implies config");
        // Adverts whose TTL lapsed between query emission and this window
        // closing are churn, not providers: pulling from one would race the
        // provider's purge. Skip them (the controller fallback below covers
        // the all-expired case).
        let (mut providers, expired) = world
            .p2p
            .queries
            .get(&query)
            .map(|q| q.providers_live(world.sim.now()))
            .unwrap_or_default();
        if expired > 0 {
            self.obs.add("store.provider_expired", expired);
        }
        providers.retain(|p| {
            *p != origin
                && self
                    .peer_workers
                    .get(p)
                    .is_some_and(|w| self.workers[w.0 as usize].up)
        });
        providers.truncate(sw.max_providers);
        if providers.is_empty() {
            // Nobody (reachable) holds the blob yet: controller-direct.
            self.obs.incr("store.fallback_no_provider");
            self.fetches.remove(&job);
            return self.direct_fetch(world, job, wid, epoch, key);
        }
        self.obs.add("store.providers_used", providers.len() as u64);
        let missing = self.workers[wid.0 as usize]
            .store
            .missing(blob, layout.blob_len);
        if missing.is_empty() {
            // A previous attempt already left every chunk resident.
            return self.swarm_assembled(world, job, wid, epoch);
        }
        for (chunk, si) in assign_round_robin(&missing, providers.len()) {
            self.request_chunk(
                world,
                job,
                wid,
                epoch,
                chunk,
                ChunkSource::Peer(providers[si]),
            );
        }
    }

    /// One swarm chunk landed: meter it, copy the payload out of its
    /// source's store (the simulated network moves byte counts, not data),
    /// and assemble once the blob is complete.
    fn swarm_chunk_arrived(
        &mut self,
        world: &mut GridWorld,
        job: JobId,
        wid: WorkerId,
        epoch: u64,
        chunk: u32,
        source: ChunkSource,
    ) {
        let now = world.sim.now();
        let Some(fetch) = self.fetches.get_mut(&job) else {
            return;
        };
        let Some(latency) = fetch.tracker.complete(chunk, now) else {
            return; // stale or duplicate delivery
        };
        let (blob, layout, key) = (
            fetch.tracker.blob(),
            fetch.tracker.layout(),
            fetch.key.clone(),
        );
        let bytes = layout.size(chunk);
        self.obs
            .observe("store.chunk_fetch_us", latency.as_micros());
        match source {
            ChunkSource::Controller => {
                self.obs.add("store.bytes_from_controller", bytes);
                self.obs.add("farm.module_bytes_sent", bytes);
            }
            ChunkSource::Peer(_) => self.obs.add("store.bytes_from_peers", bytes),
        }
        let piece: Option<Vec<u8>> = match source {
            ChunkSource::Controller => self
                .library
                .fetch(&key)
                .filter(|b| BlobId::of_blob(b) == blob)
                .map(|b| layout.slice(&b.bytes, chunk).to_vec()),
            ChunkSource::Peer(p) => self
                .peer_workers
                .get(&p)
                .and_then(|w| self.workers[w.0 as usize].store.chunk(blob, chunk))
                .map(<[u8]>::to_vec),
        };
        match piece {
            Some(data) => {
                self.workers[wid.0 as usize]
                    .store
                    .insert_chunk(blob, layout.blob_len, chunk, data);
                if self.workers[wid.0 as usize].store.is_complete(blob) {
                    self.swarm_assembled(world, job, wid, epoch);
                }
            }
            // The source no longer holds the bytes (provider released
            // them, or the library republished the module mid-fetch).
            None => match source {
                ChunkSource::Peer(_) => {
                    self.obs.incr("store.chunk_reroutes");
                    self.request_chunk(world, job, wid, epoch, chunk, ChunkSource::Controller);
                }
                ChunkSource::Controller => {
                    // The module changed under us: abandon the swarm fetch
                    // and ship the current blob whole.
                    self.workers[wid.0 as usize].store.release(blob);
                    self.fetches.remove(&job);
                    self.direct_fetch(world, job, wid, epoch, key);
                }
            },
        }
    }

    fn worker_down(&mut self, world: &mut GridWorld, wid: WorkerId) {
        let now = world.sim.now();
        self.profiles.mark_down(wid.0, now);
        let w = &mut self.workers[wid.0 as usize];
        w.up = false;
        w.epoch += 1;
        world.net.set_online(w.host, false);
        let interrupted = std::mem::take(&mut w.running);
        w.active = 0;
        // Speculative duplicates that were running (or receiving input) on
        // the vanished worker die with it; the primaries keep going.
        let spec_jobs: Vec<JobId> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| matches!(&j.spec_attempt, Some(s) if s.worker == wid))
            .map(|(i, _)| JobId(i as u64))
            .collect();
        for job_id in spec_jobs {
            // The slot accounting was already zeroed above; just meter the
            // sunk compute and drop the attempt.
            if let Some(s) = self.jobs[job_id.0 as usize].spec_attempt.take() {
                self.obs.incr("trust.speculative_cancelled");
                if let Some(started) = s.started {
                    let sunk = now.since(started);
                    self.jobs[job_id.0 as usize].wasted += sunk;
                    self.obs
                        .add("trust.speculative_wasted_us", sunk.as_micros());
                }
            }
        }
        // Any job still assigned to this worker in any transit state is
        // migrated immediately (the controller notices the peer vanish).
        let assigned_jobs: Vec<JobId> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| matches!(j.assigned, Some((w2, _)) if w2 == wid))
            .filter(|(_, j)| j.state != JobState::Done && j.state != JobState::Returning)
            .map(|(i, _)| JobId(i as u64))
            .collect();
        for job_id in assigned_jobs {
            if let Some(run) = interrupted.iter().find(|r| r.job == job_id) {
                let ran_for = now.since(run.started);
                let cp = Checkpoint::after(self.cfg.checkpoint.as_ref(), ran_for, run.exec);
                let j = &mut self.jobs[job_id.0 as usize];
                // cp.fraction is of the *remaining* work this attempt ran.
                let saved = (1.0 - j.fraction) * cp.fraction;
                let saved_time = Duration::from_secs_f64(run.exec.as_secs_f64() * cp.fraction);
                j.wasted += ran_for.saturating_sub(saved_time);
                j.fraction += saved;
                let permille = (j.fraction * 1000.0).round().min(1000.0) as u32;
                // The peer walked away mid-run (§3.6.2 "user intervenes"):
                // abandonment evidence against its trust score.
                self.profiles.record_abandon(wid.0);
                self.obs.incr("trust.abandons");
                // Replicate the checkpoint head, so a takeover orchestrator
                // resumes the job from here instead of from scratch.
                self.record_delta(
                    world,
                    Delta::Head {
                        job: job_id.0,
                        permille,
                    },
                );
            }
            self.fetches.remove(&job_id);
            self.cancel_spec(now, job_id);
            let j = &mut self.jobs[job_id.0 as usize];
            j.state = JobState::Pending;
            j.assigned = None;
            self.pending.push_back(job_id);
            self.obs.incr("farm.migrations");
            self.record_delta(world, Delta::Requeue { job: job_id.0 });
        }
        self.refresh_blacklist_gauge();
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> FarmStats {
        let mut s = FarmStats {
            jobs_total: self.jobs.len() as u64,
            spec_dispatches: self.spec_dispatches,
            spec_wins: self.spec_wins,
            ..FarmStats::default()
        };
        for j in &self.jobs {
            s.attempts += j.attempts as u64;
            s.wasted += j.wasted;
            if let Some(done) = j.completed {
                s.jobs_done += 1;
                s.makespan = s.makespan.max(done);
                let lat = done.since(j.created);
                s.total_latency += lat;
                s.max_latency = s.max_latency.max(lat);
            }
        }
        s
    }

    pub fn all_done(&self) -> bool {
        self.jobs.iter().all(|j| j.state == JobState::Done)
    }

    pub fn job_latency(&self, job: JobId) -> Option<Duration> {
        let j = &self.jobs[job.0 as usize];
        j.completed.map(|c| c.since(j.created))
    }

    /// The worker whose execution produced the job's returned result.
    pub fn job_completed_by(&self, job: JobId) -> Option<WorkerId> {
        self.jobs[job.0 as usize].completed_by
    }

    pub fn worker_cache_stats(&self, wid: WorkerId) -> crate::modules::CacheStats {
        self.workers[wid.0 as usize].cache.stats()
    }

    /// Run a module resident in `wid`'s cache through the worker's reusable
    /// execution context. This is the steady-state fast path: the module was
    /// verified and flattened once at cache admission, and the context's
    /// stack/frames/locals arenas are reused across calls, so the run itself
    /// performs no heap allocation. Returns `None` if the module (or its
    /// prepared form — e.g. a corrupt blob) is not resident; the lookup is
    /// metered as a prepared-cache hit or miss either way.
    pub fn execute_resident(
        &mut self,
        wid: WorkerId,
        key: &ModuleKey,
        inputs: &[&[f64]],
        policy: &tvm::SandboxPolicy,
    ) -> Option<ResidentExec> {
        let w = &mut self.workers[wid.0 as usize];
        let prepared = w.cache.get_prepared(key)?;
        Some(prepared.execute_obs(inputs, policy, &mut w.ctx, &self.obs))
    }

    /// Batched twin of [`Self::execute_resident`]: drive one resident
    /// module across `jobs` input sets in a single dispatch call, reusing
    /// the worker's context across the whole batch. Observationally
    /// identical to calling [`Self::execute_resident`] once per job — the
    /// tier-2 path just amortises dispatch and setup over the batch.
    pub fn execute_resident_batch(
        &mut self,
        wid: WorkerId,
        key: &ModuleKey,
        jobs: &[&[&[f64]]],
        policy: &tvm::SandboxPolicy,
    ) -> Option<Vec<ResidentExec>> {
        let w = &mut self.workers[wid.0 as usize];
        let prepared = w.cache.get_prepared(key)?;
        Some(prepared.execute_batch_obs(jobs, policy, &mut w.ctx, &self.obs))
    }

    /// The worker's resident chunk store (swarm distribution state).
    pub fn worker_store(&self, wid: WorkerId) -> &ChunkStore {
        &self.workers[wid.0 as usize].store
    }

    /// Mutable access to a worker's chunk store — fault injection in
    /// tests (e.g. corrupting a seeded chunk to exercise verification).
    pub fn worker_store_mut(&mut self, wid: WorkerId) -> &mut ChunkStore {
        &mut self.workers[wid.0 as usize].store
    }

    pub fn worker_jobs_completed(&self, wid: WorkerId) -> u64 {
        self.workers[wid.0 as usize].jobs_completed
    }

    /// The billing ledger a volunteer keeps for work done here.
    pub fn worker_ledger(&self, wid: WorkerId) -> &BillingLedger {
        &self.workers[wid.0 as usize].ledger
    }

    /// Total CPU donated by all workers to this controller's account.
    pub fn total_billed_cpu(&self) -> Duration {
        self.workers
            .iter()
            .fold(Duration::ZERO, |acc, w| acc + w.ledger.total_cpu())
    }

    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Overlay identity of a worker.
    pub fn worker_peer(&self, wid: WorkerId) -> PeerId {
        self.workers[wid.0 as usize].peer
    }

    /// The active controller: the orchestrator set's current leader.
    pub fn controller(&self) -> PeerId {
        self.orch.leader_peer()
    }

    /// The orchestrator set driving this farm.
    pub fn orchestrators(&self) -> &OrchestratorHandle {
        &self.orch
    }

    /// Route a gossip delivery ([`p2p::Incoming::Orch`]) into the set.
    pub fn orch_deliver(&mut self, to: PeerId, seq: u64, count: u64, sync: bool) {
        self.orch.deliver(to, seq, count, sync);
    }

    /// The orchestrator set changed (election, crash, partition, heal) —
    /// re-drive everything the change invalidated:
    ///
    /// * in-flight results addressed to a dead or deposed owner are
    ///   re-driven toward the job's new owner (retransfer if the producing
    ///   worker still holds them, full requeue otherwise);
    /// * the pending queue is kicked, because ownership moves and healed
    ///   routes can make previously bounced dispatches placeable — without
    ///   the kick a farm whose orchestrator change lands at the same sim
    ///   instant as its last worker event would strand pending units
    ///   forever.
    pub fn on_orch_change(&mut self, world: &mut GridWorld) {
        let stale: Vec<JobId> = (0..self.jobs.len() as u64)
            .map(JobId)
            .filter(|&id| {
                let j = &self.jobs[id.0 as usize];
                j.state == JobState::Returning && !self.orch.stamp_valid(id.0, j.out_stamp)
            })
            .collect();
        for job_id in stale {
            self.resume_returning(world, job_id);
        }
        self.arm_tick(world);
        self.kick(world);
    }

    /// A completed result was in flight toward an owner that no longer
    /// exists: re-drive it. If the producing worker is still reachable the
    /// result is retransferred from its host to the new owner; otherwise
    /// the work is genuinely lost and the job goes back to the queue.
    fn resume_returning(&mut self, world: &mut GridWorld, job_id: JobId) {
        let producer = self.jobs[job_id.0 as usize].completed_by;
        let worker_alive = producer.is_some_and(|w| self.workers[w.0 as usize].up);
        if let (Some(wid), true) = (producer, worker_alive) {
            let src = self.workers[wid.0 as usize].host;
            let dst = self.owner_host(job_id);
            let stamp = self.orch.output_stamp(job_id.0);
            let out_bytes = self.jobs[job_id.0 as usize].spec.output_bytes;
            if let Ok(delay) = world.net.transfer(world.sim.now(), src, dst, out_bytes) {
                self.jobs[job_id.0 as usize].out_stamp = stamp;
                self.obs.incr("orch.output_retransfers");
                world.sim.schedule(
                    delay,
                    GridEvent::OutputArrived {
                        job: job_id,
                        orch: stamp,
                    },
                );
                return;
            }
        }
        // Producer gone too: recompute. The slot was already freed at
        // ComputeDone, so only the job's own state is rewound.
        let j = &mut self.jobs[job_id.0 as usize];
        j.state = JobState::Pending;
        j.assigned = None;
        j.completed_by = None;
        j.fraction = 0.0;
        self.pending.push_back(job_id);
        self.obs.incr("farm.requeues");
        self.obs.incr("orch.returning_requeued");
        self.record_delta(world, Delta::Requeue { job: job_id.0 });
    }

    // --- invariant-checking introspection (used by the chaos harness) ---

    pub fn n_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The worker currently responsible for the job, if any.
    pub fn job_assignment(&self, job: JobId) -> Option<WorkerId> {
        self.jobs[job.0 as usize].assigned.map(|(w, _)| w)
    }

    pub fn job_is_done(&self, job: JobId) -> bool {
        self.jobs[job.0 as usize].state == JobState::Done
    }

    pub fn job_is_pending(&self, job: JobId) -> bool {
        self.jobs[job.0 as usize].state == JobState::Pending
    }

    pub fn worker_is_up(&self, wid: WorkerId) -> bool {
        self.workers[wid.0 as usize].up
    }

    /// Jobs currently occupying slots on the worker.
    pub fn worker_active(&self, wid: WorkerId) -> u32 {
        self.workers[wid.0 as usize].active
    }

    pub fn worker_capacity(&self, wid: WorkerId) -> u32 {
        self.workers[wid.0 as usize].capacity
    }

    /// The worker's module cache (chaos integrity checks walk its entries).
    pub fn worker_cache(&self, wid: WorkerId) -> &ModuleCache {
        &self.workers[wid.0 as usize].cache
    }
}

fn schedule_transitions(sim: &mut Sim<GridEvent>, wid: WorkerId, trace: &AvailabilityTrace) {
    for &(start, end) in trace.intervals() {
        if start > SimTime::ZERO {
            sim.schedule_at(start, GridEvent::WorkerUp(wid));
        }
        if end < trace.horizon() {
            sim.schedule_at(end, GridEvent::WorkerDown(wid));
        }
    }
}

/// Drive the world until all events drain (or the sim horizon), routing
/// overlay events to the overlay and everything else to the farm.
pub fn run_farm(world: &mut GridWorld, farm: &mut FarmScheduler) {
    while let Some(ev) = world.sim.step() {
        match ev {
            GridEvent::P2p(pe) => {
                for inc in world.p2p.handle(&mut world.sim, &mut world.net, pe) {
                    if let p2p::Incoming::Orch {
                        to,
                        seq,
                        count,
                        sync,
                    } = inc
                    {
                        farm.orch_deliver(to, seq, count, sync);
                    }
                }
            }
            other => farm.handle(world, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Pcg32;
    use p2p::DiscoveryMode;
    use trust::StragglerConfig;

    fn lan_pc() -> HostSpec {
        HostSpec::lan_workstation()
    }

    fn world_with_workers(
        n: usize,
        cfg: FarmConfig,
        trace_of: impl Fn(usize, SimTime, &mut Pcg32) -> AvailabilityTrace,
        horizon: SimTime,
    ) -> (GridWorld, FarmScheduler) {
        let mut world = GridWorld::new(11, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(lan_pc());
        let mut farm = FarmScheduler::new(&world, ctrl, cfg);
        let mut rng = Pcg32::new(99, 0);
        for i in 0..n {
            let (peer, _) = world.add_peer(lan_pc());
            let trace = trace_of(i, horizon, &mut rng);
            farm.add_worker(
                &mut world,
                WorkerSetup {
                    peer,
                    spec: lan_pc(),
                    trace,
                    cache_bytes: 1 << 20,
                },
            );
        }
        (world, farm)
    }

    fn job(work: f64) -> JobSpec {
        JobSpec {
            work_gigacycles: work,
            input_bytes: 10_000,
            output_bytes: 1_000,
            module: None,
        }
    }

    #[test]
    fn single_job_completes_with_transfer_and_compute_time() {
        let horizon = SimTime::from_secs(10_000);
        let (mut world, mut farm) = world_with_workers(
            1,
            FarmConfig::default(),
            |_, h, _| AvailabilityTrace::always(h),
            horizon,
        );
        let id = farm.submit(&mut world, job(20.0)); // 10 s at 2 GHz
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let lat = farm.job_latency(id).unwrap();
        // 10 s compute + LAN transfers (~ms): latency in (10.0, 10.5).
        assert!((10.0..10.5).contains(&lat.as_secs_f64()), "latency {lat}");
        assert_eq!(farm.stats().attempts, 1);
    }

    #[test]
    fn jobs_spread_across_workers_for_speedup() {
        let horizon = SimTime::from_secs(100_000);
        let run_with = |k: usize| {
            let (mut world, mut farm) = world_with_workers(
                k,
                FarmConfig::default(),
                |_, h, _| AvailabilityTrace::always(h),
                horizon,
            );
            for _ in 0..8 {
                farm.submit(&mut world, job(200.0)); // 100 s each
            }
            run_farm(&mut world, &mut farm);
            assert!(farm.all_done());
            farm.stats().makespan.as_secs_f64()
        };
        let t1 = run_with(1);
        let t4 = run_with(4);
        let speedup = t1 / t4;
        assert!(speedup > 3.0, "speedup {speedup}");
    }

    #[test]
    fn module_fetched_once_then_cached() {
        let horizon = SimTime::from_secs(100_000);
        let (mut world, mut farm) = world_with_workers(
            1,
            FarmConfig::default(),
            |_, h, _| AvailabilityTrace::always(h),
            horizon,
        );
        let key = ModuleKey::new("Render", 1);
        let blob = tvm::asm::assemble(".module Render 1 0 0\n.func main 0\n halt\n")
            .unwrap()
            .to_blob();
        farm.library.publish(key.clone(), blob);
        for _ in 0..3 {
            farm.submit(
                &mut world,
                JobSpec {
                    module: Some(key.clone()),
                    ..job(2.0)
                },
            );
        }
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let cs = farm.worker_cache_stats(WorkerId(0));
        // One download despite three jobs.
        assert!(cs.bytes_fetched > 0);
        assert_eq!(cs.evictions, 0);
        assert_eq!(farm.worker_jobs_completed(WorkerId(0)), 3);
    }

    #[test]
    fn resident_modules_execute_through_the_prepared_fast_path() {
        let horizon = SimTime::from_secs(100_000);
        let (mut world, mut farm) = world_with_workers(
            1,
            FarmConfig::default(),
            |_, h, _| AvailabilityTrace::always(h),
            horizon,
        );
        let key = ModuleKey::new("Doubler", 1);
        // y[i] = 2 * x[i]
        let blob = tvm::asm::assemble(
            ".module Doubler 1 1 1\n.func main 2\n inlen 0\n store 0\n push 0\n store 1\n\
             loop:\n load 1\n load 0\n lt\n jz end\n load 1\n inget 0\n push 2\n mul\n \
             outpush 0\n load 1\n push 1\n add\n store 1\n jmp loop\n end:\n halt\n",
        )
        .unwrap()
        .to_blob();
        farm.library.publish(key.clone(), blob);
        farm.submit(
            &mut world,
            JobSpec {
                module: Some(key.clone()),
                ..job(2.0)
            },
        );
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());

        // The download admitted (and prepared) the module; repeated runs
        // reuse the same prepared form and worker context.
        let policy = tvm::SandboxPolicy::standard();
        for _ in 0..3 {
            let (out, stats) = farm
                .execute_resident(WorkerId(0), &key, &[&[1.0, 2.5]], &policy)
                .expect("module resident after the farm run")
                .expect("sandboxed execution succeeds");
            assert_eq!(out, vec![vec![2.0, 5.0]]);
            assert!(stats.instructions > 0);
        }
        let cs = farm.worker_cache_stats(WorkerId(0));
        assert_eq!(cs.prepares, 1, "verified exactly once, at admission");
        assert_eq!(cs.prepared_hits, 3);
        // A module the worker never fetched is a metered miss.
        assert!(farm
            .execute_resident(WorkerId(0), &ModuleKey::new("Nope", 1), &[], &policy)
            .is_none());
        assert_eq!(farm.worker_cache_stats(WorkerId(0)).prepared_misses, 1);
    }

    #[test]
    fn churn_migrates_job_and_counts_waste() {
        let horizon = SimTime::from_secs(100_000);
        // Worker 0: up only for the first 50 s. Worker 1: always up but
        // slower to be picked (same speed, picked second).
        let (mut world, mut farm) = world_with_workers(
            2,
            FarmConfig::default(),
            |i, h, _| {
                if i == 0 {
                    AvailabilityTrace::from_intervals(
                        vec![(SimTime::ZERO, SimTime::from_secs(50))],
                        h,
                    )
                } else {
                    AvailabilityTrace::always(h)
                }
            },
            horizon,
        );
        // One long job (100 s): lands on worker 0 or 1; submit two so both
        // workers get one, and worker 0's is interrupted at t=50.
        let a = farm.submit(&mut world, job(200.0));
        let b = farm.submit(&mut world, job(200.0));
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let s = farm.stats();
        assert_eq!(s.jobs_done, 2);
        assert!(
            s.attempts >= 3,
            "one migration expected, attempts={}",
            s.attempts
        );
        // Without checkpointing, ~50 s of work wasted.
        assert!(
            (45.0..55.0).contains(&s.wasted.as_secs_f64()),
            "wasted {}",
            s.wasted
        );
        let _ = (a, b);
    }

    #[test]
    fn checkpointing_reduces_waste_and_completion_time() {
        let horizon = SimTime::from_secs(100_000);
        let run_with = |cp: Option<CheckpointPolicy>| {
            let (mut world, mut farm) = world_with_workers(
                2,
                FarmConfig {
                    checkpoint: cp,
                    swarm: None,
                    trust: None,
                },
                |i, h, _| {
                    if i == 0 {
                        // Up 0-100 s, then gone: a 200 s job cannot finish here.
                        AvailabilityTrace::from_intervals(
                            vec![(SimTime::ZERO, SimTime::from_secs(100))],
                            h,
                        )
                    } else {
                        AvailabilityTrace::always(h)
                    }
                },
                horizon,
            );
            farm.submit(&mut world, job(400.0)); // 200 s
            farm.submit(&mut world, job(400.0));
            run_farm(&mut world, &mut farm);
            assert!(farm.all_done());
            farm.stats()
        };
        let without = run_with(None);
        let with = run_with(Some(CheckpointPolicy::every(
            Duration::from_secs(10),
            5_000,
        )));
        assert!(with.wasted < without.wasted);
        assert!(with.makespan <= without.makespan);
        // With 10 s checkpoints, waste is bounded by ~one interval.
        assert!(with.wasted.as_secs_f64() <= 11.0, "wasted {}", with.wasted);
    }

    #[test]
    fn streaming_chunks_keep_up_with_enough_workers() {
        let horizon = SimTime::from_secs(100_000);
        let (mut world, mut farm) = world_with_workers(
            4,
            FarmConfig::default(),
            |_, h, _| AvailabilityTrace::always(h),
            horizon,
        );
        // Chunks arrive every 100 s; each takes 300 s of compute: needs
        // 3 workers to keep up, we have 4.
        farm.chunk_spec = Some(job(600.0));
        farm.schedule_chunks(&mut world.sim, Duration::from_secs(100), 10);
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let s = farm.stats();
        assert_eq!(s.jobs_done, 10);
        // Bounded lag: max latency close to a single chunk's service time.
        assert!(
            s.max_latency.as_secs_f64() < 400.0,
            "max latency {}",
            s.max_latency
        );
    }

    #[test]
    fn streaming_chunks_fall_behind_with_too_few_workers() {
        let horizon = SimTime::from_secs(1_000_000);
        let (mut world, mut farm) = world_with_workers(
            1,
            FarmConfig::default(),
            |_, h, _| AvailabilityTrace::always(h),
            horizon,
        );
        farm.chunk_spec = Some(job(600.0)); // 300 s per chunk, arriving each 100 s
        farm.schedule_chunks(&mut world.sim, Duration::from_secs(100), 10);
        run_farm(&mut world, &mut farm);
        let s = farm.stats();
        assert_eq!(s.jobs_done, 10);
        // Lag grows ~200 s per chunk: the last chunk waits ~2000 s.
        assert!(
            s.max_latency.as_secs_f64() > 1_500.0,
            "max latency {}",
            s.max_latency
        );
    }

    #[test]
    fn faster_workers_preferred() {
        let mut world = GridWorld::new(13, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(lan_pc());
        let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
        let horizon = SimTime::from_secs(10_000);
        let add = |ghz: f64, farm: &mut FarmScheduler, world: &mut GridWorld| {
            let mut spec = lan_pc();
            spec.cpu_ghz = ghz;
            let (peer, _) = world.add_peer(spec.clone());
            farm.add_worker(
                world,
                WorkerSetup {
                    peer,
                    spec,
                    trace: AvailabilityTrace::always(horizon),
                    cache_bytes: 1 << 20,
                },
            )
        };
        let slow = add(1.0, &mut farm, &mut world);
        let fast = add(3.0, &mut farm, &mut world);
        farm.submit(&mut world, job(30.0));
        run_farm(&mut world, &mut farm);
        assert_eq!(farm.worker_jobs_completed(fast), 1);
        assert_eq!(farm.worker_jobs_completed(slow), 0);
    }

    #[test]
    fn cluster_gateway_worker_runs_jobs_concurrently() {
        // One 4-slot gateway (a cluster behind a local RM) vs one plain PC:
        // 4 independent jobs finish ~4x sooner on the gateway.
        let horizon = SimTime::from_secs(100_000);
        let run = |capacity: u32| {
            let mut world = GridWorld::new(71, DiscoveryMode::Flooding);
            let (ctrl, _) = world.add_peer(lan_pc());
            let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
            let (peer, _) = world.add_peer(lan_pc());
            farm.add_worker_with_capacity(
                &mut world,
                WorkerSetup {
                    peer,
                    spec: lan_pc(),
                    trace: AvailabilityTrace::always(horizon),
                    cache_bytes: 1 << 20,
                },
                capacity,
            );
            for _ in 0..4 {
                farm.submit(&mut world, job(200.0)); // 100 s
            }
            run_farm(&mut world, &mut farm);
            assert!(farm.all_done());
            farm.stats().makespan.as_secs_f64()
        };
        let single = run(1);
        let cluster = run(4);
        assert!(
            cluster < single / 3.0,
            "cluster {cluster}s vs single {single}s"
        );
    }

    #[test]
    fn cluster_gateway_interruption_migrates_all_slots() {
        // A 3-slot gateway dies mid-run: every in-flight job migrates to
        // the backup worker and completes.
        let horizon = SimTime::from_secs(100_000);
        let mut world = GridWorld::new(73, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(lan_pc());
        let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
        let (gw, _) = world.add_peer(lan_pc());
        farm.add_worker_with_capacity(
            &mut world,
            WorkerSetup {
                peer: gw,
                spec: lan_pc(),
                trace: AvailabilityTrace::from_intervals(
                    vec![(SimTime::ZERO, SimTime::from_secs(50))],
                    horizon,
                ),
                cache_bytes: 1 << 20,
            },
            3,
        );
        let (backup, _) = world.add_peer(lan_pc());
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer: backup,
                spec: lan_pc(),
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 1 << 20,
            },
        );
        for _ in 0..3 {
            farm.submit(&mut world, job(400.0)); // 200 s each
        }
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let s = farm.stats();
        assert!(s.attempts >= 6, "3 interrupts expected: {s:?}");
        assert!(s.wasted.as_secs_f64() > 100.0, "{s:?}");
    }

    #[test]
    fn billing_meters_exact_compute_time() {
        let horizon = SimTime::from_secs(10_000);
        let (mut world, mut farm) = world_with_workers(
            2,
            FarmConfig::default(),
            |_, h, _| AvailabilityTrace::always(h),
            horizon,
        );
        // 4 jobs x 20 Gc at 2 GHz = 10 s each: 40 s of CPU total.
        for _ in 0..4 {
            farm.submit(&mut world, job(20.0));
        }
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let billed = farm.total_billed_cpu();
        assert!(
            (billed.as_secs_f64() - 40.0).abs() < 1e-6,
            "billed {billed}"
        );
        // Per-worker ledgers carry the controller's account.
        let account = farm.account.clone();
        let w0 = farm.worker_ledger(WorkerId(0)).totals(&account);
        let w1 = farm.worker_ledger(WorkerId(1)).totals(&account);
        assert_eq!(w0.jobs + w1.jobs, 4);
        assert_eq!(w0.bytes_in + w1.bytes_in, 4 * 10_000);
    }

    #[test]
    fn job_submitted_while_all_workers_down_waits_for_uptime() {
        let horizon = SimTime::from_secs(10_000);
        let (mut world, mut farm) = world_with_workers(
            1,
            FarmConfig::default(),
            |_, h, _| {
                AvailabilityTrace::from_intervals(
                    vec![(SimTime::from_secs(100), SimTime::from_secs(9_000))],
                    h,
                )
            },
            horizon,
        );
        let id = farm.submit(&mut world, job(2.0));
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let lat = farm.job_latency(id).unwrap();
        assert!(lat.as_secs_f64() >= 100.0, "waited for worker: {lat}");
    }

    fn swarm_world(n: usize) -> (GridWorld, FarmScheduler) {
        let (mut world, farm) = world_with_workers(
            n,
            FarmConfig {
                checkpoint: None,
                swarm: Some(SwarmConfig {
                    chunk_bytes: 256,
                    ..SwarmConfig::default()
                }),
                trust: None,
            },
            |_, h, _| AvailabilityTrace::always(h),
            SimTime::from_secs(100_000),
        );
        // Flooding discovery needs a wired overlay.
        let mut rng = Pcg32::new(5, 1);
        world.p2p.wire_random(4, &mut rng);
        (world, farm)
    }

    fn sized_blob(name: &str, approx: usize) -> tvm::ModuleBlob {
        // Pad with push/pop pairs (9+1 bytes each) to reach ~approx bytes.
        let mut src = format!(".module {name} 1 0 0\n.func main 0\n");
        for _ in 0..approx / 10 {
            src.push_str(" push 1\n pop\n");
        }
        src.push_str(" halt\n");
        tvm::asm::assemble(&src).unwrap().to_blob()
    }

    #[test]
    fn swarm_pulls_chunks_from_seeded_peer() {
        let (mut world, mut farm) = swarm_world(2);
        let obs = Obs::enabled();
        farm.set_obs(obs.clone());
        let key = ModuleKey::new("Render", 1);
        let blob = sized_blob("Render", 2_000);
        let blob_len = blob.len() as u64;
        farm.library.publish(key.clone(), blob);
        let spec = JobSpec {
            module: Some(key.clone()),
            ..job(2.0)
        };
        // First job: no provider exists yet, so the controller seeds the
        // worker directly — the classic §3.3 download.
        let a = farm.submit(&mut world, spec.clone());
        run_farm(&mut world, &mut farm);
        let reg = obs.registry().unwrap();
        assert_eq!(reg.counter_value("store.fallback_no_provider"), 1);
        assert_eq!(reg.counter_value("farm.module_bytes_sent"), blob_len);
        // Second job is forced onto the other worker: every chunk comes
        // from the seeded peer, none from the controller uplink.
        farm.submit_with_conflicts(&mut world, spec, vec![a]);
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        assert_eq!(reg.counter_value("store.bytes_from_peers"), blob_len);
        assert_eq!(reg.counter_value("store.bytes_from_controller"), 0);
        assert_eq!(reg.counter_value("farm.module_bytes_sent"), blob_len);
        assert_eq!(reg.counter_value("store.blobs_verified"), 1);
        assert_eq!(reg.counter_value("store.seed_adverts"), 2);
    }

    #[test]
    fn advert_expiring_mid_discovery_window_is_treated_as_churn() {
        // Regression: a provider advert whose TTL lapses between the query
        // hit and the window closing used to be pulled from anyway; it must
        // instead count as churn and fall back to the controller.
        let (mut world, mut farm) = swarm_world(2);
        let obs = Obs::enabled();
        farm.set_obs(obs.clone());
        let key = ModuleKey::new("Render", 1);
        let blob = sized_blob("Render", 2_000);
        farm.library.publish(key.clone(), blob.clone());
        // Seed worker 0's store by hand and advertise it with a TTL that
        // lapses *inside* the 2 s discovery window: the flood hit arrives
        // valid (LAN flooding takes milliseconds) but the advert is stale
        // by the time providers are picked.
        let blob_id = farm.worker_store_mut(WorkerId(0)).seed_blob(&blob);
        let layout = farm
            .worker_store(WorkerId(0))
            .layout_of(blob_id)
            .expect("seeded");
        let provider = farm.worker_peer(WorkerId(0));
        let ad = Advertisement {
            body: AdvertBody::Blob(BlobAdvert {
                blob: blob_id.0,
                size_bytes: layout.blob_len,
                chunks: layout.count(),
                provider,
            }),
            expires: SimTime::from_secs(1),
        };
        world
            .p2p
            .publish(&mut world.sim, &mut world.net, provider, ad);
        // Occupy worker 0 so the module job lands on worker 1.
        farm.submit(&mut world, job(50.0));
        let b = farm.submit(
            &mut world,
            JobSpec {
                module: Some(key.clone()),
                ..job(2.0)
            },
        );
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        assert!(farm.job_latency(b).is_some());
        let reg = obs.registry().unwrap();
        assert_eq!(reg.counter_value("store.provider_expired"), 1);
        assert_eq!(reg.counter_value("store.fallback_no_provider"), 1);
        // Every byte of the module came over the controller's uplink; the
        // stale provider was never pulled from.
        assert_eq!(reg.counter_value("store.bytes_from_peers"), 0);
        assert_eq!(reg.counter_value("store.providers_used"), 0);
    }

    #[test]
    fn corrupted_chunk_rejected_before_cache() {
        let (mut world, mut farm) = swarm_world(2);
        let obs = Obs::enabled();
        farm.set_obs(obs.clone());
        let key = ModuleKey::new("Render", 1);
        let blob = sized_blob("Render", 2_000);
        let blob_len = blob.len() as u64;
        let blob_id = BlobId::of_blob(&blob);
        farm.library.publish(key.clone(), blob);
        let spec = JobSpec {
            module: Some(key.clone()),
            ..job(2.0)
        };
        let a = farm.submit(&mut world, spec.clone());
        run_farm(&mut world, &mut farm);
        // Poison one chunk in the seed's store: the swarm copy will
        // reassemble to bytes whose hash doesn't match the content id.
        assert!(farm.worker_store_mut(WorkerId(0)).corrupt_chunk(blob_id, 1));
        farm.submit_with_conflicts(&mut world, spec, vec![a]);
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let reg = obs.registry().unwrap();
        assert_eq!(reg.counter_value("store.verify_failures"), 1);
        assert_eq!(reg.counter_value("store.blobs_verified"), 0);
        // The corrupt assembly never reached the module cache: the only
        // bytes ever cached on worker 1 are the controller's good copy,
        // fetched by the automatic fallback.
        assert_eq!(farm.worker_cache_stats(WorkerId(1)).bytes_fetched, blob_len);
    }

    fn trust_cfg(policy: PolicyHandle) -> Option<GridTrustConfig> {
        Some(GridTrustConfig::default().with_policy(policy))
    }

    /// Two-worker world for the adaptive-scheduling tests: worker 0
    /// advertises a fast clock but delivers only `eff0` of it; worker 1 is
    /// an honest 2 GHz machine.
    fn braggart_world(cfg: FarmConfig, eff0: f64) -> (GridWorld, FarmScheduler) {
        let horizon = SimTime::from_secs(1_000_000);
        let mut world = GridWorld::new(17, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(lan_pc());
        let mut farm = FarmScheduler::new(&world, ctrl, cfg);
        let mut spec = lan_pc();
        spec.cpu_ghz = 3.0;
        let (p0, _) = world.add_peer(spec.clone());
        let w0 = farm.add_worker(
            &mut world,
            WorkerSetup {
                peer: p0,
                spec,
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 1 << 20,
            },
        );
        farm.set_worker_efficiency(w0, eff0);
        let (p1, _) = world.add_peer(lan_pc());
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer: p1,
                spec: lan_pc(),
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 1 << 20,
            },
        );
        (world, farm)
    }

    #[test]
    fn profiled_policy_routes_around_overclaiming_worker() {
        // Jobs arrive far apart, so both workers are idle at every arrival
        // and the policy has a real choice each time.
        let run = |policy: PolicyHandle| {
            let (mut world, mut farm) = braggart_world(
                FarmConfig {
                    trust: trust_cfg(policy),
                    ..FarmConfig::default()
                },
                0.2, // 3 GHz advertised, 0.6 GHz delivered
            );
            farm.chunk_spec = Some(job(60.0)); // 100 s on w0, 30 s on w1
            farm.schedule_chunks(&mut world.sim, Duration::from_secs(150), 6);
            run_farm(&mut world, &mut farm);
            assert!(farm.all_done());
            (
                farm.worker_jobs_completed(WorkerId(0)),
                farm.worker_jobs_completed(WorkerId(1)),
            )
        };
        // Memoryless: the 3 GHz advert wins every time.
        assert_eq!(run(PolicyHandle::first_idle()), (6, 0));
        // Profiled: one job is enough to learn the advert is a lie.
        let (w0, w1) = run(PolicyHandle::fastest_profiled());
        assert_eq!(w0, 1, "only the cold-start job should land on the slug");
        assert_eq!(w1, 5);
    }

    #[test]
    fn straggler_speculation_bounds_latency() {
        let straggled = |straggler: Option<StragglerConfig>| {
            let (mut world, mut farm) = braggart_world(
                FarmConfig {
                    trust: Some(GridTrustConfig {
                        straggler,
                        ..GridTrustConfig::default()
                    }),
                    ..FarmConfig::default()
                },
                0.05, // 60 Gc: 20 s expected from the advert, 400 s real
            );
            let id = farm.submit(&mut world, job(60.0));
            run_farm(&mut world, &mut farm);
            assert!(farm.all_done());
            (farm.stats(), farm.job_completed_by(id).unwrap())
        };
        let (plain, by) = straggled(None);
        assert_eq!(by, WorkerId(0));
        assert!(plain.max_latency.as_secs_f64() > 390.0);
        assert_eq!(plain.spec_dispatches, 0);
        // The watchdog fires at 2 x 20 s; the honest worker recomputes the
        // job in 30 s and its copy wins.
        let (spec, by) = straggled(Some(StragglerConfig::default()));
        assert_eq!(by, WorkerId(1));
        assert_eq!(spec.spec_dispatches, 1);
        assert_eq!(spec.spec_wins, 1);
        assert!(
            spec.max_latency.as_secs_f64() < 100.0,
            "latency {}",
            spec.max_latency
        );
        // The cancelled primary's sunk compute is metered, not hidden.
        assert!(spec.wasted.as_secs_f64() > 30.0, "wasted {}", spec.wasted);
    }

    #[test]
    fn primary_win_cancels_speculative_duplicate() {
        let horizon = SimTime::from_secs(1_000_000);
        let mut world = GridWorld::new(23, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(lan_pc());
        let mut farm = FarmScheduler::new(
            &world,
            ctrl,
            FarmConfig {
                trust: Some(GridTrustConfig {
                    // Fire absurdly early so a healthy run gets duplicated.
                    straggler: Some(StragglerConfig {
                        factor: 0.1,
                        min_runtime: Duration::from_secs(1),
                    }),
                    ..GridTrustConfig::default()
                }),
                ..FarmConfig::default()
            },
        );
        let obs = Obs::enabled();
        farm.set_obs(obs.clone());
        let add = |ghz: f64, world: &mut GridWorld, farm: &mut FarmScheduler| {
            let mut spec = lan_pc();
            spec.cpu_ghz = ghz;
            let (peer, _) = world.add_peer(spec.clone());
            farm.add_worker(
                world,
                WorkerSetup {
                    peer,
                    spec,
                    trace: AvailabilityTrace::always(horizon),
                    cache_bytes: 1 << 20,
                },
            )
        };
        let fast = add(2.0, &mut world, &mut farm);
        let slow = add(1.0, &mut world, &mut farm);
        let id = farm.submit(&mut world, job(60.0)); // 30 s primary, 60 s duplicate
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        assert_eq!(farm.job_completed_by(id), Some(fast));
        let s = farm.stats();
        assert_eq!(s.spec_dispatches, 1);
        assert_eq!(s.spec_wins, 0);
        let reg = obs.registry().unwrap();
        assert_eq!(reg.counter_value("trust.speculative_losses"), 1);
        assert!(reg.counter_value("trust.speculative_wasted_us") > 0);
        // The duplicate's slot was freed: the slow worker can still work.
        let _ = slow;
        assert!(s.wasted > Duration::ZERO);
    }

    #[test]
    fn blacklisted_worker_is_not_dispatched_to() {
        let (mut world, mut farm) = braggart_world(
            FarmConfig {
                trust: Some(GridTrustConfig::adaptive()),
                ..FarmConfig::default()
            },
            1.0,
        );
        // Worker 0 (the faster advert) keeps returning wrong results.
        for _ in 0..6 {
            farm.record_vote(WorkerId(0), false);
        }
        assert!(farm.worker_blacklisted(WorkerId(0)));
        assert!(!farm.worker_blacklisted(WorkerId(1)));
        let id = farm.submit(&mut world, job(20.0));
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        assert_eq!(farm.job_completed_by(id), Some(WorkerId(1)));
        assert_eq!(farm.worker_jobs_completed(WorkerId(0)), 0);
    }

    #[test]
    fn swarm_single_worker_falls_back_to_controller() {
        let (mut world, mut farm) = swarm_world(1);
        let obs = Obs::enabled();
        farm.set_obs(obs.clone());
        let key = ModuleKey::new("Render", 1);
        let blob = sized_blob("Render", 1_000);
        let blob_len = blob.len() as u64;
        farm.library.publish(key.clone(), blob);
        farm.submit(
            &mut world,
            JobSpec {
                module: Some(key),
                ..job(2.0)
            },
        );
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let reg = obs.registry().unwrap();
        assert_eq!(reg.counter_value("store.fallback_no_provider"), 1);
        assert_eq!(reg.counter_value("farm.module_bytes_sent"), blob_len);
        assert_eq!(reg.counter_value("store.bytes_from_peers"), 0);
    }
}
