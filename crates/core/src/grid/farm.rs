//! The `parallel` distribution policy: farm jobs out to volunteer peers.
//!
//! Implements the paper's Case 1/Case 2 execution model: a Triana
//! Controller holds a queue of independent jobs (animation frames, GW data
//! chunks); each job is shipped to an idle volunteer peer — module blob
//! first if the peer doesn't host the code yet (§3.3 on-demand download),
//! then input data — computed there, and the results returned. Volunteers
//! churn (connection lost, user intervenes, §3.6.2); interrupted jobs are
//! migrated and resume from their last checkpoint if a
//! [`CheckpointPolicy`] is configured.

use std::collections::VecDeque;

use netsim::avail::AvailabilityTrace;
use netsim::{Duration, HostId, HostSpec, Network, Sim, SimTime};
use obs::Obs;
use p2p::PeerId;

use resources::account::{BillingLedger, UsageRecord, VirtualAccount};

use crate::checkpoint::{Checkpoint, CheckpointPolicy};
use crate::grid::{GridEvent, GridWorld, JobId, WorkerId, WorkerSetup};
use crate::modules::{ModuleCache, ModuleKey, ModuleLibrary};

/// One distributable unit of work.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Compute cost on the reference scale (gigacycles).
    pub work_gigacycles: f64,
    /// Input payload shipped controller → worker.
    pub input_bytes: u64,
    /// Result payload shipped worker → controller.
    pub output_bytes: u64,
    /// Code module required on the worker (fetched on demand).
    pub module: Option<ModuleKey>,
}

/// Scheduler configuration.
#[derive(Clone, Debug, Default)]
pub struct FarmConfig {
    /// Checkpoint/migration policy; `None` restarts interrupted jobs.
    pub checkpoint: Option<CheckpointPolicy>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Pending,
    FetchingModule,
    SendingInput,
    Running,
    Returning,
    Done,
}

struct Job {
    spec: JobSpec,
    created: SimTime,
    completed: Option<SimTime>,
    /// Worker that produced the accepted result.
    completed_by: Option<WorkerId>,
    /// Jobs this one must not share a worker with (replica voting,
    /// SETI-style: redundant copies on distinct volunteers).
    conflicts: Vec<JobId>,
    state: JobState,
    /// Fraction of the work already checkpointed.
    fraction: f64,
    /// (worker, worker-epoch) currently responsible, if any.
    assigned: Option<(WorkerId, u64)>,
    attempts: u32,
    /// Compute time lost to interruptions (beyond the checkpointed part).
    wasted: Duration,
}

struct RunningJob {
    job: JobId,
    started: SimTime,
    exec: Duration,
}

struct Worker {
    peer: PeerId,
    host: HostId,
    spec: HostSpec,
    up: bool,
    /// Bumped on every availability transition; stale in-flight events
    /// carry an older epoch and are ignored.
    epoch: u64,
    /// Concurrent job slots (1 = a plain PC; >1 models a cluster or SMP
    /// node behind a local resource manager, §3.1).
    capacity: u32,
    /// Jobs currently assigned (any in-flight state), bounded by capacity.
    active: u32,
    /// Jobs currently computing on this worker.
    running: Vec<RunningJob>,
    cache: ModuleCache,
    jobs_completed: u64,
    /// Usage metered against the controller's virtual account (§2:
    /// "billing information for resources used").
    ledger: BillingLedger,
}

/// Aggregate outcome of a farm run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FarmStats {
    pub jobs_done: u64,
    pub jobs_total: u64,
    /// Last completion instant.
    pub makespan: SimTime,
    /// Sum of per-job (completed - created).
    pub total_latency: Duration,
    /// Max per-job latency (the "lag" of Case 2).
    pub max_latency: Duration,
    /// Compute time lost to churn.
    pub wasted: Duration,
    /// Total (re)assignments.
    pub attempts: u64,
}

/// The Triana Controller's farm scheduler.
pub struct FarmScheduler {
    controller: PeerId,
    controller_host: HostId,
    cfg: FarmConfig,
    workers: Vec<Worker>,
    jobs: Vec<Job>,
    pending: VecDeque<JobId>,
    /// Module blobs owned by the controller ("the client … pipes modules,
    /// programs and data to the other required Triana service daemons").
    pub library: ModuleLibrary,
    /// Job spec used for streaming chunk arrivals (Case 2).
    pub chunk_spec: Option<JobSpec>,
    /// The submitting user's virtual account, billed on every worker.
    pub account: VirtualAccount,
    obs: Obs,
}

impl FarmScheduler {
    pub fn new(world: &GridWorld, controller: PeerId, cfg: FarmConfig) -> Self {
        FarmScheduler {
            controller,
            controller_host: world.p2p.host_of(controller),
            cfg,
            workers: Vec::new(),
            jobs: Vec::new(),
            pending: VecDeque::new(),
            library: ModuleLibrary::new(),
            chunk_spec: None,
            account: VirtualAccount("controller".to_string()),
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability handle; dispatches, retries, completions,
    /// module-cache traffic and worker churn are recorded through it.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Enrol a single-slot worker (an ordinary volunteer PC).
    pub fn add_worker(&mut self, world: &mut GridWorld, setup: WorkerSetup) -> WorkerId {
        self.add_worker_with_capacity(world, setup, 1)
    }

    /// Enrol a worker with `capacity` concurrent job slots — the gateway
    /// case of §3.1: a Triana peer fronting "parallel machines or
    /// workstations clusters" through its local resource manager.
    pub fn add_worker_with_capacity(
        &mut self,
        world: &mut GridWorld,
        setup: WorkerSetup,
        capacity: u32,
    ) -> WorkerId {
        assert!(capacity >= 1);
        let id = WorkerId(self.workers.len() as u32);
        let host = world.p2p.host_of(setup.peer);
        let up = setup.trace.is_up(SimTime::ZERO);
        world.net.set_online(host, up);
        schedule_transitions(&mut world.sim, id, &setup.trace);
        self.workers.push(Worker {
            peer: setup.peer,
            host,
            spec: setup.spec,
            up,
            epoch: 0,
            capacity,
            active: 0,
            running: Vec::new(),
            cache: ModuleCache::new(setup.cache_bytes),
            jobs_completed: 0,
            ledger: BillingLedger::new(),
        });
        id
    }

    /// Queue a job and try to place it.
    pub fn submit(&mut self, sim: &mut Sim<GridEvent>, net: &mut Network, spec: JobSpec) -> JobId {
        self.submit_with_conflicts(sim, net, spec, Vec::new())
    }

    /// Queue a job that must never run on a worker hosting (or having
    /// completed) any of the `conflicts` jobs — the placement constraint
    /// behind redundant result verification.
    pub fn submit_with_conflicts(
        &mut self,
        sim: &mut Sim<GridEvent>,
        net: &mut Network,
        spec: JobSpec,
        conflicts: Vec<JobId>,
    ) -> JobId {
        let id = JobId(self.jobs.len() as u64);
        self.jobs.push(Job {
            spec,
            created: sim.now(),
            completed: None,
            completed_by: None,
            conflicts,
            state: JobState::Pending,
            fraction: 0.0,
            assigned: None,
            attempts: 0,
            wasted: Duration::ZERO,
        });
        self.pending.push_back(id);
        self.dispatch(sim, net);
        id
    }

    /// May `job` run on `wid` given its conflict set?
    fn eligible(&self, job_id: JobId, wid: WorkerId) -> bool {
        self.jobs[job_id.0 as usize].conflicts.iter().all(|&cj| {
            let c = &self.jobs[cj.0 as usize];
            c.completed_by != Some(wid) && !matches!(c.assigned, Some((w, _)) if w == wid)
        })
    }

    /// Schedule `count` streaming chunk arrivals spaced `interval` apart
    /// (Case 2: a 900 s data chunk arrives every 900 s). Requires
    /// `chunk_spec` to be set before the first arrival fires.
    pub fn schedule_chunks(&mut self, sim: &mut Sim<GridEvent>, interval: Duration, count: u64) {
        for seq in 0..count {
            sim.schedule(interval * (seq + 1), GridEvent::ChunkArrives { seq });
        }
    }

    fn dispatch(&mut self, sim: &mut Sim<GridEvent>, net: &mut Network) {
        loop {
            // FIFO over pending jobs, skipping jobs whose conflict set
            // rules out every idle worker; fastest eligible idle worker
            // first (the controller knows advertised CPU capability, §3.7).
            let mut pick: Option<(usize, WorkerId)> = None;
            'jobs: for (qi, &job_id) in self.pending.iter().enumerate() {
                let mut candidate: Option<WorkerId> = None;
                for (i, w) in self.workers.iter().enumerate() {
                    let wid = WorkerId(i as u32);
                    if w.up && w.active < w.capacity && self.eligible(job_id, wid) {
                        let better = match candidate {
                            None => true,
                            Some(c) => w.spec.cpu_ghz > self.workers[c.0 as usize].spec.cpu_ghz,
                        };
                        if better {
                            candidate = Some(wid);
                        }
                    }
                }
                if let Some(wid) = candidate {
                    pick = Some((qi, wid));
                    break 'jobs;
                }
            }
            let Some((qi, wid)) = pick else {
                return;
            };
            let job_id = self.pending.remove(qi).expect("index from scan");
            self.assign(sim, net, job_id, wid);
        }
    }

    fn assign(
        &mut self,
        sim: &mut Sim<GridEvent>,
        net: &mut Network,
        job_id: JobId,
        wid: WorkerId,
    ) {
        let epoch = self.workers[wid.0 as usize].epoch;
        self.workers[wid.0 as usize].active += 1;
        let module_key = self.jobs[job_id.0 as usize].spec.module.clone();
        // `get` (not `contains`) so cache hit/miss statistics are metered.
        let needs_module = match &module_key {
            Some(key) => self.workers[wid.0 as usize].cache.get(key).is_none(),
            None => false,
        };
        if module_key.is_some() {
            self.obs.incr(if needs_module {
                "farm.module_cache_misses"
            } else {
                "farm.module_cache_hits"
            });
        }
        self.obs.incr("farm.dispatches");
        self.obs.event(sim.now().as_micros(), "farm.dispatch", || {
            format!("job={} worker={}", job_id.0, wid.0)
        });
        let job = &mut self.jobs[job_id.0 as usize];
        job.assigned = Some((wid, epoch));
        job.attempts += 1;
        if job.attempts > 1 {
            self.obs.incr("farm.retries");
        }
        if needs_module {
            let key = module_key.expect("checked above");
            let bytes = self
                .library
                .fetch(&key)
                .map(|b| b.len() as u64)
                .unwrap_or(0);
            self.jobs[job_id.0 as usize].state = JobState::FetchingModule;
            self.obs.add("farm.module_bytes_sent", bytes);
            let dst = self.workers[wid.0 as usize].host;
            match net.transfer(sim.now(), self.controller_host, dst, bytes) {
                Ok(delay) => sim.schedule(
                    delay,
                    GridEvent::ModuleArrived {
                        job: job_id,
                        worker: wid,
                        key,
                        epoch,
                    },
                ),
                Err(_) => self.requeue(job_id, wid),
            }
        } else {
            self.send_input(sim, net, job_id, wid, epoch);
        }
    }

    fn send_input(
        &mut self,
        sim: &mut Sim<GridEvent>,
        net: &mut Network,
        job_id: JobId,
        wid: WorkerId,
        epoch: u64,
    ) {
        let job = &mut self.jobs[job_id.0 as usize];
        job.state = JobState::SendingInput;
        // A resumed job also ships its checkpoint image.
        let mut bytes = job.spec.input_bytes;
        if job.fraction > 0.0 {
            if let Some(cp) = &self.cfg.checkpoint {
                bytes += cp.image_bytes;
            }
        }
        let dst = self.workers[wid.0 as usize].host;
        match net.transfer(sim.now(), self.controller_host, dst, bytes) {
            Ok(delay) => sim.schedule(
                delay,
                GridEvent::InputArrived {
                    job: job_id,
                    worker: wid,
                    epoch,
                },
            ),
            Err(_) => self.requeue(job_id, wid),
        }
    }

    /// Is this in-flight event still the job's live assignment?
    fn live(&self, job_id: JobId, wid: WorkerId, epoch: u64, state: JobState) -> bool {
        let job = &self.jobs[job_id.0 as usize];
        job.assigned == Some((wid, epoch))
            && job.state == state
            && self.workers[wid.0 as usize].up
            && self.workers[wid.0 as usize].epoch == epoch
    }

    /// Unassign a job and put it back in the queue; frees the worker slot.
    fn requeue(&mut self, job_id: JobId, wid: WorkerId) {
        let job = &mut self.jobs[job_id.0 as usize];
        job.state = JobState::Pending;
        job.assigned = None;
        self.pending.push_back(job_id);
        let w = &mut self.workers[wid.0 as usize];
        w.active = w.active.saturating_sub(1);
        w.running.retain(|r| r.job != job_id);
    }

    /// Main event handler. `GridEvent::P2p` must be routed to the overlay
    /// by the caller; everything else belongs here.
    pub fn handle(&mut self, sim: &mut Sim<GridEvent>, net: &mut Network, ev: GridEvent) {
        match ev {
            GridEvent::WorkerUp(wid) => {
                let w = &mut self.workers[wid.0 as usize];
                w.up = true;
                w.epoch += 1;
                w.active = 0;
                w.running.clear();
                net.set_online(w.host, true);
                self.obs.incr("farm.worker_up");
                self.obs.event(sim.now().as_micros(), "farm.worker_up", || {
                    format!("worker={}", wid.0)
                });
                self.dispatch(sim, net);
            }
            GridEvent::WorkerDown(wid) => {
                self.obs.incr("farm.worker_down");
                self.obs
                    .event(sim.now().as_micros(), "farm.worker_down", || {
                        format!("worker={}", wid.0)
                    });
                self.worker_down(sim.now(), net, wid);
                self.dispatch(sim, net);
            }
            GridEvent::ModuleArrived {
                job,
                worker,
                key,
                epoch,
            } => {
                if !self.live(job, worker, epoch, JobState::FetchingModule) {
                    return;
                }
                if let Some(blob) = self.library.fetch(&key) {
                    self.workers[worker.0 as usize]
                        .cache
                        .insert(key, blob.clone());
                }
                self.send_input(sim, net, job, worker, epoch);
            }
            GridEvent::InputArrived { job, worker, epoch } => {
                if !self.live(job, worker, epoch, JobState::SendingInput) {
                    return;
                }
                let j = &mut self.jobs[job.0 as usize];
                j.state = JobState::Running;
                let remaining = j.spec.work_gigacycles * (1.0 - j.fraction);
                let w = &mut self.workers[worker.0 as usize];
                let exec = w.spec.exec_time(remaining);
                w.running.push(RunningJob {
                    job,
                    started: sim.now(),
                    exec,
                });
                sim.schedule(exec, GridEvent::ComputeDone { job, worker, epoch });
            }
            GridEvent::ComputeDone { job, worker, epoch } => {
                if !self.live(job, worker, epoch, JobState::Running) {
                    return;
                }
                let j = &mut self.jobs[job.0 as usize];
                j.state = JobState::Returning;
                j.fraction = 1.0;
                j.completed_by = Some(worker);
                let out_bytes = j.spec.output_bytes;
                let in_bytes = j.spec.input_bytes;
                let w = &mut self.workers[worker.0 as usize];
                let cpu = w
                    .running
                    .iter()
                    .find(|r| r.job == job)
                    .map(|r| r.exec)
                    .unwrap_or(Duration::ZERO);
                w.ledger.charge(
                    &self.account,
                    UsageRecord {
                        at: sim.now(),
                        cpu,
                        bytes_in: in_bytes,
                        bytes_out: out_bytes,
                        instructions: 0,
                    },
                );
                w.running.retain(|r| r.job != job);
                w.active = w.active.saturating_sub(1);
                w.jobs_completed += 1;
                let src = w.host;
                match net.transfer(sim.now(), src, self.controller_host, out_bytes) {
                    Ok(delay) => sim.schedule(delay, GridEvent::OutputArrived { job }),
                    // Controller is always on; a failure means the worker
                    // vanished in this very instant — treat as interrupt.
                    Err(_) => self.requeue(job, worker),
                }
                self.dispatch(sim, net);
            }
            GridEvent::OutputArrived { job } => {
                let j = &mut self.jobs[job.0 as usize];
                if j.state == JobState::Returning {
                    j.state = JobState::Done;
                    j.completed = Some(sim.now());
                    j.assigned = None;
                    let latency = sim.now().since(j.created);
                    self.obs.incr("farm.completions");
                    self.obs.observe("farm.job_latency_us", latency.as_micros());
                    self.obs.event(sim.now().as_micros(), "farm.complete", || {
                        format!("job={} latency_us={}", job.0, latency.as_micros())
                    });
                }
            }
            GridEvent::ChunkArrives { .. } => {
                if let Some(spec) = self.chunk_spec.clone() {
                    self.submit(sim, net, spec);
                }
            }
            GridEvent::P2p(_)
            | GridEvent::StageComputeDone { .. }
            | GridEvent::EmitToken { .. } => {
                // Not ours.
            }
        }
    }

    fn worker_down(&mut self, now: SimTime, net: &mut Network, wid: WorkerId) {
        let w = &mut self.workers[wid.0 as usize];
        w.up = false;
        w.epoch += 1;
        net.set_online(w.host, false);
        let interrupted = std::mem::take(&mut w.running);
        w.active = 0;
        // Any job still assigned to this worker in any transit state is
        // migrated immediately (the controller notices the peer vanish).
        let assigned_jobs: Vec<JobId> = self
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| matches!(j.assigned, Some((w2, _)) if w2 == wid))
            .filter(|(_, j)| j.state != JobState::Done && j.state != JobState::Returning)
            .map(|(i, _)| JobId(i as u64))
            .collect();
        for job_id in assigned_jobs {
            if let Some(run) = interrupted.iter().find(|r| r.job == job_id) {
                let ran_for = now.since(run.started);
                let cp = Checkpoint::after(self.cfg.checkpoint.as_ref(), ran_for, run.exec);
                let j = &mut self.jobs[job_id.0 as usize];
                // cp.fraction is of the *remaining* work this attempt ran.
                let saved = (1.0 - j.fraction) * cp.fraction;
                let saved_time = Duration::from_secs_f64(run.exec.as_secs_f64() * cp.fraction);
                j.wasted += ran_for.saturating_sub(saved_time);
                j.fraction += saved;
            }
            let j = &mut self.jobs[job_id.0 as usize];
            j.state = JobState::Pending;
            j.assigned = None;
            self.pending.push_back(job_id);
            self.obs.incr("farm.migrations");
        }
    }

    /// Aggregate statistics so far.
    pub fn stats(&self) -> FarmStats {
        let mut s = FarmStats {
            jobs_total: self.jobs.len() as u64,
            ..FarmStats::default()
        };
        for j in &self.jobs {
            s.attempts += j.attempts as u64;
            s.wasted += j.wasted;
            if let Some(done) = j.completed {
                s.jobs_done += 1;
                s.makespan = s.makespan.max(done);
                let lat = done.since(j.created);
                s.total_latency += lat;
                s.max_latency = s.max_latency.max(lat);
            }
        }
        s
    }

    pub fn all_done(&self) -> bool {
        self.jobs.iter().all(|j| j.state == JobState::Done)
    }

    pub fn job_latency(&self, job: JobId) -> Option<Duration> {
        let j = &self.jobs[job.0 as usize];
        j.completed.map(|c| c.since(j.created))
    }

    /// The worker whose execution produced the job's returned result.
    pub fn job_completed_by(&self, job: JobId) -> Option<WorkerId> {
        self.jobs[job.0 as usize].completed_by
    }

    pub fn worker_cache_stats(&self, wid: WorkerId) -> crate::modules::CacheStats {
        self.workers[wid.0 as usize].cache.stats()
    }

    pub fn worker_jobs_completed(&self, wid: WorkerId) -> u64 {
        self.workers[wid.0 as usize].jobs_completed
    }

    /// The billing ledger a volunteer keeps for work done here.
    pub fn worker_ledger(&self, wid: WorkerId) -> &BillingLedger {
        &self.workers[wid.0 as usize].ledger
    }

    /// Total CPU donated by all workers to this controller's account.
    pub fn total_billed_cpu(&self) -> Duration {
        self.workers
            .iter()
            .fold(Duration::ZERO, |acc, w| acc + w.ledger.total_cpu())
    }

    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Overlay identity of a worker.
    pub fn worker_peer(&self, wid: WorkerId) -> PeerId {
        self.workers[wid.0 as usize].peer
    }

    pub fn controller(&self) -> PeerId {
        self.controller
    }
}

fn schedule_transitions(sim: &mut Sim<GridEvent>, wid: WorkerId, trace: &AvailabilityTrace) {
    for &(start, end) in trace.intervals() {
        if start > SimTime::ZERO {
            sim.schedule_at(start, GridEvent::WorkerUp(wid));
        }
        if end < trace.horizon() {
            sim.schedule_at(end, GridEvent::WorkerDown(wid));
        }
    }
}

/// Drive the world until all events drain (or the sim horizon), routing
/// overlay events to the overlay and everything else to the farm.
pub fn run_farm(world: &mut GridWorld, farm: &mut FarmScheduler) {
    while let Some(ev) = world.sim.step() {
        match ev {
            GridEvent::P2p(pe) => {
                world.p2p.handle(&mut world.sim, &mut world.net, pe);
            }
            other => farm.handle(&mut world.sim, &mut world.net, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Pcg32;
    use p2p::DiscoveryMode;

    fn lan_pc() -> HostSpec {
        HostSpec::lan_workstation()
    }

    fn world_with_workers(
        n: usize,
        cfg: FarmConfig,
        trace_of: impl Fn(usize, SimTime, &mut Pcg32) -> AvailabilityTrace,
        horizon: SimTime,
    ) -> (GridWorld, FarmScheduler) {
        let mut world = GridWorld::new(11, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(lan_pc());
        let mut farm = FarmScheduler::new(&world, ctrl, cfg);
        let mut rng = Pcg32::new(99, 0);
        for i in 0..n {
            let (peer, _) = world.add_peer(lan_pc());
            let trace = trace_of(i, horizon, &mut rng);
            farm.add_worker(
                &mut world,
                WorkerSetup {
                    peer,
                    spec: lan_pc(),
                    trace,
                    cache_bytes: 1 << 20,
                },
            );
        }
        (world, farm)
    }

    fn job(work: f64) -> JobSpec {
        JobSpec {
            work_gigacycles: work,
            input_bytes: 10_000,
            output_bytes: 1_000,
            module: None,
        }
    }

    #[test]
    fn single_job_completes_with_transfer_and_compute_time() {
        let horizon = SimTime::from_secs(10_000);
        let (mut world, mut farm) = world_with_workers(
            1,
            FarmConfig::default(),
            |_, h, _| AvailabilityTrace::always(h),
            horizon,
        );
        let id = farm.submit(&mut world.sim, &mut world.net, job(20.0)); // 10 s at 2 GHz
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let lat = farm.job_latency(id).unwrap();
        // 10 s compute + LAN transfers (~ms): latency in (10.0, 10.5).
        assert!((10.0..10.5).contains(&lat.as_secs_f64()), "latency {lat}");
        assert_eq!(farm.stats().attempts, 1);
    }

    #[test]
    fn jobs_spread_across_workers_for_speedup() {
        let horizon = SimTime::from_secs(100_000);
        let run_with = |k: usize| {
            let (mut world, mut farm) = world_with_workers(
                k,
                FarmConfig::default(),
                |_, h, _| AvailabilityTrace::always(h),
                horizon,
            );
            for _ in 0..8 {
                farm.submit(&mut world.sim, &mut world.net, job(200.0)); // 100 s each
            }
            run_farm(&mut world, &mut farm);
            assert!(farm.all_done());
            farm.stats().makespan.as_secs_f64()
        };
        let t1 = run_with(1);
        let t4 = run_with(4);
        let speedup = t1 / t4;
        assert!(speedup > 3.0, "speedup {speedup}");
    }

    #[test]
    fn module_fetched_once_then_cached() {
        let horizon = SimTime::from_secs(100_000);
        let (mut world, mut farm) = world_with_workers(
            1,
            FarmConfig::default(),
            |_, h, _| AvailabilityTrace::always(h),
            horizon,
        );
        let key = ModuleKey::new("Render", 1);
        let blob = tvm::asm::assemble(".module Render 1 0 0\n.func main 0\n halt\n")
            .unwrap()
            .to_blob();
        farm.library.publish(key.clone(), blob);
        for _ in 0..3 {
            farm.submit(
                &mut world.sim,
                &mut world.net,
                JobSpec {
                    module: Some(key.clone()),
                    ..job(2.0)
                },
            );
        }
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let cs = farm.worker_cache_stats(WorkerId(0));
        // One download despite three jobs.
        assert!(cs.bytes_fetched > 0);
        assert_eq!(cs.evictions, 0);
        assert_eq!(farm.worker_jobs_completed(WorkerId(0)), 3);
    }

    #[test]
    fn churn_migrates_job_and_counts_waste() {
        let horizon = SimTime::from_secs(100_000);
        // Worker 0: up only for the first 50 s. Worker 1: always up but
        // slower to be picked (same speed, picked second).
        let (mut world, mut farm) = world_with_workers(
            2,
            FarmConfig::default(),
            |i, h, _| {
                if i == 0 {
                    AvailabilityTrace::from_intervals(
                        vec![(SimTime::ZERO, SimTime::from_secs(50))],
                        h,
                    )
                } else {
                    AvailabilityTrace::always(h)
                }
            },
            horizon,
        );
        // One long job (100 s): lands on worker 0 or 1; submit two so both
        // workers get one, and worker 0's is interrupted at t=50.
        let a = farm.submit(&mut world.sim, &mut world.net, job(200.0));
        let b = farm.submit(&mut world.sim, &mut world.net, job(200.0));
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let s = farm.stats();
        assert_eq!(s.jobs_done, 2);
        assert!(
            s.attempts >= 3,
            "one migration expected, attempts={}",
            s.attempts
        );
        // Without checkpointing, ~50 s of work wasted.
        assert!(
            (45.0..55.0).contains(&s.wasted.as_secs_f64()),
            "wasted {}",
            s.wasted
        );
        let _ = (a, b);
    }

    #[test]
    fn checkpointing_reduces_waste_and_completion_time() {
        let horizon = SimTime::from_secs(100_000);
        let run_with = |cp: Option<CheckpointPolicy>| {
            let (mut world, mut farm) = world_with_workers(
                2,
                FarmConfig { checkpoint: cp },
                |i, h, _| {
                    if i == 0 {
                        // Up 0-100 s, then gone: a 200 s job cannot finish here.
                        AvailabilityTrace::from_intervals(
                            vec![(SimTime::ZERO, SimTime::from_secs(100))],
                            h,
                        )
                    } else {
                        AvailabilityTrace::always(h)
                    }
                },
                horizon,
            );
            farm.submit(&mut world.sim, &mut world.net, job(400.0)); // 200 s
            farm.submit(&mut world.sim, &mut world.net, job(400.0));
            run_farm(&mut world, &mut farm);
            assert!(farm.all_done());
            farm.stats()
        };
        let without = run_with(None);
        let with = run_with(Some(CheckpointPolicy::every(
            Duration::from_secs(10),
            5_000,
        )));
        assert!(with.wasted < without.wasted);
        assert!(with.makespan <= without.makespan);
        // With 10 s checkpoints, waste is bounded by ~one interval.
        assert!(with.wasted.as_secs_f64() <= 11.0, "wasted {}", with.wasted);
    }

    #[test]
    fn streaming_chunks_keep_up_with_enough_workers() {
        let horizon = SimTime::from_secs(100_000);
        let (mut world, mut farm) = world_with_workers(
            4,
            FarmConfig::default(),
            |_, h, _| AvailabilityTrace::always(h),
            horizon,
        );
        // Chunks arrive every 100 s; each takes 300 s of compute: needs
        // 3 workers to keep up, we have 4.
        farm.chunk_spec = Some(job(600.0));
        farm.schedule_chunks(&mut world.sim, Duration::from_secs(100), 10);
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let s = farm.stats();
        assert_eq!(s.jobs_done, 10);
        // Bounded lag: max latency close to a single chunk's service time.
        assert!(
            s.max_latency.as_secs_f64() < 400.0,
            "max latency {}",
            s.max_latency
        );
    }

    #[test]
    fn streaming_chunks_fall_behind_with_too_few_workers() {
        let horizon = SimTime::from_secs(1_000_000);
        let (mut world, mut farm) = world_with_workers(
            1,
            FarmConfig::default(),
            |_, h, _| AvailabilityTrace::always(h),
            horizon,
        );
        farm.chunk_spec = Some(job(600.0)); // 300 s per chunk, arriving each 100 s
        farm.schedule_chunks(&mut world.sim, Duration::from_secs(100), 10);
        run_farm(&mut world, &mut farm);
        let s = farm.stats();
        assert_eq!(s.jobs_done, 10);
        // Lag grows ~200 s per chunk: the last chunk waits ~2000 s.
        assert!(
            s.max_latency.as_secs_f64() > 1_500.0,
            "max latency {}",
            s.max_latency
        );
    }

    #[test]
    fn faster_workers_preferred() {
        let mut world = GridWorld::new(13, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(lan_pc());
        let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
        let horizon = SimTime::from_secs(10_000);
        let add = |ghz: f64, farm: &mut FarmScheduler, world: &mut GridWorld| {
            let mut spec = lan_pc();
            spec.cpu_ghz = ghz;
            let (peer, _) = world.add_peer(spec.clone());
            farm.add_worker(
                world,
                WorkerSetup {
                    peer,
                    spec,
                    trace: AvailabilityTrace::always(horizon),
                    cache_bytes: 1 << 20,
                },
            )
        };
        let slow = add(1.0, &mut farm, &mut world);
        let fast = add(3.0, &mut farm, &mut world);
        farm.submit(&mut world.sim, &mut world.net, job(30.0));
        run_farm(&mut world, &mut farm);
        assert_eq!(farm.worker_jobs_completed(fast), 1);
        assert_eq!(farm.worker_jobs_completed(slow), 0);
    }

    #[test]
    fn cluster_gateway_worker_runs_jobs_concurrently() {
        // One 4-slot gateway (a cluster behind a local RM) vs one plain PC:
        // 4 independent jobs finish ~4x sooner on the gateway.
        let horizon = SimTime::from_secs(100_000);
        let run = |capacity: u32| {
            let mut world = GridWorld::new(71, DiscoveryMode::Flooding);
            let (ctrl, _) = world.add_peer(lan_pc());
            let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
            let (peer, _) = world.add_peer(lan_pc());
            farm.add_worker_with_capacity(
                &mut world,
                WorkerSetup {
                    peer,
                    spec: lan_pc(),
                    trace: AvailabilityTrace::always(horizon),
                    cache_bytes: 1 << 20,
                },
                capacity,
            );
            for _ in 0..4 {
                farm.submit(&mut world.sim, &mut world.net, job(200.0)); // 100 s
            }
            run_farm(&mut world, &mut farm);
            assert!(farm.all_done());
            farm.stats().makespan.as_secs_f64()
        };
        let single = run(1);
        let cluster = run(4);
        assert!(
            cluster < single / 3.0,
            "cluster {cluster}s vs single {single}s"
        );
    }

    #[test]
    fn cluster_gateway_interruption_migrates_all_slots() {
        // A 3-slot gateway dies mid-run: every in-flight job migrates to
        // the backup worker and completes.
        let horizon = SimTime::from_secs(100_000);
        let mut world = GridWorld::new(73, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(lan_pc());
        let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
        let (gw, _) = world.add_peer(lan_pc());
        farm.add_worker_with_capacity(
            &mut world,
            WorkerSetup {
                peer: gw,
                spec: lan_pc(),
                trace: AvailabilityTrace::from_intervals(
                    vec![(SimTime::ZERO, SimTime::from_secs(50))],
                    horizon,
                ),
                cache_bytes: 1 << 20,
            },
            3,
        );
        let (backup, _) = world.add_peer(lan_pc());
        farm.add_worker(
            &mut world,
            WorkerSetup {
                peer: backup,
                spec: lan_pc(),
                trace: AvailabilityTrace::always(horizon),
                cache_bytes: 1 << 20,
            },
        );
        for _ in 0..3 {
            farm.submit(&mut world.sim, &mut world.net, job(400.0)); // 200 s each
        }
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let s = farm.stats();
        assert!(s.attempts >= 6, "3 interrupts expected: {s:?}");
        assert!(s.wasted.as_secs_f64() > 100.0, "{s:?}");
    }

    #[test]
    fn billing_meters_exact_compute_time() {
        let horizon = SimTime::from_secs(10_000);
        let (mut world, mut farm) = world_with_workers(
            2,
            FarmConfig::default(),
            |_, h, _| AvailabilityTrace::always(h),
            horizon,
        );
        // 4 jobs x 20 Gc at 2 GHz = 10 s each: 40 s of CPU total.
        for _ in 0..4 {
            farm.submit(&mut world.sim, &mut world.net, job(20.0));
        }
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let billed = farm.total_billed_cpu();
        assert!(
            (billed.as_secs_f64() - 40.0).abs() < 1e-6,
            "billed {billed}"
        );
        // Per-worker ledgers carry the controller's account.
        let account = farm.account.clone();
        let w0 = farm.worker_ledger(WorkerId(0)).totals(&account);
        let w1 = farm.worker_ledger(WorkerId(1)).totals(&account);
        assert_eq!(w0.jobs + w1.jobs, 4);
        assert_eq!(w0.bytes_in + w1.bytes_in, 4 * 10_000);
    }

    #[test]
    fn job_submitted_while_all_workers_down_waits_for_uptime() {
        let horizon = SimTime::from_secs(10_000);
        let (mut world, mut farm) = world_with_workers(
            1,
            FarmConfig::default(),
            |_, h, _| {
                AvailabilityTrace::from_intervals(
                    vec![(SimTime::from_secs(100), SimTime::from_secs(9_000))],
                    h,
                )
            },
            horizon,
        );
        let id = farm.submit(&mut world.sim, &mut world.net, job(2.0));
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());
        let lat = farm.job_latency(id).unwrap();
        assert!(lat.as_secs_f64() >= 100.0, "waited for worker: {lat}");
    }
}
