//! The `peer-to-peer` distribution policy: a vertically distributed group.
//!
//! §3.3: "Peer to Peer means distributing the group vertically i.e. each
//! unit in the group is distributed onto a separate resource and data is
//! passed between them." Stage links are JXTA-style named pipes, bound
//! exactly as §3.4 describes: each stage advertises an input pipe under the
//! connection's unique name and the upstream stage binds to it.
//!
//! Stages may churn ([`PipelineScheduler::with_churn`]). Recovery is
//! end-to-end, as a stateless pipeline permits: every token carries an
//! **attempt** tag; when a stage fails, tokens at or in flight to that
//! stage are re-emitted from the controller with a bumped attempt, and any
//! stale copies still in the network are ignored on arrival.

use netsim::avail::AvailabilityTrace;
use netsim::{Duration, HostSpec, Network, Sim, SimTime};
use obs::Obs;
use orch::{Delta, OrchestratorHandle};
use p2p::{Incoming, PeerId, PipeId};

use crate::grid::{GridEvent, GridWorld, WorkerId};

/// One pipeline stage placed on a peer.
#[derive(Clone, Debug)]
pub struct StageSpec {
    pub peer: PeerId,
    pub spec: HostSpec,
    /// Compute per token, gigacycles.
    pub work_gigacycles: f64,
}

impl StageSpec {
    /// Size a stage from the admitted module it will run per token:
    /// interpreted TVM work, ~20 host cycles per source instruction per
    /// token sample (the same model the toolbox `TvmUnit` calibrates its
    /// work estimate with). Preparation is not charged here — it happened
    /// once at cache admission, not per token. Any execution tier works;
    /// the work model reads only the source instruction count.
    pub fn for_prepared_module(
        peer: PeerId,
        spec: HostSpec,
        prepared: &dyn tvm::ExecTier,
        token_samples: usize,
    ) -> StageSpec {
        let per_item = prepared.source_instructions().max(8) as f64;
        StageSpec {
            peer,
            spec,
            work_gigacycles: token_samples.max(1) as f64 * per_item * 20.0 / 1e9,
        }
    }
}

struct Stage {
    peer: PeerId,
    spec: HostSpec,
    work: f64,
    /// Input pipe this stage advertised.
    in_pipe: PipeId,
    /// Tokens waiting at the stage (FIFO), by full tag.
    queue: Vec<u64>,
    busy: bool,
    up: bool,
}

/// Where a token currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Position {
    /// Waiting at the controller for (re-)emission (stage 0 was down).
    Parked,
    /// On the wire toward a stage.
    InTransitTo(usize),
    /// Queued or computing at a stage.
    AtStage(usize),
    /// On the wire back to the controller.
    InTransitToResult,
    Done,
}

/// Per-token progress record.
#[derive(Clone, Copy, Debug)]
struct TokenRecord {
    emitted: Option<SimTime>,
    completed: Option<SimTime>,
    attempt: u32,
    position: Position,
    attempts_total: u32,
}

impl Default for TokenRecord {
    fn default() -> Self {
        TokenRecord {
            emitted: None,
            completed: None,
            attempt: 0,
            position: Position::Parked,
            attempts_total: 0,
        }
    }
}

fn tag(token: u64, attempt: u32) -> u64 {
    (u64::from(attempt) << 32) | token
}

fn untag(t: u64) -> (u64, u32) {
    (t & 0xFFFF_FFFF, (t >> 32) as u32)
}

/// Aggregate pipeline results.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    pub tokens_done: u64,
    pub first_emit: SimTime,
    pub last_done: SimTime,
    pub total_latency: Duration,
    pub max_latency: Duration,
    /// Total (re-)emissions across all tokens; equals token count when no
    /// churn occurred.
    pub emissions: u64,
}

impl PipelineStats {
    /// Completed tokens per second of pipeline wall time.
    pub fn throughput(&self) -> f64 {
        let span = self.last_done.since(self.first_emit).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.tokens_done as f64 / span
        }
    }

    pub fn mean_latency(&self) -> Duration {
        if self.tokens_done == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.tokens_done
        }
    }
}

/// Executes one group under the peer-to-peer policy.
pub struct PipelineScheduler {
    orch: OrchestratorHandle,
    tick_armed: bool,
    stages: Vec<Stage>,
    /// Pipe carrying final results back to the controller.
    result_pipe: PipeId,
    /// Bytes of a token on the wire (uniform per hop).
    token_bytes: u64,
    tokens: Vec<TokenRecord>,
    name: String,
    obs: Obs,
}

impl PipelineScheduler {
    /// Build a pipeline over always-up stages.
    pub fn new(
        world: &mut GridWorld,
        controller: PeerId,
        name: &str,
        stages: Vec<StageSpec>,
        token_bytes: u64,
    ) -> Self {
        Self::with_churn(world, controller, name, stages, token_bytes, Vec::new())
    }

    /// Build the pipeline: advertise stage input pipes (named
    /// `<name>.stage<i>`, §3.4's unique connection labels), bind each
    /// upstream sender, and a result pipe back to the controller. A
    /// non-empty `traces` (one per stage) makes stages churn; their
    /// up/down transitions fire as `WorkerUp`/`WorkerDown` events with the
    /// stage index as the worker id.
    pub fn with_churn(
        world: &mut GridWorld,
        controller: PeerId,
        name: &str,
        stages: Vec<StageSpec>,
        token_bytes: u64,
        traces: Vec<AvailabilityTrace>,
    ) -> Self {
        let orch = OrchestratorHandle::single(controller, world.p2p.host_of(controller));
        Self::with_orchestrators(world, orch, name, stages, token_bytes, traces)
    }

    /// Build the pipeline under a decentralised orchestrator set: the
    /// current leader emits tokens and receives results; on failover the
    /// endpoint pipes migrate to the new leader and in-flight tokens are
    /// re-emitted under a fresh attempt.
    pub fn with_orchestrators(
        world: &mut GridWorld,
        orch: OrchestratorHandle,
        name: &str,
        stages: Vec<StageSpec>,
        token_bytes: u64,
        traces: Vec<AvailabilityTrace>,
    ) -> Self {
        let controller = orch.leader_peer();
        assert!(!stages.is_empty(), "pipeline needs at least one stage");
        assert!(
            traces.is_empty() || traces.len() == stages.len(),
            "one availability trace per stage"
        );
        let mut built = Vec::with_capacity(stages.len());
        let mut prev = controller;
        for (i, s) in stages.iter().enumerate() {
            let pipe_name = format!("{name}.stage{i}");
            let in_pipe = world
                .p2p
                .pipes
                .advertise(&pipe_name, s.peer)
                .expect("unique stage pipe names");
            world
                .p2p
                .pipes
                .bind(in_pipe, prev)
                .expect("fresh pipe binds");
            let up = traces.get(i).is_none_or(|t| t.is_up(world.sim.now()));
            if let Some(t) = traces.get(i) {
                world.net.set_online(world.p2p.host_of(s.peer), up);
                for &(start, end) in t.intervals() {
                    if start > SimTime::ZERO {
                        world
                            .sim
                            .schedule_at(start, GridEvent::WorkerUp(WorkerId(i as u32)));
                    }
                    if end < t.horizon() {
                        world
                            .sim
                            .schedule_at(end, GridEvent::WorkerDown(WorkerId(i as u32)));
                    }
                }
            }
            built.push(Stage {
                peer: s.peer,
                spec: s.spec.clone(),
                work: s.work_gigacycles,
                in_pipe,
                queue: Vec::new(),
                busy: false,
                up,
            });
            prev = s.peer;
        }
        let result_pipe = world
            .p2p
            .pipes
            .advertise(&format!("{name}.result"), controller)
            .expect("unique result pipe name");
        world
            .p2p
            .pipes
            .bind(result_pipe, prev)
            .expect("fresh pipe binds");
        PipelineScheduler {
            orch,
            tick_armed: false,
            stages: built,
            result_pipe,
            token_bytes,
            tokens: Vec::new(),
            name: name.to_string(),
            obs: Obs::disabled(),
        }
    }

    /// Attach an observability handle; emissions, re-emissions, completed
    /// tokens and end-to-end latency are recorded through it.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Is the stage currently up? (Chaos invariants: a drained pipeline
    /// with every stage up must have completed all its tokens.)
    pub fn stage_is_up(&self, stage: usize) -> bool {
        self.stages[stage].up
    }

    /// Schedule emission of `count` tokens spaced `interval` apart,
    /// starting now.
    pub fn emit_tokens(&mut self, sim: &mut Sim<GridEvent>, count: u64, interval: Duration) {
        for t in 0..count {
            self.tokens.push(TokenRecord::default());
            sim.schedule(interval * t, GridEvent::EmitToken { token: t });
        }
        if !self.tick_armed && !self.orch.is_single() {
            self.tick_armed = true;
            sim.schedule(self.orch.anti_entropy_interval(), GridEvent::OrchTick);
        }
    }

    /// The orchestrator set driving this pipeline.
    pub fn orchestrators(&self) -> &OrchestratorHandle {
        &self.orch
    }

    /// Route a gossip delivery ([`p2p::Incoming::Orch`]) into the set.
    pub fn orch_deliver(&mut self, to: PeerId, seq: u64, count: u64, sync: bool) {
        self.orch.deliver(to, seq, count, sync);
    }

    /// The orchestrator set changed (election, crash, heal): migrate the
    /// endpoint pipes to the new leader and restart every unfinished token
    /// under a fresh attempt — copies still in flight toward the old
    /// leader (or computing under the old attempt) become stale and are
    /// dropped on arrival, so each token still completes exactly once.
    pub fn on_orch_change(
        &mut self,
        sim: &mut Sim<GridEvent>,
        net: &mut Network,
        p2p: &mut p2p::P2p,
    ) {
        let leader = self.orch.leader_peer();
        // The successor re-advertises the result pipe and takes over the
        // emitter binding of stage 0 (§3.4's named-pipe rebinding, driven
        // by failover instead of group construction).
        let _ = p2p.pipes.rebind_receiver(self.result_pipe, leader);
        let _ = p2p.pipes.rebind_sender(self.stages[0].in_pipe, leader);
        let unfinished: Vec<u64> = self
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, r)| r.emitted.is_some() && r.position != Position::Done)
            .map(|(i, _)| i as u64)
            .collect();
        for t in unfinished {
            self.obs.incr("orch.pipeline_reemits");
            self.reemit(sim, net, p2p, t);
        }
        if !self.tick_armed && !self.orch.is_single() {
            self.tick_armed = true;
            sim.schedule(self.orch.anti_entropy_interval(), GridEvent::OrchTick);
        }
    }

    fn emit(
        &mut self,
        sim: &mut Sim<GridEvent>,
        net: &mut Network,
        p2p: &mut p2p::P2p,
        token: u64,
    ) {
        let rec = &mut self.tokens[token as usize];
        if rec.position == Position::Done {
            return;
        }
        if rec.emitted.is_none() {
            rec.emitted = Some(sim.now());
        }
        rec.attempts_total += 1;
        let attempt = rec.attempt;
        let full = tag(token, rec.attempt);
        let pipe = self.stages[0].in_pipe;
        let emitter = self.orch.leader_peer();
        let sent = p2p
            .send_pipe(sim, net, emitter, pipe, full, self.token_bytes)
            .unwrap_or(false);
        let rec = &mut self.tokens[token as usize];
        if sent {
            rec.position = Position::InTransitTo(0);
            self.obs.incr("pipeline.emissions");
            if attempt > 0 {
                self.obs.incr("pipeline.reemissions");
            }
            self.obs.event(sim.now().as_micros(), "pipeline.emit", || {
                format!("token={token} attempt={attempt}")
            });
        } else {
            // Stage 0 is offline: park until it returns.
            rec.position = Position::Parked;
            self.obs.incr("pipeline.parked");
        }
    }

    /// Re-emit a token with a bumped attempt (stale copies are ignored).
    fn reemit(
        &mut self,
        sim: &mut Sim<GridEvent>,
        net: &mut Network,
        p2p: &mut p2p::P2p,
        token: u64,
    ) {
        self.tokens[token as usize].attempt += 1;
        self.emit(sim, net, p2p, token);
    }

    /// Handle non-overlay grid events addressed to the pipeline.
    pub fn handle(
        &mut self,
        sim: &mut Sim<GridEvent>,
        net: &mut Network,
        p2p: &mut p2p::P2p,
        ev: GridEvent,
    ) {
        match ev {
            GridEvent::EmitToken { token } => {
                self.emit(sim, net, p2p, token);
            }
            GridEvent::StageComputeDone { stage, token: full } => {
                let (token, attempt) = untag(full);
                if self.tokens[token as usize].attempt != attempt {
                    // A stale attempt finished computing (a failover
                    // re-emitted the token mid-compute). The result is
                    // discarded, but the compute slot still frees up —
                    // otherwise the stage stays busy forever and every
                    // queued token deadlocks behind it.
                    if self.stages[stage].up {
                        self.stages[stage].busy = false;
                        self.start_next(sim, stage);
                    }
                    return;
                }
                if !self.stages[stage].up {
                    return; // completed exactly as the stage died
                }
                self.stages[stage].busy = false;
                // Forward downstream.
                let from = self.stages[stage].peer;
                let (pipe, to_result) = if stage + 1 < self.stages.len() {
                    (self.stages[stage + 1].in_pipe, false)
                } else {
                    (self.result_pipe, true)
                };
                let sent = p2p
                    .send_pipe(sim, net, from, pipe, full, self.token_bytes)
                    .unwrap_or(false);
                if sent {
                    self.tokens[token as usize].position = if to_result {
                        Position::InTransitToResult
                    } else {
                        Position::InTransitTo(stage + 1)
                    };
                } else {
                    // The next stage is offline right now: restart the
                    // token from the controller.
                    self.reemit(sim, net, p2p, token);
                }
                self.start_next(sim, stage);
            }
            GridEvent::WorkerDown(WorkerId(s)) => {
                let s = s as usize;
                if s >= self.stages.len() {
                    return;
                }
                self.obs.incr("pipeline.stage_down");
                self.obs
                    .event(sim.now().as_micros(), "pipeline.stage_down", || {
                        format!("stage={s}")
                    });
                self.stages[s].up = false;
                self.stages[s].busy = false;
                self.stages[s].queue.clear();
                net.set_online(p2p.host_of(self.stages[s].peer), false);
                // Restart every token lost with the stage.
                let lost: Vec<u64> = self
                    .tokens
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| {
                        r.position == Position::AtStage(s) || r.position == Position::InTransitTo(s)
                    })
                    .map(|(i, _)| i as u64)
                    .collect();
                for t in lost {
                    self.reemit(sim, net, p2p, t);
                }
            }
            GridEvent::WorkerUp(WorkerId(s)) => {
                let s = s as usize;
                if s >= self.stages.len() {
                    return;
                }
                self.stages[s].up = true;
                net.set_online(p2p.host_of(self.stages[s].peer), true);
                // Re-emit parked tokens (stage 0 outages park them). A
                // fresh record is also `Parked`, so require a prior
                // emission — otherwise a stage recovery before a token's
                // scheduled first emission would send it twice under the
                // same attempt tag.
                let parked: Vec<u64> = self
                    .tokens
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| {
                        r.position == Position::Parked
                            && r.completed.is_none()
                            && r.emitted.is_some()
                    })
                    .map(|(i, _)| i as u64)
                    .collect();
                for t in parked {
                    self.reemit(sim, net, p2p, t);
                }
            }
            GridEvent::OrchTick => {
                let converged = self.orch.anti_entropy_round(sim, net, p2p);
                if (self.all_done() && converged) || self.orch.tick_exhausted() {
                    self.tick_armed = false;
                } else {
                    sim.schedule(self.orch.anti_entropy_interval(), GridEvent::OrchTick);
                }
            }
            _ => {}
        }
    }

    /// Handle overlay notifications (pipe deliveries and gossip).
    pub fn on_incoming(
        &mut self,
        sim: &mut Sim<GridEvent>,
        net: &mut Network,
        p2p: &mut p2p::P2p,
        inc: Incoming,
    ) {
        if let Incoming::Orch {
            to,
            seq,
            count,
            sync,
        } = inc
        {
            self.orch.deliver(to, seq, count, sync);
            return;
        }
        if let Incoming::PipeData {
            pipe, tag: full, ..
        } = inc
        {
            let (token, attempt) = untag(full);
            let Some(rec) = self.tokens.get_mut(token as usize) else {
                return;
            };
            if rec.attempt != attempt || rec.position == Position::Done {
                return; // stale copy from before a retransmission
            }
            if pipe == self.result_pipe {
                rec.completed = Some(sim.now());
                rec.position = Position::Done;
                let latency = rec.emitted.map(|e| sim.now().since(e));
                self.obs.incr("pipeline.tokens_done");
                if let Some(lat) = latency {
                    self.obs
                        .observe("pipeline.token_latency_us", lat.as_micros());
                }
                self.obs
                    .event(sim.now().as_micros(), "pipeline.token_done", || {
                        format!("token={token} attempt={attempt}")
                    });
                self.orch
                    .record(sim, net, p2p, Delta::Complete { job: token });
                return;
            }
            if let Some(idx) = self.stages.iter().position(|s| s.in_pipe == pipe) {
                if !self.stages[idx].up {
                    return; // arrived at a dead stage (possible same-instant race)
                }
                rec.position = Position::AtStage(idx);
                self.stages[idx].queue.push(full);
                self.start_next(sim, idx);
            }
        }
    }

    fn start_next(&mut self, sim: &mut Sim<GridEvent>, stage: usize) {
        let s = &mut self.stages[stage];
        if s.busy || !s.up || s.queue.is_empty() {
            return;
        }
        let full = s.queue.remove(0);
        s.busy = true;
        let exec = s.spec.exec_time(s.work);
        sim.schedule(exec, GridEvent::StageComputeDone { stage, token: full });
    }

    pub fn all_done(&self) -> bool {
        !self.tokens.is_empty() && self.tokens.iter().all(|t| t.completed.is_some())
    }

    /// Emission-to-completion latency of one token, if it finished.
    pub fn token_latency(&self, token: u64) -> Option<Duration> {
        let t = self.tokens.get(token as usize)?;
        match (t.emitted, t.completed) {
            (Some(e), Some(c)) => Some(c.since(e)),
            _ => None,
        }
    }

    pub fn stats(&self) -> PipelineStats {
        let mut st = PipelineStats::default();
        let mut first: Option<SimTime> = None;
        for t in &self.tokens {
            st.emissions += u64::from(t.attempts_total);
            if let (Some(e), Some(c)) = (t.emitted, t.completed) {
                st.tokens_done += 1;
                st.last_done = st.last_done.max(c);
                first = Some(first.map_or(e, |f: SimTime| f.min(e)));
                let lat = c.since(e);
                st.total_latency += lat;
                st.max_latency = st.max_latency.max(lat);
            }
        }
        st.first_emit = first.unwrap_or(SimTime::ZERO);
        st
    }
}

/// Drive the world to completion, routing overlay events through the
/// overlay and surfacing pipe deliveries to the pipeline.
pub fn run_pipeline(world: &mut GridWorld, pl: &mut PipelineScheduler) {
    while let Some(ev) = world.sim.step() {
        match ev {
            GridEvent::P2p(pe) => {
                let incoming = world.p2p.handle(&mut world.sim, &mut world.net, pe);
                for inc in incoming {
                    pl.on_incoming(&mut world.sim, &mut world.net, &mut world.p2p, inc);
                }
            }
            other => pl.handle(&mut world.sim, &mut world.net, &mut world.p2p, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::HostSpec;
    use p2p::DiscoveryMode;

    #[test]
    fn stage_spec_sized_from_prepared_module() {
        let module =
            tvm::asm::assemble(".module M 1 1 1\n.func main 0\n push 1\n outpush 0\n halt\n")
                .unwrap();
        let prepared = tvm::PreparedModule::prepare(&module).unwrap();
        let mut world = GridWorld::new(5, DiscoveryMode::Flooding);
        let (peer, _) = world.add_peer(HostSpec::lan_workstation());
        let small =
            StageSpec::for_prepared_module(peer, HostSpec::lan_workstation(), &prepared, 1_000);
        let big =
            StageSpec::for_prepared_module(peer, HostSpec::lan_workstation(), &prepared, 100_000);
        assert!(small.work_gigacycles > 0.0);
        assert!((big.work_gigacycles / small.work_gigacycles - 100.0).abs() < 1e-9);
    }

    fn build(n_stages: usize, work: f64, token_bytes: u64) -> (GridWorld, PipelineScheduler) {
        let mut world = GridWorld::new(21, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
        let mut stages = Vec::new();
        for _ in 0..n_stages {
            let spec = HostSpec::lan_workstation();
            let (peer, _) = world.add_peer(spec.clone());
            stages.push(StageSpec {
                peer,
                spec,
                work_gigacycles: work,
            });
        }
        let pl = PipelineScheduler::new(&mut world, ctrl, "test", stages, token_bytes);
        (world, pl)
    }

    #[test]
    fn tokens_flow_through_all_stages() {
        let (mut world, mut pl) = build(3, 2.0, 1_000); // 1 s/stage at 2 GHz
        pl.emit_tokens(&mut world.sim, 5, Duration::ZERO);
        run_pipeline(&mut world, &mut pl);
        assert!(pl.all_done());
        let st = pl.stats();
        assert_eq!(st.tokens_done, 5);
        assert_eq!(st.emissions, 5, "no retransmissions without churn");
        // Latency of the first token: ~3 s of compute + small transfers.
        assert!(st.max_latency.as_secs_f64() < 20.0);
    }

    #[test]
    fn recovery_before_first_emission_does_not_duplicate_tokens() {
        // Regression (found by the chaos sweep): a WorkerUp landing while
        // later tokens still await their scheduled first emission used to
        // re-emit those fresh records (default position is Parked), and
        // the scheduled emission then sent a second copy under the same
        // attempt tag — every affected token completed twice.
        let (mut world, mut pl) = build(3, 2.0, 1_000);
        pl.emit_tokens(&mut world.sim, 5, Duration::from_secs(1));
        world
            .sim
            .schedule(Duration::from_millis(500), GridEvent::WorkerUp(WorkerId(0)));
        run_pipeline(&mut world, &mut pl);
        assert!(pl.all_done());
        let st = pl.stats();
        assert_eq!(st.tokens_done, 5);
        assert_eq!(st.emissions, 5, "a no-op recovery must not re-emit");
    }

    #[test]
    fn pipeline_throughput_set_by_slowest_stage() {
        // 4 stages of 1 s each: steady-state throughput ~1 token/s even
        // though per-token latency is ~4 s.
        let (mut world, mut pl) = build(4, 2.0, 1_000);
        pl.emit_tokens(&mut world.sim, 20, Duration::ZERO);
        run_pipeline(&mut world, &mut pl);
        let st = pl.stats();
        assert_eq!(st.tokens_done, 20);
        let thr = st.throughput();
        assert!((0.8..1.1).contains(&thr), "throughput {thr}");
        assert!(st.mean_latency().as_secs_f64() > 3.9);
    }

    #[test]
    fn single_stage_behaves_like_remote_call() {
        let (mut world, mut pl) = build(1, 4.0, 10_000); // 2 s at 2 GHz
        pl.emit_tokens(&mut world.sim, 1, Duration::ZERO);
        run_pipeline(&mut world, &mut pl);
        let st = pl.stats();
        assert_eq!(st.tokens_done, 1);
        assert!(
            (2.0..2.5).contains(&st.max_latency.as_secs_f64()),
            "{}",
            st.max_latency
        );
    }

    #[test]
    fn spaced_emission_reduces_queueing() {
        let burst = {
            let (mut world, mut pl) = build(2, 2.0, 1_000);
            pl.emit_tokens(&mut world.sim, 10, Duration::ZERO);
            run_pipeline(&mut world, &mut pl);
            pl.stats().mean_latency()
        };
        let spaced = {
            let (mut world, mut pl) = build(2, 2.0, 1_000);
            pl.emit_tokens(&mut world.sim, 10, Duration::from_secs(2));
            run_pipeline(&mut world, &mut pl);
            pl.stats().mean_latency()
        };
        assert!(
            spaced.as_secs_f64() < burst.as_secs_f64(),
            "spaced {spaced} vs burst {burst}"
        );
    }

    #[test]
    fn stage_pipe_names_are_unique_per_pipeline() {
        let mut world = GridWorld::new(3, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
        let (p1, _) = world.add_peer(HostSpec::lan_workstation());
        let mk = |world: &mut GridWorld, name: &str| {
            PipelineScheduler::new(
                world,
                ctrl,
                name,
                vec![StageSpec {
                    peer: p1,
                    spec: HostSpec::lan_workstation(),
                    work_gigacycles: 1.0,
                }],
                100,
            )
        };
        let a = mk(&mut world, "jobA");
        let b = mk(&mut world, "jobB");
        assert_ne!(a.stages[0].in_pipe, b.stages[0].in_pipe);
    }

    fn build_churny(
        stage_traces: Vec<AvailabilityTrace>,
        work: f64,
    ) -> (GridWorld, PipelineScheduler) {
        let mut world = GridWorld::new(77, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
        let mut stages = Vec::new();
        for _ in 0..stage_traces.len() {
            let spec = HostSpec::lan_workstation();
            let (peer, _) = world.add_peer(spec.clone());
            stages.push(StageSpec {
                peer,
                spec,
                work_gigacycles: work,
            });
        }
        let pl =
            PipelineScheduler::with_churn(&mut world, ctrl, "churny", stages, 1_000, stage_traces);
        (world, pl)
    }

    #[test]
    fn stage_outage_retransmits_and_all_tokens_complete() {
        let horizon = SimTime::from_secs(10_000);
        // Stage 1 is down between t=5 s and t=60 s.
        let traces = vec![
            AvailabilityTrace::always(horizon),
            AvailabilityTrace::from_intervals(
                vec![
                    (SimTime::ZERO, SimTime::from_secs(5)),
                    (SimTime::from_secs(60), horizon),
                ],
                horizon,
            ),
            AvailabilityTrace::always(horizon),
        ];
        let (mut world, mut pl) = build_churny(traces, 2.0); // 1 s/stage
        pl.emit_tokens(&mut world.sim, 10, Duration::from_secs(1));
        run_pipeline(&mut world, &mut pl);
        assert!(pl.all_done(), "{:?}", pl.stats());
        let st = pl.stats();
        assert_eq!(st.tokens_done, 10);
        assert!(
            st.emissions > 10,
            "outage must force retransmissions: {st:?}"
        );
        // Tokens caught by the outage waited for the stage to return.
        assert!(st.max_latency.as_secs_f64() > 50.0, "{st:?}");
    }

    #[test]
    fn first_stage_outage_parks_tokens_until_recovery() {
        let horizon = SimTime::from_secs(10_000);
        let traces = vec![AvailabilityTrace::from_intervals(
            vec![(SimTime::from_secs(30), horizon)],
            horizon,
        )];
        let (mut world, mut pl) = build_churny(traces, 2.0);
        pl.emit_tokens(&mut world.sim, 3, Duration::ZERO);
        run_pipeline(&mut world, &mut pl);
        assert!(pl.all_done());
        let st = pl.stats();
        // Everything waited for t=30 s.
        assert!(st.max_latency.as_secs_f64() >= 30.0, "{st:?}");
    }

    #[test]
    fn churn_free_traces_behave_like_plain_pipeline() {
        let horizon = SimTime::from_secs(10_000);
        let traces = vec![AvailabilityTrace::always(horizon); 3];
        let (mut world, mut pl) = build_churny(traces, 2.0);
        pl.emit_tokens(&mut world.sim, 5, Duration::ZERO);
        run_pipeline(&mut world, &mut pl);
        let st = pl.stats();
        assert_eq!(st.tokens_done, 5);
        assert_eq!(st.emissions, 5);
    }
}
