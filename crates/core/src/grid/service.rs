//! Triana Service and Triana Controller actors.
//!
//! §3.2: "there are two distinct components in the Triana implementation:
//! the Triana Service (TS) and the Triana Controller (TC) … A single Triana
//! controller can control multiple Triana networks deployed over multiple
//! CPU resources." Here the Service is the volunteer-side daemon — it
//! advertises what the peer offers and meters usage into its billing ledger
//! — and the Controller is the user side: it discovers services, selects
//! providers, and binds pipelines (Case 3).

use netsim::{Duration, SimTime};
use p2p::advert::{AdvertBody, PeerAdvert};
use p2p::{Advertisement, PeerId, QueryId, QueryKind};
use resources::account::{BillingLedger, UsageRecord, VirtualAccount};
use resources::trust::ResourcePolicy;

use crate::grid::{GridEvent, GridWorld};

/// The daemon hosted on a volunteer peer (§3.2's "Triana Service").
pub struct TrianaService {
    pub peer: PeerId,
    /// Service names offered (always includes `"triana"`).
    pub services: Vec<p2p::Sym>,
    pub policy: ResourcePolicy,
    pub ledger: BillingLedger,
}

impl TrianaService {
    pub fn new(peer: PeerId, extra_services: &[&str], policy: ResourcePolicy) -> Self {
        let mut services = vec![p2p::Sym::new("triana")];
        services.extend(extra_services.iter().map(|s| p2p::Sym::new(s)));
        TrianaService {
            peer,
            services,
            policy,
            ledger: BillingLedger::new(),
        }
    }

    /// Publish this peer's advertisement (capabilities + services).
    pub fn advertise(&self, world: &mut GridWorld, lifetime: Duration) {
        let host = world.p2p.host_of(self.peer);
        let spec = world.net.spec(host).clone();
        let ad = Advertisement {
            body: AdvertBody::Peer(PeerAdvert {
                peer: self.peer,
                cpu_ghz: spec.cpu_ghz,
                free_ram_mib: self.policy.max_guest_ram_mib.min(spec.ram_mib),
                services: self.services.clone(),
            }),
            expires: world.sim.now() + lifetime,
        };
        let peer = self.peer;
        world.p2p.publish(&mut world.sim, &mut world.net, peer, ad);
    }

    /// Meter one guest execution into the ledger (virtual-account billing,
    /// §2).
    pub fn meter(
        &mut self,
        account: &VirtualAccount,
        at: SimTime,
        cpu: Duration,
        bytes_in: u64,
        bytes_out: u64,
        instructions: u64,
    ) {
        self.ledger.charge(
            account,
            UsageRecord {
                at,
                cpu,
                bytes_in,
                bytes_out,
                instructions,
            },
        );
    }
}

/// How the controller picks among multiple discovered providers ("the user
/// may be asked to select a service based on other options that a given
/// service provides", §3.6.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Selection {
    /// First hit to arrive (lowest discovery latency).
    FirstHit,
    /// The advertised peer with the highest CPU.
    FastestCpu,
}

/// The user-side controller (§3.2's "Triana Controller").
pub struct TrianaController {
    pub peer: PeerId,
    pub account: VirtualAccount,
}

impl TrianaController {
    pub fn new(peer: PeerId, user: &str) -> Self {
        TrianaController {
            peer,
            account: VirtualAccount(user.to_string()),
        }
    }

    /// Issue a discovery query from the controller's peer.
    pub fn discover(&self, world: &mut GridWorld, kind: QueryKind, ttl: u8) -> QueryId {
        let peer = self.peer;
        world
            .p2p
            .query(&mut world.sim, &mut world.net, peer, kind, ttl)
    }

    /// Drain all pending events (overlay only — no schedulers attached).
    pub fn drain(&self, world: &mut GridWorld) {
        while let Some(ev) = world.sim.step() {
            if let GridEvent::P2p(pe) = ev {
                world.p2p.handle(&mut world.sim, &mut world.net, pe);
            }
        }
    }

    /// Select one provider from a completed query's hits.
    pub fn select(&self, world: &GridWorld, query: QueryId, how: Selection) -> Option<PeerId> {
        let status = world.p2p.queries.get(&query)?;
        match how {
            Selection::FirstHit => status.hits.first().map(|(_, ad)| ad.peer()),
            Selection::FastestCpu => status
                .hits
                .iter()
                .filter_map(|(_, ad)| match &ad.body {
                    AdvertBody::Peer(p) => Some((p.cpu_ghz, p.peer)),
                    _ => None,
                })
                .max_by(|a, b| a.0.partial_cmp(&b.0).expect("cpu_ghz is finite"))
                .map(|(_, p)| p),
        }
    }

    /// Discover peers offering the `triana` service with at least
    /// `min_cpu_ghz`, returning up to `max` distinct providers — the worker
    /// enrolment step before farming a group out.
    pub fn enroll_workers(
        &self,
        world: &mut GridWorld,
        min_cpu_ghz: f64,
        max: usize,
        ttl: u8,
    ) -> Vec<PeerId> {
        let q = self.discover(
            world,
            QueryKind::ByCapability {
                min_cpu_ghz,
                min_ram_mib: 0,
            },
            ttl,
        );
        self.drain(world);
        let mut providers = world.p2p.queries[&q].providers();
        providers.retain(|&p| p != self.peer);
        providers.truncate(max);
        providers
    }

    /// Case 3 (§3.6.3): discover one provider per service type, in pipeline
    /// order, and return the bound sequence. Fails with the name of the
    /// first service that found no provider.
    pub fn bind_service_pipeline(
        &self,
        world: &mut GridWorld,
        service_names: &[&str],
        how: Selection,
        ttl: u8,
    ) -> Result<Vec<PeerId>, String> {
        let mut bound = Vec::with_capacity(service_names.len());
        for name in service_names {
            let q = self.discover(world, QueryKind::ByService((*name).into()), ttl);
            self.drain(world);
            match self.select(world, q, how) {
                Some(p) => bound.push(p),
                None => return Err(format!("no provider for service `{name}`")),
            }
        }
        Ok(bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{HostSpec, Pcg32};
    use p2p::DiscoveryMode;

    fn volunteer_world(n: usize) -> (GridWorld, Vec<TrianaService>) {
        let mut world = GridWorld::new(31, DiscoveryMode::Flooding);
        let mut services = Vec::new();
        let mut rng = Pcg32::new(5, 0);
        for _ in 0..n {
            let spec = HostSpec::sample_consumer(&mut rng);
            let (peer, _) = world.add_peer(spec);
            services.push(TrianaService::new(
                peer,
                &[],
                ResourcePolicy::sandbox_default(256),
            ));
        }
        let mut wiring = Pcg32::new(6, 1);
        world.p2p.wire_random(4, &mut wiring);
        (world, services)
    }

    #[test]
    fn enroll_workers_finds_capable_peers() {
        let (mut world, services) = volunteer_world(20);
        for s in &services[1..] {
            s.advertise(&mut world, Duration::from_secs(3600));
        }
        let ctl = TrianaController::new(services[0].peer, "alice");
        let workers = ctl.enroll_workers(&mut world, 1.0, 8, 8);
        assert!(!workers.is_empty());
        assert!(workers.len() <= 8);
        assert!(!workers.contains(&ctl.peer));
        // All enrolled peers meet the CPU floor.
        for w in &workers {
            let h = world.p2p.host_of(*w);
            assert!(world.net.spec(h).cpu_ghz >= 1.0);
        }
    }

    #[test]
    fn bind_service_pipeline_in_order() {
        let mut world = GridWorld::new(33, DiscoveryMode::Flooding);
        let kinds = [
            "data-access",
            "data-manipulate",
            "data-visualise",
            "data-verify",
        ];
        let (ctl_peer, _) = world.add_peer(HostSpec::lan_workstation());
        let mut providers = Vec::new();
        for k in kinds {
            let (p, _) = world.add_peer(HostSpec::lan_workstation());
            let svc = TrianaService::new(p, &[k], ResourcePolicy::sandbox_default(256));
            providers.push(svc);
        }
        let mut rng = Pcg32::new(7, 2);
        world.p2p.wire_random(3, &mut rng);
        for s in &providers {
            s.advertise(&mut world, Duration::from_secs(3600));
        }
        let ctl = TrianaController::new(ctl_peer, "bob");
        let bound = ctl
            .bind_service_pipeline(&mut world, &kinds, Selection::FirstHit, 8)
            .unwrap();
        assert_eq!(bound.len(), 4);
        for (i, peer) in bound.iter().enumerate() {
            assert_eq!(*peer, providers[i].peer, "stage {i} bound to wrong peer");
        }
    }

    #[test]
    fn missing_service_reports_its_name() {
        let (mut world, services) = volunteer_world(5);
        for s in &services {
            s.advertise(&mut world, Duration::from_secs(3600));
        }
        let ctl = TrianaController::new(services[0].peer, "carol");
        let err = ctl
            .bind_service_pipeline(&mut world, &["no-such-service"], Selection::FirstHit, 8)
            .unwrap_err();
        assert!(err.contains("no-such-service"));
    }

    #[test]
    fn fastest_cpu_selection_picks_the_fastest_provider() {
        let mut world = GridWorld::new(35, DiscoveryMode::Flooding);
        let (ctl_peer, _) = world.add_peer(HostSpec::lan_workstation());
        let mut mk = |ghz: f64| {
            let mut spec = HostSpec::lan_workstation();
            spec.cpu_ghz = ghz;
            let (p, _) = world.add_peer(spec);
            TrianaService::new(p, &["render"], ResourcePolicy::sandbox_default(512))
        };
        let slow = mk(1.0);
        let fast = mk(3.0);
        let mut rng = Pcg32::new(9, 4);
        world.p2p.wire_random(2, &mut rng);
        slow.advertise(&mut world, Duration::from_secs(3600));
        fast.advertise(&mut world, Duration::from_secs(3600));
        let ctl = TrianaController::new(ctl_peer, "dave");
        let q = ctl.discover(&mut world, QueryKind::ByService("render".into()), 8);
        ctl.drain(&mut world);
        assert_eq!(
            ctl.select(&world, q, Selection::FastestCpu),
            Some(fast.peer)
        );
    }

    #[test]
    fn service_meters_usage_per_account() {
        let (world, mut services) = volunteer_world(1);
        let alice = VirtualAccount("alice".into());
        let now = world.now();
        services[0].meter(&alice, now, Duration::from_secs(12), 1_000, 200, 5_000);
        services[0].meter(&alice, now, Duration::from_secs(8), 500, 100, 3_000);
        let totals = services[0].ledger.totals(&alice);
        assert_eq!(totals.jobs, 2);
        assert_eq!(totals.cpu, Duration::from_secs(20));
        assert_eq!(totals.instructions, 8_000);
    }
}
