//! Redundant execution and result voting — the verification layer for the
//! paper's open security problem.
//!
//! §3.7: "although a user may agree to contribute their resources … they
//! would not have direct control of what application actually utilises
//! their resource … it is possible for a user to disguise the computational
//! tasks they distribute to peers". The converse threat — volunteers
//! returning *wrong results* — is the one SETI@home met with redundancy:
//! run every work unit on several independent peers and accept the
//! majority. This module implements that layer over the farm:
//!
//! * each logical work unit becomes `replicas` farm jobs,
//! * replica results are compared (as result digests), a quorum accepts,
//! * minority workers lose **reputation**; consistently wrong peers can be
//!   excluded by policy.

use std::collections::HashMap;

use netsim::Pcg32;
use obs::Obs;
use trust::beta_score;

use crate::grid::farm::{FarmScheduler, JobSpec};
use crate::grid::{GridWorld, JobId, WorkerId};
use crate::modules::ModuleKey;

/// Digest of a real execution's outputs: FNV-1a 64 over every output
/// port's length and sample bit patterns. Comparing bit patterns (not
/// values) keeps the digest total — two replicas that both produce NaN
/// from the same deterministic program still agree — so votes over real
/// TVM runs behave exactly like votes over modeled digests.
pub fn executed_digest(outputs: &[Vec<f64>]) -> u64 {
    let mut bytes = Vec::with_capacity(8 + outputs.iter().map(|p| 8 + p.len() * 8).sum::<usize>());
    bytes.extend_from_slice(&(outputs.len() as u64).to_le_bytes());
    for port in outputs {
        bytes.extend_from_slice(&(port.len() as u64).to_le_bytes());
        for &x in port {
            bytes.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }
    tvm::fnv1a64(&bytes)
}

/// Run a module resident in `wid`'s cache through the farm's prepared
/// fast path and digest the outputs — the production-shaped replica
/// digest (the modeled [`Behaviour`] digests remain the experiment
/// default). Returns `None` if the module is not resident on the worker
/// or the sandboxed run fails; a failed replica simply casts no vote.
pub fn run_replica_digest(
    farm: &mut FarmScheduler,
    wid: WorkerId,
    key: &ModuleKey,
    inputs: &[&[f64]],
    policy: &tvm::SandboxPolicy,
) -> Option<u64> {
    let (outputs, _) = farm.execute_resident(wid, key, inputs, policy)?.ok()?;
    Some(executed_digest(&outputs))
}

/// How a simulated volunteer behaves.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Behaviour {
    /// Always returns the correct result.
    Honest,
    /// Returns a wrong result with the given probability per replica.
    Cheater { cheat_prob: f64 },
}

/// Redundancy parameters.
#[derive(Clone, Copy, Debug)]
pub struct RedundancyConfig {
    /// Replicas per logical unit (distinct workers produce each).
    pub replicas: usize,
    /// Matching digests required to accept a result.
    pub quorum: usize,
}

impl RedundancyConfig {
    /// SETI-style triple redundancy with majority quorum.
    pub fn triple() -> Self {
        RedundancyConfig {
            replicas: 3,
            quorum: 2,
        }
    }
}

/// Outcome of voting on one logical unit.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// A digest reached quorum; the listed workers disagreed with it.
    Accepted { dissenters: Vec<WorkerId> },
    /// No digest reached quorum.
    Unresolved,
    /// Not all replicas completed.
    Incomplete,
}

/// Running trust score for one worker.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Reputation {
    /// Replicas where the worker agreed with the accepted result.
    pub agreed: u64,
    /// Replicas where it dissented from the accepted result.
    pub dissented: u64,
}

impl Reputation {
    /// Prior-smoothed fraction of votes on the winning side (Laplace /
    /// Beta(1,1) smoothing). An unobserved worker scores a *neutral* 0.5,
    /// not a perfect 1.0: trust is earned by verified agreement, never
    /// assumed — a fresh identity must not outrank a proven one (which
    /// would make whitewashing a cheap attack).
    pub fn score(&self) -> f64 {
        beta_score(self.agreed as f64, self.dissented as f64)
    }
}

/// Adaptive replication settings: replication drops to a single audit-free
/// replica for workers with a proven record, and escalates back to the
/// full [`RedundancyConfig::replicas`] for everyone else.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveConfig {
    /// Profile trust score (see [`trust`]) a worker must hold before its
    /// clean streak can earn single-replica acceptance.
    pub trust_threshold: f64,
    /// Consecutive verified-clean units required before replication drops
    /// to 1 for that worker.
    pub clean_streak: u32,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            trust_threshold: 0.85,
            clean_streak: 3,
        }
    }
}

/// One logical unit's replica bookkeeping.
#[derive(Clone, Debug)]
pub struct LogicalUnit {
    pub jobs: Vec<JobId>,
    /// True-result digest for this unit.
    digest: u64,
    /// Job spec kept around for adaptive escalation resubmits.
    spec: Option<JobSpec>,
    /// Accepted on the runner's trust alone (single replica, no vote).
    accepted_on_trust: bool,
    /// Evidence already fed into profiles/streaks (idempotence guard).
    applied: bool,
}

/// The redundancy layer over a [`FarmScheduler`].
pub struct VotingFarm {
    pub config: RedundancyConfig,
    pub units: Vec<LogicalUnit>,
    behaviours: Vec<Behaviour>,
    rng: Pcg32,
    adaptive: Option<AdaptiveConfig>,
    /// Consecutive verified-clean units per worker.
    streaks: HashMap<WorkerId, u32>,
    obs: Obs,
}

impl VotingFarm {
    /// `behaviours[i]` describes farm worker `i`.
    pub fn new(config: RedundancyConfig, behaviours: Vec<Behaviour>, seed: u64) -> Self {
        assert!(config.quorum >= 1 && config.quorum <= config.replicas);
        VotingFarm {
            config,
            units: Vec::new(),
            behaviours,
            rng: Pcg32::new(seed, 0xF00D),
            adaptive: None,
            streaks: HashMap::new(),
            obs: Obs::disabled(),
        }
    }

    /// Enable adaptive replication (see [`AdaptiveConfig`]).
    pub fn set_adaptive(&mut self, cfg: AdaptiveConfig) {
        self.adaptive = Some(cfg);
    }

    /// The configured per-worker behaviours (chaos invariants count the
    /// cheaters to know whether a wrong accepted digest is a soundness
    /// breach or an out-voted honest minority).
    pub fn behaviours(&self) -> &[Behaviour] {
        &self.behaviours
    }

    /// Attach an observability handle for `trust.units_*` counters.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Submit one logical unit as `replicas` farm jobs.
    pub fn submit_unit(
        &mut self,
        farm: &mut FarmScheduler,
        world: &mut GridWorld,
        spec: JobSpec,
    ) -> usize {
        let digest = self.rng.next_u64() | 1; // nonzero true digest
        let mut jobs: Vec<JobId> = Vec::with_capacity(self.config.replicas);
        for _ in 0..self.config.replicas {
            // Replicas of a unit must land on distinct workers, or a single
            // bad volunteer could form its own quorum.
            let id = farm.submit_with_conflicts(world, spec.clone(), jobs.clone());
            jobs.push(id);
        }
        self.units.push(LogicalUnit {
            jobs,
            digest,
            spec: None,
            accepted_on_trust: false,
            applied: false,
        });
        self.units.len() - 1
    }

    /// Submit one logical unit with a single *probe* replica. Once the
    /// probe completes, [`resolve_unit`](Self::resolve_unit) either
    /// accepts it on the runner's trust or escalates to full replication.
    pub fn submit_unit_adaptive(
        &mut self,
        farm: &mut FarmScheduler,
        world: &mut GridWorld,
        spec: JobSpec,
    ) -> usize {
        assert!(
            self.adaptive.is_some(),
            "call set_adaptive before submit_unit_adaptive"
        );
        let digest = self.rng.next_u64() | 1;
        let id = farm.submit(world, spec.clone());
        self.units.push(LogicalUnit {
            jobs: vec![id],
            digest,
            spec: Some(spec),
            accepted_on_trust: false,
            applied: false,
        });
        self.units.len() - 1
    }

    /// After an adaptive unit's probe replica completed: accept the result
    /// on the runner's trust (proven clean streak, high profile trust, not
    /// blacklisted), or escalate the unit to full replication so the vote
    /// can catch a wrong result. No-op for non-adaptive or already
    /// escalated units.
    pub fn resolve_unit(&mut self, farm: &mut FarmScheduler, world: &mut GridWorld, unit: usize) {
        let Some(cfg) = self.adaptive else {
            return;
        };
        if self.units[unit].jobs.len() > 1 || self.units[unit].accepted_on_trust {
            return;
        }
        let Some(w) = farm.job_completed_by(self.units[unit].jobs[0]) else {
            return; // probe still in flight
        };
        let trusted = farm.profiles().trust(w.0) >= cfg.trust_threshold
            && self.streaks.get(&w).copied().unwrap_or(0) >= cfg.clean_streak
            && !farm.worker_blacklisted(w);
        if trusted {
            self.units[unit].accepted_on_trust = true;
            self.obs.incr("trust.units_accepted_on_trust");
        } else {
            let spec = self.units[unit]
                .spec
                .clone()
                .expect("adaptive units keep their spec");
            let mut jobs = self.units[unit].jobs.clone();
            for _ in 1..self.config.replicas {
                let id = farm.submit_with_conflicts(world, spec.clone(), jobs.clone());
                jobs.push(id);
            }
            self.units[unit].jobs = jobs;
            self.obs.incr("trust.units_escalated");
        }
    }

    /// Feed one unit's voting outcome into the farm's worker profiles and
    /// the clean-streak table (idempotent; incomplete units are skipped so
    /// a later call can pick them up).
    pub fn apply_unit(&mut self, farm: &mut FarmScheduler, unit: usize) {
        if self.units[unit].applied {
            return;
        }
        if self.units[unit].accepted_on_trust {
            // No vote happened: acceptance rests on prior evidence, and
            // recording it as fresh agreement would let trust feed itself.
            self.units[unit].applied = true;
            return;
        }
        match self.verdict(farm, unit) {
            Verdict::Accepted { dissenters } => {
                self.units[unit].applied = true;
                for &job in &self.units[unit].jobs.clone() {
                    if let Some(w) = farm.job_completed_by(job) {
                        let agreed = !dissenters.contains(&w);
                        farm.record_vote(w, agreed);
                        let s = self.streaks.entry(w).or_insert(0);
                        if agreed {
                            *s += 1;
                        } else {
                            *s = 0;
                        }
                    }
                }
            }
            // No quorum: nobody can be praised or blamed.
            Verdict::Unresolved => self.units[unit].applied = true,
            Verdict::Incomplete => {}
        }
    }

    /// Total farm jobs spent across all units (replication cost).
    pub fn total_replicas(&self) -> usize {
        self.units.iter().map(|u| u.jobs.len()).sum()
    }

    /// Units accepted on trust alone (single replica, no vote).
    pub fn accepted_on_trust(&self) -> usize {
        self.units.iter().filter(|u| u.accepted_on_trust).count()
    }

    /// Digest a worker's replica result given its behaviour (deterministic
    /// per (unit, worker) pair).
    fn replica_digest(&self, unit: usize, worker: WorkerId) -> u64 {
        let truth = self.units[unit].digest;
        match self.behaviours.get(worker.0 as usize) {
            Some(Behaviour::Cheater { cheat_prob }) => {
                // Deterministic per-(unit, worker) coin.
                let mut coin = Pcg32::new(truth ^ ((worker.0 as u64) << 32) ^ unit as u64, 0xBAD);
                if coin.uniform() < *cheat_prob {
                    // A wrong-but-consistent digest per worker (colluding
                    // cheaters are out of scope, as for SETI).
                    truth.wrapping_mul(0x9E3779B97F4A7C15) ^ worker.0 as u64
                } else {
                    truth
                }
            }
            _ => truth,
        }
    }

    /// Vote on one unit after the farm has run. Units accepted on trust
    /// carry no vote: they are reported accepted with no dissenters.
    pub fn verdict(&self, farm: &FarmScheduler, unit: usize) -> Verdict {
        let u = &self.units[unit];
        if u.accepted_on_trust {
            return Verdict::Accepted { dissenters: vec![] };
        }
        let mut votes: Vec<(WorkerId, u64)> = Vec::with_capacity(u.jobs.len());
        for &job in &u.jobs {
            match farm.job_completed_by(job) {
                Some(w) => votes.push((w, self.replica_digest(unit, w))),
                None => return Verdict::Incomplete,
            }
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for &(_, d) in &votes {
            *counts.entry(d).or_insert(0) += 1;
        }
        let (best_digest, best_count) = counts
            .iter()
            .max_by_key(|(_, &c)| c)
            .map(|(&d, &c)| (d, c))
            .expect("at least one vote");
        if best_count >= self.config.quorum {
            let dissenters = votes
                .iter()
                .filter(|&&(_, d)| d != best_digest)
                .map(|&(w, _)| w)
                .collect();
            Verdict::Accepted { dissenters }
        } else {
            Verdict::Unresolved
        }
    }

    /// Experiment oracle: did the digest that won the vote differ from
    /// the unit's true digest? (Only the simulation knows the truth;
    /// production voting has no such oracle.)
    pub fn accepted_digest_is_wrong(&self, farm: &FarmScheduler, unit: usize) -> bool {
        let u = &self.units[unit];
        if u.accepted_on_trust {
            // Single trusted runner: its digest was accepted unexamined.
            return farm
                .job_completed_by(u.jobs[0])
                .is_some_and(|w| self.replica_digest(unit, w) != u.digest);
        }
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for &job in &u.jobs {
            if let Some(w) = farm.job_completed_by(job) {
                *counts.entry(self.replica_digest(unit, w)).or_insert(0) += 1;
            }
        }
        let winner = counts.iter().max_by_key(|(_, &c)| c).map(|(&d, &c)| (d, c));
        match winner {
            Some((digest, count)) if count >= self.config.quorum => digest != u.digest,
            _ => false,
        }
    }

    /// Vote on all units, returning verdicts and the reputation table.
    pub fn tally(&self, farm: &FarmScheduler) -> (Vec<Verdict>, HashMap<WorkerId, Reputation>) {
        let mut reps: HashMap<WorkerId, Reputation> = HashMap::new();
        let verdicts: Vec<Verdict> = (0..self.units.len())
            .map(|i| {
                let v = self.verdict(farm, i);
                if let Verdict::Accepted { dissenters } = &v {
                    let dissent: Vec<WorkerId> = dissenters.clone();
                    for &job in &self.units[i].jobs {
                        if let Some(w) = farm.job_completed_by(job) {
                            let r = reps.entry(w).or_default();
                            if dissent.contains(&w) {
                                r.dissented += 1;
                            } else {
                                r.agreed += 1;
                            }
                        }
                    }
                }
                v
            })
            .collect();
        (verdicts, reps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::farm::{run_farm, FarmConfig};
    use crate::grid::WorkerSetup;
    use netsim::avail::AvailabilityTrace;
    use netsim::{HostSpec, SimTime};
    use p2p::DiscoveryMode;

    fn setup(behaviours: Vec<Behaviour>) -> (GridWorld, FarmScheduler, VotingFarm) {
        let mut world = GridWorld::new(77, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
        let mut farm = FarmScheduler::new(&world, ctrl, FarmConfig::default());
        let horizon = SimTime::from_secs(1_000_000);
        for _ in 0..behaviours.len() {
            let spec = HostSpec::lan_workstation();
            let (peer, _) = world.add_peer(spec.clone());
            farm.add_worker(
                &mut world,
                WorkerSetup {
                    peer,
                    spec,
                    trace: AvailabilityTrace::always(horizon),
                    cache_bytes: 1 << 20,
                },
            );
        }
        let voting = VotingFarm::new(RedundancyConfig::triple(), behaviours, 1);
        (world, farm, voting)
    }

    fn job() -> JobSpec {
        JobSpec {
            work_gigacycles: 10.0,
            input_bytes: 1_000,
            output_bytes: 1_000,
            module: None,
        }
    }

    #[test]
    fn executed_digests_agree_across_replicas_and_separate_inputs() {
        let (mut world, mut farm, _) = setup(vec![Behaviour::Honest; 2]);
        let key = ModuleKey::new("Doubler", 1);
        let blob = tvm::asm::assemble(
            ".module Doubler 1 1 1\n.func main 2\n inlen 0\n store 0\n push 0\n store 1\n\
             loop:\n load 1\n load 0\n lt\n jz end\n load 1\n inget 0\n push 2\n mul\n \
             outpush 0\n load 1\n push 1\n add\n store 1\n jmp loop\n end:\n halt\n",
        )
        .unwrap()
        .to_blob();
        farm.library.publish(key.clone(), blob);
        // Conflicting jobs force the module onto both workers.
        let j0 = farm.submit(
            &mut world,
            JobSpec {
                module: Some(key.clone()),
                ..job()
            },
        );
        farm.submit_with_conflicts(
            &mut world,
            JobSpec {
                module: Some(key.clone()),
                ..job()
            },
            vec![j0],
        );
        run_farm(&mut world, &mut farm);
        assert!(farm.all_done());

        let policy = tvm::SandboxPolicy::standard();
        let input: &[f64] = &[1.0, 2.0, 3.0];
        let d0 = run_replica_digest(&mut farm, WorkerId(0), &key, &[input], &policy)
            .expect("resident on worker 0");
        let d1 = run_replica_digest(&mut farm, WorkerId(1), &key, &[input], &policy)
            .expect("resident on worker 1");
        assert_eq!(d0, d1, "deterministic execution votes agree");
        let other = run_replica_digest(&mut farm, WorkerId(0), &key, &[&[9.0]], &policy).unwrap();
        assert_ne!(d0, other, "different work units digest differently");
        // A module nobody fetched casts no vote.
        assert!(run_replica_digest(
            &mut farm,
            WorkerId(0),
            &ModuleKey::new("X", 1),
            &[],
            &policy
        )
        .is_none());
    }

    #[test]
    fn executed_digest_is_total_over_nan_outputs() {
        // 0/0 is NaN; digests over bit patterns must still be stable.
        let nan_out = vec![vec![f64::NAN, 1.0]];
        assert_eq!(executed_digest(&nan_out), executed_digest(&nan_out));
        assert_ne!(executed_digest(&nan_out), executed_digest(&[vec![1.0]]));
        // Port structure matters, not just the flattened samples.
        assert_ne!(
            executed_digest(&[vec![1.0, 2.0]]),
            executed_digest(&[vec![1.0], vec![2.0]])
        );
    }

    #[test]
    fn honest_pool_accepts_everything_with_no_dissenters() {
        let (mut world, mut farm, mut voting) = setup(vec![Behaviour::Honest; 4]);
        for _ in 0..5 {
            voting.submit_unit(&mut farm, &mut world, job());
        }
        run_farm(&mut world, &mut farm);
        let (verdicts, reps) = voting.tally(&farm);
        for v in &verdicts {
            assert_eq!(v, &Verdict::Accepted { dissenters: vec![] });
        }
        for r in reps.values() {
            assert_eq!(r.dissented, 0);
            // Prior-smoothed: a clean record scores high but never a
            // perfect 1.0 (that would equal blind trust).
            assert!(r.score() > 0.5 && r.score() < 1.0, "{r:?}");
        }
    }

    #[test]
    fn fresh_workers_score_neutral_not_perfect() {
        let fresh = Reputation::default();
        assert_eq!(fresh.score(), 0.5);
        let proven = Reputation {
            agreed: 20,
            dissented: 0,
        };
        assert!(
            proven.score() > fresh.score(),
            "a proven worker must outrank an unobserved one"
        );
        let caught = Reputation {
            agreed: 0,
            dissented: 2,
        };
        assert!(caught.score() < fresh.score());
    }

    #[test]
    fn single_always_cheater_is_outvoted_and_flagged() {
        let behaviours = vec![
            Behaviour::Cheater { cheat_prob: 1.0 },
            Behaviour::Honest,
            Behaviour::Honest,
            Behaviour::Honest,
        ];
        let (mut world, mut farm, mut voting) = setup(behaviours);
        for _ in 0..8 {
            voting.submit_unit(&mut farm, &mut world, job());
        }
        run_farm(&mut world, &mut farm);
        let (verdicts, reps) = voting.tally(&farm);
        let mut accepted = 0;
        for v in &verdicts {
            match v {
                Verdict::Accepted { dissenters } => {
                    accepted += 1;
                    for d in dissenters {
                        assert_eq!(*d, WorkerId(0), "only the cheater dissents");
                    }
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(accepted, 8);
        let cheater = reps.get(&WorkerId(0)).copied().unwrap_or_default();
        if cheater.agreed + cheater.dissented > 0 {
            assert_eq!(cheater.agreed, 0, "{cheater:?}");
            assert!(cheater.score() < 0.5);
        }
        // Honest workers keep clean records.
        for w in 1..4 {
            let r = reps.get(&WorkerId(w)).copied().unwrap_or_default();
            assert_eq!(r.dissented, 0);
        }
    }

    #[test]
    fn intermittent_cheater_loses_reputation_over_time() {
        let behaviours = vec![
            Behaviour::Cheater { cheat_prob: 0.5 },
            Behaviour::Honest,
            Behaviour::Honest,
            Behaviour::Honest,
            Behaviour::Honest,
        ];
        let (mut world, mut farm, mut voting) = setup(behaviours);
        for _ in 0..30 {
            voting.submit_unit(&mut farm, &mut world, job());
        }
        run_farm(&mut world, &mut farm);
        let (_, reps) = voting.tally(&farm);
        let cheater = reps.get(&WorkerId(0)).copied().unwrap_or_default();
        assert!(
            cheater.dissented > 0,
            "a 50% cheater must get caught eventually: {cheater:?}"
        );
        assert!(cheater.score() < 0.9, "{cheater:?}");
    }

    #[test]
    fn incomplete_units_are_reported() {
        let (mut world, mut farm, mut voting) = setup(vec![Behaviour::Honest; 3]);
        voting.submit_unit(&mut farm, &mut world, job());
        // Don't run the sim: nothing completes.
        let _ = &mut world;
        assert_eq!(voting.verdict(&farm, 0), Verdict::Incomplete);
    }

    #[test]
    fn replicas_match_config() {
        let (mut world, mut farm, mut voting) = setup(vec![Behaviour::Honest; 3]);
        let u = voting.submit_unit(&mut farm, &mut world, job());
        assert_eq!(voting.units[u].jobs.len(), 3);
    }

    /// Like [`setup`] but with the farm's adaptive trust layer enabled
    /// (reliability-weighted policy, straggler watchdog, blacklist).
    fn setup_adaptive(behaviours: Vec<Behaviour>) -> (GridWorld, FarmScheduler, VotingFarm) {
        let mut world = GridWorld::new(77, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
        let mut farm = FarmScheduler::new(
            &world,
            ctrl,
            FarmConfig {
                trust: Some(trust::GridTrustConfig::adaptive()),
                ..FarmConfig::default()
            },
        );
        let horizon = SimTime::from_secs(10_000_000);
        for _ in 0..behaviours.len() {
            let spec = HostSpec::lan_workstation();
            let (peer, _) = world.add_peer(spec.clone());
            farm.add_worker(
                &mut world,
                WorkerSetup {
                    peer,
                    spec,
                    trace: AvailabilityTrace::always(horizon),
                    cache_bytes: 1 << 20,
                },
            );
        }
        let mut voting = VotingFarm::new(RedundancyConfig::triple(), behaviours, 1);
        voting.set_adaptive(AdaptiveConfig::default());
        (world, farm, voting)
    }

    /// One wave: run probes, resolve (accept-on-trust or escalate), run
    /// escalated replicas, feed the verdicts back.
    fn run_wave(
        world: &mut GridWorld,
        farm: &mut FarmScheduler,
        voting: &mut VotingFarm,
        units: &[usize],
    ) {
        run_farm(world, farm);
        for &u in units {
            voting.resolve_unit(farm, world, u);
        }
        run_farm(world, farm);
        for &u in units {
            voting.apply_unit(farm, u);
        }
    }

    #[test]
    fn adaptive_replication_drops_to_single_for_proven_workers() {
        let (mut world, mut farm, mut voting) = setup_adaptive(vec![Behaviour::Honest; 3]);
        let total_units = 10;
        for wave in 0..5 {
            let units: Vec<usize> = (0..2)
                .map(|_| voting.submit_unit_adaptive(&mut farm, &mut world, job()))
                .collect();
            run_wave(&mut world, &mut farm, &mut voting, &units);
            let _ = wave;
        }
        assert_eq!(voting.units.len(), total_units);
        for u in 0..total_units {
            assert!(
                matches!(voting.verdict(&farm, u), Verdict::Accepted { .. }),
                "unit {u}: {:?}",
                voting.verdict(&farm, u)
            );
            assert!(!voting.accepted_digest_is_wrong(&farm, u));
        }
        // Early units pay full triple redundancy; once every worker has a
        // proven streak, later units cost a single replica.
        assert!(
            voting.accepted_on_trust() >= 4,
            "accepted on trust: {}",
            voting.accepted_on_trust()
        );
        assert!(
            voting.total_replicas() < 3 * total_units,
            "replicas {}",
            voting.total_replicas()
        );
    }

    #[test]
    fn adaptive_replication_keeps_auditing_cheaters_and_blacklists_them() {
        let behaviours = vec![
            Behaviour::Cheater { cheat_prob: 1.0 },
            Behaviour::Honest,
            Behaviour::Honest,
            Behaviour::Honest,
        ];
        let (mut world, mut farm, mut voting) = setup_adaptive(behaviours);
        for _ in 0..8 {
            let units: Vec<usize> = (0..2)
                .map(|_| voting.submit_unit_adaptive(&mut farm, &mut world, job()))
                .collect();
            run_wave(&mut world, &mut farm, &mut voting, &units);
        }
        // The cheater's wrong digests never reach acceptance…
        for u in 0..voting.units.len() {
            assert!(!voting.accepted_digest_is_wrong(&farm, u), "unit {u}");
        }
        // …its dissents push its trust under the floor, after which the
        // scheduler stops giving it work at all…
        assert!(farm.worker_blacklisted(WorkerId(0)));
        assert!(farm.profiles().trust(0) < 0.25);
        // …while proven honest workers graduate to audit-free units.
        assert!(voting.accepted_on_trust() > 0);
        assert!(voting.total_replicas() < 3 * voting.units.len());
    }
}
