//! Distributed group execution: real results, simulated timing.
//!
//! "Triana can seamlessly distribute modules and entire jobs across a
//! network of compute resources" (§2). This module is the seam: it takes a
//! validated task graph, a group, a distribution plan, and a stream of
//! input tokens, then
//!
//! * computes the group's **actual outputs** by running the member units'
//!   real `process` implementations (a per-clone mini-engine over the
//!   group's internal topology), and
//! * obtains the **timing** by driving the corresponding scheduler in the
//!   discrete-event world (farm jobs sized by the units' calibrated work
//!   estimates, transfers by real token sizes).
//!
//! The result pairs every output token with the simulated instant it would
//! have arrived back at the controller.

use netsim::{Duration, SimTime};
use obs::Obs;

use crate::data::TrianaData;
use crate::graph::{GraphError, GroupId, TaskGraph, TaskId};
use crate::grid::farm::{run_farm, FarmConfig, FarmScheduler, JobSpec};
use crate::grid::{GridWorld, JobId, WorkerSetup};
use crate::rewrite::{group_job_spec, plan_parallel, DistributedPlan, PlanError};
use crate::unit::{UnitError, UnitRegistry};

/// One completed token: the real output values plus simulated latency.
#[derive(Debug)]
pub struct TokenResult {
    /// Outputs at the group's boundary output ports, in boundary order.
    pub outputs: Vec<TrianaData>,
    /// Simulated controller-to-controller latency.
    pub latency: Duration,
    /// Simulated completion instant.
    pub completed_at: SimTime,
}

/// Outcome of a distributed group run.
#[derive(Debug)]
pub struct GroupRun {
    pub tokens: Vec<TokenResult>,
    pub makespan: SimTime,
    pub plan: DistributedPlan,
}

/// Execution failure.
#[derive(Debug)]
pub enum ExecError {
    Plan(PlanError),
    Unit(UnitError),
    /// The group must have exactly one incoming boundary cable to accept a
    /// token stream.
    BadBoundary {
        incoming: usize,
    },
    /// The simulation ended before every token completed.
    Incomplete {
        done: usize,
        total: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Plan(e) => write!(f, "{e}"),
            ExecError::Unit(e) => write!(f, "{e}"),
            ExecError::BadBoundary { incoming } => {
                write!(f, "group needs exactly 1 incoming cable, has {incoming}")
            }
            ExecError::Incomplete { done, total } => {
                write!(f, "only {done}/{total} tokens completed")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<PlanError> for ExecError {
    fn from(e: PlanError) -> Self {
        ExecError::Plan(e)
    }
}

impl From<UnitError> for ExecError {
    fn from(e: UnitError) -> Self {
        ExecError::Unit(e)
    }
}

/// Run the group's member units on one token, following internal cables
/// from the boundary input; returns boundary outputs. Fresh unit instances
/// per call (farmed clones are stateless by construction — each clone
/// processes disjoint tokens).
fn compute_group_output(
    graph: &TaskGraph,
    registry: &UnitRegistry,
    gid: GroupId,
    entry: (TaskId, usize),
    token: &TrianaData,
) -> Result<Vec<TrianaData>, ExecError> {
    let group = graph.group(gid).expect("validated by caller");
    let members: Vec<TaskId> = group.members.clone();
    let internal = graph.group_internal_cables(gid);
    let (_, outgoing) = graph.group_boundary(gid);
    // Token buffers per (task, input port).
    let mut inbox: std::collections::BTreeMap<(TaskId, usize), TrianaData> =
        std::collections::BTreeMap::new();
    inbox.insert(entry, token.clone());
    // Fire members in topological order.
    let order: Vec<TaskId> = graph
        .topo_order()
        .map_err(PlanError::from)?
        .into_iter()
        .filter(|t| members.contains(t))
        .collect();
    let mut boundary_out: Vec<TrianaData> = Vec::new();
    for tid in order {
        let task = graph.task(tid).expect("validated");
        let mut unit = registry.create(&task.unit_type, &task.params)?;
        let mut inputs = Vec::with_capacity(task.n_in);
        for port in 0..task.n_in {
            let tok = inbox.remove(&(tid, port)).ok_or_else(|| {
                ExecError::Unit(UnitError::Runtime(format!(
                    "group member {}:{port} has no token (multi-entry groups \
                     need one token per boundary input)",
                    task.name
                )))
            })?;
            inputs.push(tok);
        }
        let outputs = unit.process(inputs)?;
        for (port, out_tok) in outputs.into_iter().enumerate() {
            let mut consumed = false;
            for c in &internal {
                if c.from == (tid, port) {
                    inbox.insert(c.to, out_tok.clone());
                    consumed = true;
                }
            }
            for c in &outgoing {
                if c.from == (tid, port) {
                    boundary_out.push(out_tok.clone());
                    consumed = true;
                }
            }
            if !consumed {
                // Unconnected member output: still part of the result.
                boundary_out.push(out_tok);
            }
        }
    }
    Ok(boundary_out)
}

/// Validate the graph and resolve the group's single token-entry port.
fn single_entry(graph: &TaskGraph, gid: GroupId) -> Result<(TaskId, usize), ExecError> {
    graph.validate().map_err(PlanError::from)?;
    let (incoming, _) = graph.group_boundary(gid);
    if incoming.len() != 1 {
        return Err(ExecError::BadBoundary {
            incoming: incoming.len(),
        });
    }
    Ok(incoming[0].to)
}

/// Run every token through the group's real units up front (both policies
/// compute results eagerly; only the timing differs).
fn compute_all_outputs(
    graph: &TaskGraph,
    registry: &UnitRegistry,
    gid: GroupId,
    entry: (TaskId, usize),
    tokens: &[TrianaData],
) -> Result<Vec<Vec<TrianaData>>, ExecError> {
    let mut outputs = Vec::with_capacity(tokens.len());
    for t in tokens {
        outputs.push(compute_group_output(graph, registry, gid, entry, t)?);
    }
    Ok(outputs)
}

/// Pair each token's real outputs with its simulated latency. All tokens
/// enter at t=0, so the completion instant equals the latency; a missing
/// latency means the simulation ended before that token finished.
fn collect_results(
    outputs: Vec<Vec<TrianaData>>,
    latency_of: impl Fn(usize) -> Option<Duration>,
) -> Result<Vec<TokenResult>, ExecError> {
    let total = outputs.len();
    let mut results = Vec::with_capacity(total);
    for (i, outs) in outputs.into_iter().enumerate() {
        match latency_of(i) {
            Some(latency) => results.push(TokenResult {
                outputs: outs,
                latency,
                completed_at: SimTime::ZERO + latency,
            }),
            None => {
                return Err(ExecError::Incomplete {
                    done: results.len(),
                    total,
                })
            }
        }
    }
    Ok(results)
}

/// Farm a parallel group over `workers` (already enrolled in the world),
/// computing real outputs and simulated latencies for `tokens`.
#[allow(clippy::too_many_arguments)] // one call site per experiment; a builder would obscure the seam
pub fn execute_group_parallel(
    world: &mut GridWorld,
    graph: &TaskGraph,
    registry: &UnitRegistry,
    gid: GroupId,
    controller: p2p::PeerId,
    workers: Vec<WorkerSetup>,
    tokens: Vec<TrianaData>,
    cfg: FarmConfig,
) -> Result<GroupRun, ExecError> {
    execute_group_parallel_obs(
        world,
        graph,
        registry,
        gid,
        controller,
        workers,
        tokens,
        cfg,
        &Obs::disabled(),
    )
}

/// [`execute_group_parallel`] with observability: the graph rewrite is
/// counted, and the driving farm scheduler records through the same handle.
#[allow(clippy::too_many_arguments)] // same seam as the uninstrumented variant
pub fn execute_group_parallel_obs(
    world: &mut GridWorld,
    graph: &TaskGraph,
    registry: &UnitRegistry,
    gid: GroupId,
    controller: p2p::PeerId,
    workers: Vec<WorkerSetup>,
    tokens: Vec<TrianaData>,
    cfg: FarmConfig,
    observer: &Obs,
) -> Result<GroupRun, ExecError> {
    let entry = single_entry(graph, gid)?;
    let peers: Vec<p2p::PeerId> = workers.iter().map(|w| w.peer).collect();
    let plan = plan_parallel(graph, gid, &peers)?;
    observer.incr("exec.rewrites");
    observer.add("exec.rewrite_clones", plan.assignments.len() as u64);
    observer.add("exec.tokens_submitted", tokens.len() as u64);

    // Real results, computed up front (clone semantics: stateless).
    let outputs = compute_all_outputs(graph, registry, gid, entry, &tokens)?;

    // Simulated timing via the farm.
    let mut farm = FarmScheduler::new(world, controller, cfg);
    farm.set_obs(observer.clone());
    for w in workers {
        farm.add_worker(world, w);
    }
    let mut job_ids: Vec<JobId> = Vec::with_capacity(tokens.len());
    for (t, outs) in tokens.iter().zip(&outputs) {
        let mut spec: JobSpec = group_job_spec(graph, registry, gid, t)?;
        spec.output_bytes = outs.iter().map(TrianaData::wire_size).sum::<u64>().max(1);
        job_ids.push(farm.submit(world, spec));
    }
    run_farm(world, &mut farm);

    let results = collect_results(outputs, |i| farm.job_latency(job_ids[i]))?;
    let makespan = farm.stats().makespan;
    Ok(GroupRun {
        tokens: results,
        makespan,
        plan,
    })
}

/// Run a peer-to-peer group as a pipeline over `stage_peers` (one per
/// member task, in topological order), computing real outputs and simulated
/// per-token latencies.
#[allow(clippy::too_many_arguments)] // same seam as the parallel variant
pub fn execute_group_pipeline(
    world: &mut GridWorld,
    graph: &TaskGraph,
    registry: &UnitRegistry,
    gid: GroupId,
    controller: p2p::PeerId,
    stage_peers: &[p2p::PeerId],
    tokens: Vec<TrianaData>,
) -> Result<GroupRun, ExecError> {
    execute_group_pipeline_obs(
        world,
        graph,
        registry,
        gid,
        controller,
        stage_peers,
        tokens,
        &Obs::disabled(),
    )
}

/// [`execute_group_pipeline`] with observability: the graph rewrite is
/// counted, and the driving pipeline scheduler records through the same
/// handle.
#[allow(clippy::too_many_arguments)] // same seam as the uninstrumented variant
pub fn execute_group_pipeline_obs(
    world: &mut GridWorld,
    graph: &TaskGraph,
    registry: &UnitRegistry,
    gid: GroupId,
    controller: p2p::PeerId,
    stage_peers: &[p2p::PeerId],
    tokens: Vec<TrianaData>,
    observer: &Obs,
) -> Result<GroupRun, ExecError> {
    use crate::grid::pipeline::{run_pipeline, PipelineScheduler, StageSpec};
    use crate::rewrite::plan_peer_to_peer;

    let entry = single_entry(graph, gid)?;
    let plan = plan_peer_to_peer(graph, gid, stage_peers)?;
    observer.incr("exec.rewrites");
    observer.add("exec.rewrite_stages", plan.assignments.len() as u64);
    observer.add("exec.tokens_submitted", tokens.len() as u64);

    // Real results, token by token (chain semantics are per-token).
    let outputs = compute_all_outputs(graph, registry, gid, entry, &tokens)?;

    // Simulated timing: one stage per assignment, work from the member
    // unit's calibrated estimate on the first token (uniform stream).
    let probe = tokens.first().cloned().unwrap_or(TrianaData::Scalar(0.0));
    let mut stages = Vec::with_capacity(plan.assignments.len());
    for a in &plan.assignments {
        let task = graph.task(a.tasks[0]).map_err(PlanError::from)?;
        let unit = registry
            .create(&task.unit_type, &task.params)
            .map_err(GraphError::Unit)
            .map_err(PlanError::from)?;
        let inputs: Vec<TrianaData> = (0..task.n_in.max(1)).map(|_| probe.clone()).collect();
        let spec = world.net.spec(world.p2p.host_of(a.peer)).clone();
        stages.push(StageSpec {
            peer: a.peer,
            spec,
            work_gigacycles: unit.work_estimate(&inputs),
        });
    }
    let token_bytes = tokens.iter().map(TrianaData::wire_size).max().unwrap_or(1);
    let mut pl = PipelineScheduler::new(
        world,
        controller,
        &format!("{}-{}", graph.name, gid.0),
        stages,
        token_bytes,
    );
    pl.set_obs(observer.clone());
    pl.emit_tokens(&mut world.sim, tokens.len() as u64, netsim::Duration::ZERO);
    run_pipeline(world, &mut pl);

    let results = collect_results(outputs, |i| pl.token_latency(i as u64))?;
    let makespan = pl.stats().last_done;
    Ok(GroupRun {
        tokens: results,
        makespan,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_graph, EngineConfig};
    use crate::graph::DistributionPolicy;
    use crate::unit::test_units::test_registry;
    use crate::unit::Params;
    use netsim::avail::AvailabilityTrace;
    use netsim::HostSpec;
    use p2p::DiscoveryMode;

    /// Counter -> [Scale x2 -> Scale x10] (group) -> sink
    fn build() -> (TaskGraph, GroupId, UnitRegistry) {
        let reg = test_registry();
        let mut g = TaskGraph::new("dist");
        let c = g.add_task(&reg, "Counter", "src", Params::new()).unwrap();
        let s1 = g
            .add_task(
                &reg,
                "Scale",
                "x2",
                Params::from([("k".to_string(), "2".to_string())]),
            )
            .unwrap();
        let s2 = g
            .add_task(
                &reg,
                "Scale",
                "x10",
                Params::from([("k".to_string(), "10".to_string())]),
            )
            .unwrap();
        let sink = g.add_task(&reg, "Scale", "sink", Params::new()).unwrap();
        g.connect(c, 0, s1, 0).unwrap();
        g.connect(s1, 0, s2, 0).unwrap();
        g.connect(s2, 0, sink, 0).unwrap();
        let gid = g
            .add_group("grp", vec![s1, s2], DistributionPolicy::Parallel)
            .unwrap();
        (g, gid, reg)
    }

    fn lan_workers(world: &mut GridWorld, k: usize) -> Vec<WorkerSetup> {
        let horizon = SimTime::from_secs(1_000_000);
        (0..k)
            .map(|_| {
                let spec = HostSpec::lan_workstation();
                let (peer, _) = world.add_peer(spec.clone());
                WorkerSetup {
                    peer,
                    spec,
                    trace: AvailabilityTrace::always(horizon),
                    cache_bytes: 1 << 20,
                }
            })
            .collect()
    }

    #[test]
    fn distributed_results_match_local_engine() {
        let (g, gid, reg) = build();
        // Local reference: run the full graph 5 iterations; the group maps
        // i -> 20*i, so sink sees 0,20,40,60,80.
        let local = run_graph(
            &g,
            &reg,
            &EngineConfig {
                iterations: 5,
                threaded: false,
            },
        )
        .unwrap();
        let expected: Vec<&TrianaData> = local.of(&g, "sink").iter().collect();

        // Distributed: same tokens through the farmed group.
        let mut world = GridWorld::new(61, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
        let workers = lan_workers(&mut world, 3);
        let tokens: Vec<TrianaData> = (0..5).map(|i| TrianaData::Scalar(i as f64)).collect();
        let run = execute_group_parallel(
            &mut world,
            &g,
            &reg,
            gid,
            ctrl,
            workers,
            tokens,
            FarmConfig::default(),
        )
        .unwrap();
        assert_eq!(run.tokens.len(), 5);
        for (i, tr) in run.tokens.iter().enumerate() {
            assert_eq!(tr.outputs.len(), 1);
            assert_eq!(&&tr.outputs[0], &expected[i], "token {i}");
            assert!(tr.latency > Duration::ZERO);
        }
        assert!(run.makespan > SimTime::ZERO);
        assert_eq!(run.plan.assignments.len(), 3);
    }

    #[test]
    fn more_workers_shrink_makespan_with_same_results() {
        let (g, gid, reg) = build();
        let run_with = |k: usize| {
            let mut world = GridWorld::new(62, DiscoveryMode::Flooding);
            let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
            let workers = lan_workers(&mut world, k);
            let tokens: Vec<TrianaData> = (0..12)
                .map(|i| TrianaData::SampleSet {
                    rate_hz: 1.0,
                    samples: vec![i as f64; 50_000],
                })
                .collect();
            execute_group_parallel(
                &mut world,
                &g,
                &reg,
                gid,
                ctrl,
                workers,
                tokens,
                FarmConfig::default(),
            )
        };
        // Scale expects scalars, not sample sets: the computation itself
        // fails — which proves result computation is real, not faked.
        assert!(matches!(run_with(2), Err(ExecError::Unit(_))));
        // With scalar tokens it works, and 4 workers beat 1.
        let scalar_run = |k: usize| {
            let mut world = GridWorld::new(63, DiscoveryMode::Flooding);
            let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
            let workers = lan_workers(&mut world, k);
            let tokens: Vec<TrianaData> = (0..12).map(|i| TrianaData::Scalar(i as f64)).collect();
            execute_group_parallel(
                &mut world,
                &g,
                &reg,
                gid,
                ctrl,
                workers,
                tokens,
                FarmConfig::default(),
            )
            .unwrap()
            .makespan
        };
        let m1 = scalar_run(1);
        let m4 = scalar_run(4);
        assert!(m4 < m1, "4 workers {m4:?} vs 1 worker {m1:?}");
    }

    #[test]
    fn multi_entry_group_rejected() {
        let reg = test_registry();
        let mut g = TaskGraph::new("multi");
        let c1 = g.add_task(&reg, "Counter", "c1", Params::new()).unwrap();
        let c2 = g.add_task(&reg, "Counter", "c2", Params::new()).unwrap();
        let add = g.add_task(&reg, "Add", "add", Params::new()).unwrap();
        g.connect(c1, 0, add, 0).unwrap();
        g.connect(c2, 0, add, 1).unwrap();
        let gid = g
            .add_group("grp", vec![add], DistributionPolicy::Parallel)
            .unwrap();
        let mut world = GridWorld::new(64, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
        let workers = lan_workers(&mut world, 1);
        let r = execute_group_parallel(
            &mut world,
            &g,
            &reg,
            gid,
            ctrl,
            workers,
            vec![TrianaData::Scalar(1.0)],
            FarmConfig::default(),
        );
        assert!(matches!(r, Err(ExecError::BadBoundary { incoming: 2 })));
    }
}

#[cfg(test)]
mod pipeline_exec_tests {
    use super::*;
    use crate::engine::{run_graph, EngineConfig};
    use crate::graph::DistributionPolicy;
    use crate::unit::test_units::test_registry;
    use crate::unit::Params;
    use netsim::HostSpec;
    use p2p::DiscoveryMode;

    #[test]
    fn pipeline_results_match_local_engine() {
        let reg = test_registry();
        let mut g = TaskGraph::new("chainjob");
        let c = g.add_task(&reg, "Counter", "src", Params::new()).unwrap();
        let s1 = g
            .add_task(
                &reg,
                "Scale",
                "x3",
                Params::from([("k".to_string(), "3".to_string())]),
            )
            .unwrap();
        let s2 = g
            .add_task(
                &reg,
                "Scale",
                "x7",
                Params::from([("k".to_string(), "7".to_string())]),
            )
            .unwrap();
        let sink = g.add_task(&reg, "Scale", "sink", Params::new()).unwrap();
        g.connect(c, 0, s1, 0).unwrap();
        g.connect(s1, 0, s2, 0).unwrap();
        g.connect(s2, 0, sink, 0).unwrap();
        let gid = g
            .add_group("chain", vec![s1, s2], DistributionPolicy::PeerToPeer)
            .unwrap();

        let local = run_graph(
            &g,
            &reg,
            &EngineConfig {
                iterations: 6,
                threaded: false,
            },
        )
        .unwrap();
        let expected: Vec<&TrianaData> = local.of(&g, "sink").iter().collect();

        let mut world = GridWorld::new(95, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
        let stage_peers: Vec<p2p::PeerId> = (0..2)
            .map(|_| world.add_peer(HostSpec::lan_workstation()).0)
            .collect();
        let tokens: Vec<TrianaData> = (0..6).map(|i| TrianaData::Scalar(i as f64)).collect();
        let run =
            execute_group_pipeline(&mut world, &g, &reg, gid, ctrl, &stage_peers, tokens).unwrap();
        assert_eq!(run.tokens.len(), 6);
        for (i, tr) in run.tokens.iter().enumerate() {
            assert_eq!(&&tr.outputs[0], &expected[i], "token {i}: 21*i expected");
            assert!(tr.latency > Duration::ZERO);
        }
        assert_eq!(run.plan.assignments.len(), 2);
    }

    #[test]
    fn pipeline_exec_requires_enough_stage_peers() {
        let reg = test_registry();
        let mut g = TaskGraph::new("short");
        let c = g.add_task(&reg, "Counter", "src", Params::new()).unwrap();
        let s1 = g.add_task(&reg, "Scale", "a", Params::new()).unwrap();
        let s2 = g.add_task(&reg, "Scale", "b", Params::new()).unwrap();
        g.connect(c, 0, s1, 0).unwrap();
        g.connect(s1, 0, s2, 0).unwrap();
        let gid = g
            .add_group("chain", vec![s1, s2], DistributionPolicy::PeerToPeer)
            .unwrap();
        let mut world = GridWorld::new(96, DiscoveryMode::Flooding);
        let (ctrl, _) = world.add_peer(HostSpec::lan_workstation());
        let (only, _) = world.add_peer(HostSpec::lan_workstation());
        let r = execute_group_pipeline(
            &mut world,
            &g,
            &reg,
            gid,
            ctrl,
            &[only],
            vec![TrianaData::Scalar(1.0)],
        );
        assert!(matches!(
            r,
            Err(ExecError::Plan(
                crate::rewrite::PlanError::NotEnoughPeers { .. }
            ))
        ));
    }
}
