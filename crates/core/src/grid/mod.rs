//! The Consumer Grid runtime: distributed execution of task-graph groups
//! over simulated volunteer peers.
//!
//! The pieces mirror the paper's architecture (Figures 3/4):
//!
//! * [`GridWorld`] — the shared substrate: event loop, network, overlay;
//! * [`farm`] — the `parallel` distribution policy: a Triana Controller
//!   farms group clones out to peers ("a farming out mechanism and
//!   generally involves no communication between hosts"), with on-demand
//!   module download, churn, checkpointing and migration;
//! * [`pipeline`] — the `peer-to-peer` policy: "each unit in the group is
//!   distributed onto a separate resource and data is passed between them",
//!   bound together with named pipes;
//! * [`service`] — Triana Service / Controller actors and discovery-driven
//!   worker enrolment.

pub mod exec;
pub mod farm;
pub mod pipeline;
pub mod redundancy;
pub mod service;

use netsim::avail::AvailabilityTrace;
use netsim::{HostId, HostSpec, Network, Sim, SimTime};
use p2p::{DiscoveryMode, P2p, P2pEvent, PeerId};

use crate::modules::ModuleKey;

/// Identifier of a farm job (one unit of distributable work).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

/// Identifier of a worker within a scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub u32);

/// Every event the Consumer Grid runtime reacts to.
#[derive(Clone, Debug, PartialEq)]
pub enum GridEvent {
    /// Overlay traffic (discovery, publishes, pipe data).
    P2p(P2pEvent),
    /// A worker's availability trace transitions to up.
    WorkerUp(WorkerId),
    /// …or down.
    WorkerDown(WorkerId),
    /// A job's input data finished arriving at its worker.
    InputArrived {
        job: JobId,
        worker: WorkerId,
        epoch: u64,
    },
    /// A module blob finished arriving at a worker (for `job`).
    ModuleArrived {
        job: JobId,
        worker: WorkerId,
        key: ModuleKey,
        epoch: u64,
    },
    /// A job's computation finished on its worker.
    ComputeDone {
        job: JobId,
        worker: WorkerId,
        epoch: u64,
    },
    /// A job's results arrived back at its owning orchestrator. `orch` is
    /// the owner stamp minted when the transfer left the worker; an
    /// orchestrator change in flight makes the stamp stale and the arrival
    /// is dropped (the failover path re-drives the result).
    OutputArrived { job: JobId, orch: u64 },
    /// A streaming work chunk arrives at the controller (Case 2).
    ChunkArrives { seq: u64 },
    /// The provider-discovery window of a swarm module fetch closed; time
    /// to pick providers (or fall back to the controller).
    SwarmProvidersDue {
        job: JobId,
        worker: WorkerId,
        epoch: u64,
    },
    /// One chunk of a swarm module fetch finished arriving at its worker.
    SwarmChunkArrived {
        job: JobId,
        worker: WorkerId,
        epoch: u64,
        chunk: u32,
        source: ChunkSource,
    },
    /// A pipeline stage finished computing a token.
    StageComputeDone { stage: usize, token: u64 },
    /// The pipeline source emits its next token.
    EmitToken { token: u64 },
    /// Straggler watchdog: the job has now been computing on `worker` for
    /// its profiled expected runtime times the configured factor; if it is
    /// still running, speculatively re-dispatch it.
    StragglerCheck {
        job: JobId,
        worker: WorkerId,
        epoch: u64,
    },
    /// Input (plus module, if needed) of a *speculative* job copy finished
    /// arriving at its second worker.
    SpecInputArrived {
        job: JobId,
        worker: WorkerId,
        epoch: u64,
    },
    /// A speculative job copy finished computing.
    SpecComputeDone {
        job: JobId,
        worker: WorkerId,
        epoch: u64,
    },
    /// A speculative copy's results arrived back at the owning
    /// orchestrator; if the primary has not completed yet, the speculative
    /// copy wins. `orch` stamps the owner like [`GridEvent::OutputArrived`].
    SpecOutputArrived {
        job: JobId,
        worker: WorkerId,
        orch: u64,
    },
    /// Periodic orchestrator anti-entropy tick (multi-orchestrator sets
    /// only): runs one gossip repair round and re-arms until the scheduler
    /// quiesces with every replica converged.
    OrchTick,
}

/// Where a swarm chunk transfer originated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChunkSource {
    /// Controller-direct (seeding the first copy, or per-chunk fallback).
    Controller,
    /// Pulled from a providing peer.
    Peer(PeerId),
}

impl From<P2pEvent> for GridEvent {
    fn from(e: P2pEvent) -> Self {
        GridEvent::P2p(e)
    }
}

/// Shared simulation substrate for grid experiments.
pub struct GridWorld {
    pub sim: Sim<GridEvent>,
    pub net: Network,
    pub p2p: P2p,
}

impl GridWorld {
    pub fn new(seed: u64, mode: DiscoveryMode) -> Self {
        GridWorld {
            sim: Sim::new(seed),
            net: Network::new(),
            p2p: P2p::new(mode),
        }
    }

    /// Add a host and enrol it as a peer.
    pub fn add_peer(&mut self, spec: HostSpec) -> (PeerId, HostId) {
        let h = self.net.add_host(spec);
        let p = self.p2p.add_peer(h);
        (p, h)
    }

    pub fn now(&self) -> SimTime {
        self.sim.now()
    }
}

/// A volunteer worker as seen by a scheduler: its peer identity, hardware,
/// availability trace, and module cache.
pub struct WorkerSetup {
    pub peer: PeerId,
    pub spec: HostSpec,
    pub trace: AvailabilityTrace,
    /// Module cache capacity in bytes.
    pub cache_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::LinkClass;

    #[test]
    fn world_wires_peers_to_hosts() {
        let mut w = GridWorld::new(1, DiscoveryMode::Flooding);
        let mut spec = HostSpec::reference_pc();
        spec.link = LinkClass::Cable.spec();
        let (p, h) = w.add_peer(spec.clone());
        assert_eq!(w.p2p.host_of(p), h);
        assert_eq!(w.net.spec(h), &spec);
    }

    #[test]
    fn grid_event_wraps_p2p() {
        let ev: GridEvent = P2pEvent::Delivered {
            to: PeerId(0),
            msg: p2p::Message::PipeData {
                pipe: p2p::PipeId(0),
                tag: 0,
                bytes: 1,
            },
        }
        .into();
        assert!(matches!(ev, GridEvent::P2p(_)));
    }
}
