//! Property tests: the overlay's routing structures against brute-force
//! oracles.

use overlay::{Contact, Insert, Lookup, LookupConfig, NodeId, RoutingTable};
use proptest::prelude::*;

fn contact(id: u64) -> Contact {
    Contact {
        id: NodeId(id),
        peer: (id % 100_000) as u32,
    }
}

proptest! {
    /// XOR-distance ordering agrees with a brute-force comparator, and the
    /// metric is unidirectional: every distance from a target is realised
    /// by exactly one point (`x = t ^ d`), so sorts by distance never tie
    /// on distinct IDs.
    #[test]
    fn xor_distance_ordering_matches_oracle(
        target in proptest::arbitrary::any::<u64>(),
        ids in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 2..64),
    ) {
        let t = NodeId(target);
        let mut by_method: Vec<u64> = ids.clone();
        by_method.sort_unstable_by_key(|&x| NodeId(x).distance(t));
        let mut by_oracle: Vec<u64> = ids.clone();
        by_oracle.sort_unstable_by_key(|&x| x ^ target);
        prop_assert_eq!(&by_method, &by_oracle);
        for w in by_method.windows(2) {
            if w[0] != w[1] {
                prop_assert_ne!(
                    NodeId(w[0]).distance(t),
                    NodeId(w[1]).distance(t),
                    "distinct ids at equal distance from one target"
                );
            }
        }
    }

    /// K-bucket structural invariants survive any interleaving of insert,
    /// touch, replace-LRU and remove, and the table's `closest()` agrees
    /// with a brute-force nearest-k over exactly the contacts it retained.
    #[test]
    fn k_bucket_invariants_under_churn(
        own in proptest::arbitrary::any::<u64>(),
        k in 1usize..8,
        ops in proptest::collection::vec(
            (0u8..4, proptest::arbitrary::any::<u64>()),
            1..300,
        ),
    ) {
        let mut t = RoutingTable::new(NodeId(own), k);
        for (op, id) in ops {
            match op {
                0 | 1 => {
                    // insert dominates the mix; Full is allowed, everything
                    // else must keep the table consistent.
                    let _ = t.insert(contact(id));
                }
                2 => {
                    let _ = t.touch(NodeId(id));
                }
                _ => {
                    if id % 2 == 0 {
                        let _ = t.remove(NodeId(id));
                    } else {
                        let _ = t.replace_lru(contact(id));
                    }
                }
            }
            if let Err(e) = t.check_invariants() {
                panic!("invariant broken: {e}");
            }
        }
        // closest() is a faithful nearest-k over the retained contacts.
        let target = NodeId(own ^ 0x5555_5555_5555_5555);
        let mut oracle: Vec<Contact> = t.contacts().collect();
        oracle.sort_unstable_by_key(|c| c.id.distance(target));
        oracle.truncate(3);
        prop_assert_eq!(t.closest(target, 3), oracle);
    }

    /// A table never grows beyond k contacts per bucket, and while the
    /// population is at most k every distinct offered contact is retained
    /// (nothing is dropped before capacity forces it).
    #[test]
    fn k_bucket_retains_everything_below_capacity(
        own in proptest::arbitrary::any::<u64>(),
        ids in proptest::collection::vec(proptest::arbitrary::any::<u64>(), 1..8),
    ) {
        let mut t = RoutingTable::new(NodeId(own), 8);
        let mut expect = 0usize;
        for &id in &ids {
            match t.insert(contact(id)) {
                Insert::Added => expect += 1,
                Insert::Refreshed | Insert::Ignored => {}
                Insert::Full { .. } => panic!("bucket full below global capacity k"),
            }
        }
        prop_assert_eq!(t.len(), expect);
    }

    /// Iterative lookups on random topologies converge to the brute-force
    /// global nearest-k, within the paper-level hop budget `⌈log₂ n⌉ + 2`.
    /// Every node's table is built by offering it every other node in a
    /// seeded random order, so far buckets are capacity-truncated exactly
    /// as they would be in a live network.
    #[test]
    fn iterative_lookup_matches_brute_force_nearest_k(
        seed in proptest::arbitrary::any::<u64>(),
        n in 8usize..72,
    ) {
        let mut rng = netsim::Pcg32::new(seed, 0x100C);
        let k = 16usize;
        let ids: Vec<NodeId> = (0..n as u32).map(NodeId::from_peer_index).collect();
        let mut tables: Vec<RoutingTable> = ids
            .iter()
            .map(|&id| RoutingTable::new(id, k))
            .collect();
        for (i, table) in tables.iter_mut().enumerate() {
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            for j in order {
                if i != j {
                    let _ = table.insert(Contact { id: ids[j], peer: j as u32 });
                }
            }
        }
        let target = NodeId(rng.next_u64());
        let origin = rng.below(n as u64) as usize;
        let cfg = LookupConfig { k: 8, alpha: 3 };
        let mut l = Lookup::new(target, cfg, tables[origin].closest(target, cfg.k));
        let mut guard = 0;
        loop {
            let batch = l.next_batch();
            if batch.is_empty() && l.is_done() {
                break;
            }
            for q in batch {
                let closer = tables[q.peer as usize].closest(target, cfg.k);
                l.on_reply(q.id, closer);
            }
            guard += 1;
            prop_assert!(guard < 1_000, "lookup did not terminate");
        }
        let mut oracle: Vec<NodeId> = ids.clone();
        oracle.sort_unstable_by_key(|id| id.distance(target));
        oracle.truncate(cfg.k);
        let got: Vec<NodeId> = l.closest_responded().iter().map(|c| c.id).collect();
        prop_assert_eq!(got, oracle, "lookup missed part of the true nearest-k (n={})", n);
        let budget = (n as f64).log2().ceil() as u32 + 2;
        prop_assert!(
            l.hops() <= budget,
            "lookup took {} hops, budget {} at n={}",
            l.hops(),
            budget,
            n
        );
    }
}
