//! The super-peer tier: who carries the rendezvous load.
//!
//! The paper's "Availability of Peers?" discussion is blunt about
//! consumer hosts: most are modem/DSL machines that come and go. Routing
//! infrastructure state (k-buckets, provider records) on a peer that
//! disappears hourly is wasted work, so — following the decentralised
//! orchestration literature (PAPERS.md) — peers are classified by their
//! observed `triana-trust` profiles:
//!
//! * **Hot** — high availability *and* adequate speed: a full DHT node
//!   that additionally serves as a rendezvous point, carrying cold peers'
//!   publish and lookup traffic.
//! * **Warm** — available enough to be a DHT node, but not entrusted with
//!   other peers' load.
//! * **Cold** — too flaky to hold routing state; delegates every publish
//!   and lookup to its assigned hot rendezvous (one hop, then the
//!   rendezvous runs the iterative lookup on its behalf).
//!
//! Promotion/demotion is hysteretic: a peer must *exceed* the hot
//! thresholds to be promoted but only demotes after falling
//! `hysteresis` below them, so peers on the boundary do not flap —
//! re-homing every cold peer on each oscillation would itself be churn.

/// A peer's tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    Hot,
    Warm,
    Cold,
}

/// Classification thresholds over the trust profile's availability
/// estimate (fraction of time online, 0..=1) and relative speed (1.0 =
/// reference PC, from the delivered-speed EWMA).
#[derive(Clone, Copy, Debug)]
pub struct TierConfig {
    /// Availability at or above which a peer may be hot.
    pub hot_availability: f64,
    /// Speed at or above which a peer may be hot.
    pub hot_speed: f64,
    /// Availability below which a peer is cold.
    pub cold_availability: f64,
    /// Demotion slack: a hot peer demotes only below `hot_availability -
    /// hysteresis` (or `hot_speed - hysteresis`).
    pub hysteresis: f64,
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig {
            hot_availability: 0.85,
            hot_speed: 0.75,
            cold_availability: 0.45,
            hysteresis: 0.10,
        }
    }
}

/// Classify one peer from its profile numbers.
pub fn classify(availability: f64, speed: f64, cfg: &TierConfig) -> Role {
    if availability < cfg.cold_availability {
        Role::Cold
    } else if availability >= cfg.hot_availability && speed >= cfg.hot_speed {
        Role::Hot
    } else {
        Role::Warm
    }
}

/// Should a currently-hot peer step down? Only once it has fallen clearly
/// below the promotion bar (hysteresis), so boundary peers do not flap.
pub fn should_demote(availability: f64, speed: f64, cfg: &TierConfig) -> bool {
    availability < cfg.hot_availability - cfg.hysteresis || speed < cfg.hot_speed - cfg.hysteresis
}

/// Assign a role to every peer, guaranteeing a functioning rendezvous
/// tier: if fewer than `⌈√n⌉` peers classify as hot (e.g. fresh worlds
/// whose trust profiles have no history yet), the best non-cold peers by
/// `(availability, speed)` are promoted to make up the difference —
/// deterministically, ties broken by index.
pub fn assign_roles(profiles: &[(f64, f64)], cfg: &TierConfig) -> Vec<Role> {
    let n = profiles.len();
    let mut roles: Vec<Role> = profiles.iter().map(|&(a, s)| classify(a, s, cfg)).collect();
    let want_hot = (n as f64).sqrt().ceil() as usize;
    let have_hot = roles.iter().filter(|r| **r == Role::Hot).count();
    if have_hot < want_hot {
        let mut candidates: Vec<usize> = (0..n).filter(|&i| roles[i] == Role::Warm).collect();
        candidates.sort_by(|&a, &b| {
            let ka = (profiles[a].0, profiles[a].1);
            let kb = (profiles[b].0, profiles[b].1);
            kb.partial_cmp(&ka)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for &i in candidates.iter().take(want_hot - have_hot) {
            roles[i] = Role::Hot;
        }
    }
    roles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_partition_the_profile_space() {
        let cfg = TierConfig::default();
        assert_eq!(classify(0.95, 1.2, &cfg), Role::Hot);
        assert_eq!(classify(0.95, 0.3, &cfg), Role::Warm, "fast bar not met");
        assert_eq!(classify(0.60, 1.2, &cfg), Role::Warm);
        assert_eq!(classify(0.30, 2.0, &cfg), Role::Cold, "availability rules");
    }

    #[test]
    fn demotion_has_hysteresis() {
        let cfg = TierConfig::default();
        // Just below the promotion bar: stays hot.
        assert!(!should_demote(0.80, 1.0, &cfg));
        // Clearly below: demotes.
        assert!(should_demote(0.70, 1.0, &cfg));
        assert!(should_demote(0.95, 0.60, &cfg));
    }

    #[test]
    fn assign_roles_promotes_to_sqrt_n_minimum() {
        // 16 uniform warm peers, nobody qualifies hot: top 4 get promoted.
        let profiles = vec![(0.7, 1.0); 16];
        let roles = assign_roles(&profiles, &TierConfig::default());
        assert_eq!(roles.iter().filter(|r| **r == Role::Hot).count(), 4);
        // Deterministic: lowest indices win the all-equal tie.
        assert!(roles[..4].iter().all(|r| *r == Role::Hot));
        assert!(roles[4..].iter().all(|r| *r == Role::Warm));
    }

    #[test]
    fn assign_roles_never_promotes_cold_peers() {
        let mut profiles = vec![(0.2, 1.0); 9];
        profiles[5] = (0.7, 1.0);
        let roles = assign_roles(&profiles, &TierConfig::default());
        assert_eq!(roles[5], Role::Hot, "the only warm peer is promoted");
        assert_eq!(roles.iter().filter(|r| **r == Role::Cold).count(), 8);
    }

    #[test]
    fn natural_hot_population_is_left_alone() {
        let profiles = vec![(0.95, 1.0); 10];
        let roles = assign_roles(&profiles, &TierConfig::default());
        assert!(roles.iter().all(|r| *r == Role::Hot));
    }
}
