//! `overlay` — structured (routed) discovery for the Consumer Grid.
//!
//! The paper's §3.7 observes that flooding "severely restricts the
//! scalability" of discovery; this crate supplies the structured
//! alternative the ROADMAP's million-peer north star needs:
//!
//! * [`id`] — a 64-bit XOR-metric identifier space ([`NodeId`]) with
//!   deterministic derivation from peer indices and content keys,
//! * [`bucket`] — a Kademlia routing table: k-buckets with LRU ordering,
//!   splitting along the own-ID prefix, and explicit eviction hooks for
//!   liveness pings,
//! * [`lookup`] — the *iterative* `FIND_NODE`/`FIND_VALUE` state machine:
//!   α-parallel, converging on the k closest live nodes to a target,
//! * [`store`] — the provider-record store (key → provider records with
//!   TTL expiry, bounded per key),
//! * [`super_peer`] — hot/warm/cold peer classification from
//!   availability/speed profiles, selecting the super-peer rendezvous
//!   tier that carries cold consumer peers' publish and lookup load.
//!
//! The crate is deliberately network-free: it holds pure routing state and
//! decision logic, and `triana-p2p` drives it with real simulated messages
//! (`DiscoveryMode::Routed`). That keeps the layering acyclic — `p2p`
//! depends on `overlay`, never the reverse — and makes every component
//! property-testable against brute-force oracles.

pub mod bucket;
pub mod id;
pub mod lookup;
pub mod store;
pub mod super_peer;

pub use bucket::{Contact, Insert, RoutingTable};
pub use id::NodeId;
pub use lookup::{Lookup, LookupConfig};
pub use store::{ProviderStore, StoredRecord};
pub use super_peer::{assign_roles, classify, should_demote, Role, TierConfig};
