//! The iterative lookup state machine (`FIND_NODE` / `FIND_VALUE`).
//!
//! Kademlia lookups are *iterative*: the initiator keeps a shortlist of
//! the closest contacts it has heard of, queries up to α of them in
//! parallel, merges the closer contacts each reply brings back, and stops
//! when the k closest entries on the shortlist have all responded. This
//! module holds only the decision state — who to ask next, when we are
//! done — while the network layer owns the actual messages and timeouts.
//!
//! Hop accounting: every contact carries the depth at which it was
//! learned (seeds are depth 1; a contact first reported by a depth-d
//! responder is depth d+1). The lookup's hop count is the maximum depth
//! of any contact actually queried, i.e. the length of the longest
//! referral chain the walk followed — the routed analogue of a flooded
//! query's TTL consumption.

use crate::bucket::Contact;
use crate::id::NodeId;

/// Tuning knobs for an iterative lookup.
#[derive(Clone, Copy, Debug)]
pub struct LookupConfig {
    /// Result-set size: terminate when the `k` closest known are queried.
    pub k: usize,
    /// Parallelism: at most `alpha` requests in flight.
    pub alpha: usize,
}

impl Default for LookupConfig {
    fn default() -> Self {
        LookupConfig { k: 8, alpha: 3 }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EntryState {
    /// Known but not yet queried.
    New,
    /// Query sent, awaiting reply or timeout.
    InFlight,
    /// Replied.
    Responded,
    /// Timed out / refused.
    Failed,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    c: Contact,
    state: EntryState,
    depth: u32,
}

/// One in-progress iterative lookup.
pub struct Lookup {
    target: NodeId,
    cfg: LookupConfig,
    /// Sorted ascending by XOR distance to `target`; IDs unique.
    entries: Vec<Entry>,
    in_flight: usize,
}

impl Lookup {
    /// Start a lookup seeded from the initiator's routing table. Seeds are
    /// depth-1 contacts.
    pub fn new(
        target: NodeId,
        cfg: LookupConfig,
        seeds: impl IntoIterator<Item = Contact>,
    ) -> Self {
        let mut l = Lookup {
            target,
            cfg,
            entries: Vec::new(),
            in_flight: 0,
        };
        for c in seeds {
            l.offer(c, 1);
        }
        l
    }

    pub fn target(&self) -> NodeId {
        self.target
    }

    fn offer(&mut self, c: Contact, depth: u32) {
        if self.entries.iter().any(|e| e.c.id == c.id) {
            return;
        }
        let d = c.id.distance(self.target);
        let pos = self
            .entries
            .partition_point(|e| e.c.id.distance(self.target) < d);
        self.entries.insert(
            pos,
            Entry {
                c,
                state: EntryState::New,
                depth,
            },
        );
    }

    /// Contacts to query now: the closest `New` entries, up to the α
    /// in-flight budget, restricted to the candidate window (an entry
    /// farther than the k closest non-failed entries is never useful).
    /// Marks them in flight. Call after construction and after every
    /// `on_reply`/`on_fail`.
    pub fn next_batch(&mut self) -> Vec<Contact> {
        let mut out = Vec::new();
        let window = self.window_end();
        let mut budget = self.cfg.alpha.saturating_sub(self.in_flight);
        for e in self.entries.iter_mut().take(window) {
            if budget == 0 {
                break;
            }
            if e.state == EntryState::New {
                e.state = EntryState::InFlight;
                self.in_flight += 1;
                budget -= 1;
                out.push(e.c);
            }
        }
        out
    }

    /// Index one past the last entry worth querying: the position of the
    /// k-th non-failed entry (inclusive window).
    fn window_end(&self) -> usize {
        let mut live = 0;
        for (i, e) in self.entries.iter().enumerate() {
            if e.state != EntryState::Failed {
                live += 1;
                if live == self.cfg.k {
                    return i + 1;
                }
            }
        }
        self.entries.len()
    }

    /// A queried contact replied with its closer contacts.
    pub fn on_reply(&mut self, from: NodeId, closer: impl IntoIterator<Item = Contact>) {
        let mut from_depth = 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.c.id == from) {
            if e.state == EntryState::InFlight {
                self.in_flight -= 1;
            }
            e.state = EntryState::Responded;
            from_depth = e.depth;
        }
        for c in closer {
            self.offer(c, from_depth + 1);
        }
    }

    /// A queried contact failed (timeout, offline, refused). Only an
    /// in-flight entry can fail: a timeout that races a reply that already
    /// arrived must not clobber the responded state. Returns whether the
    /// entry actually transitioned (callers meter real failures, not
    /// no-op timer fires).
    pub fn on_fail(&mut self, from: NodeId) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.c.id == from) {
            if e.state == EntryState::InFlight {
                self.in_flight -= 1;
                e.state = EntryState::Failed;
                return true;
            }
        }
        false
    }

    /// Done when nothing is in flight and every entry in the k-closest
    /// window is resolved (responded or failed).
    pub fn is_done(&self) -> bool {
        if self.in_flight > 0 {
            return false;
        }
        let window = self.window_end();
        self.entries[..window]
            .iter()
            .all(|e| matches!(e.state, EntryState::Responded | EntryState::Failed))
    }

    /// The k closest contacts that responded, ascending by distance — the
    /// lookup's result set (store targets for a publish, nearest-k for a
    /// join).
    pub fn closest_responded(&self) -> Vec<Contact> {
        self.entries
            .iter()
            .filter(|e| e.state == EntryState::Responded)
            .take(self.cfg.k)
            .map(|e| e.c)
            .collect()
    }

    /// Longest referral chain actually queried (see module docs).
    pub fn hops(&self) -> u32 {
        self.entries
            .iter()
            .filter(|e| {
                matches!(
                    e.state,
                    EntryState::InFlight | EntryState::Responded | EntryState::Failed
                )
            })
            .map(|e| e.depth)
            .max()
            .unwrap_or(0)
    }

    /// Total number of queries issued so far.
    pub fn queried(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.state != EntryState::New)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64) -> Contact {
        Contact {
            id: NodeId(id),
            peer: id as u32,
        }
    }

    /// Run a full lookup against an in-memory network where every node
    /// knows `closest_of` its neighbours; returns the result set.
    fn drive(
        target: NodeId,
        cfg: LookupConfig,
        seeds: Vec<Contact>,
        answer: impl Fn(Contact) -> Option<Vec<Contact>>,
    ) -> Lookup {
        let mut l = Lookup::new(target, cfg, seeds);
        let mut guard = 0;
        while !l.is_done() {
            let batch = l.next_batch();
            assert!(
                !batch.is_empty() || l.in_flight > 0,
                "not done but nothing to do"
            );
            for q in batch {
                match answer(q) {
                    Some(closer) => l.on_reply(q.id, closer),
                    None => {
                        l.on_fail(q.id);
                    }
                }
            }
            guard += 1;
            assert!(guard < 10_000, "lookup did not terminate");
        }
        l
    }

    #[test]
    fn lookup_converges_on_fully_known_network() {
        // 64 nodes, everyone knows everyone: one hop must suffice.
        let all: Vec<Contact> = (1..=64u64).map(|i| c(i * 97)).collect();
        let target = NodeId(1000);
        let cfg = LookupConfig { k: 4, alpha: 3 };
        let l = drive(target, cfg, all.clone(), |_q| Some(all.clone()));
        let mut want = all.clone();
        want.sort_unstable_by_key(|x| x.id.distance(target));
        want.truncate(4);
        assert_eq!(l.closest_responded(), want);
    }

    #[test]
    fn lookup_routes_through_referrals() {
        // A chain: seed knows only the next node, which knows the next…
        // The lookup must walk the chain to reach the target's
        // neighbourhood, and the hop count must reflect the chain depth.
        let chain: Vec<Contact> = (0..10u64).map(|i| c(1 << i)).collect();
        let target = NodeId(1); // closest is chain[0]
        let cfg = LookupConfig { k: 2, alpha: 1 };
        // Seed only with the farthest node; each node refers one closer.
        let seeds = vec![chain[9]];
        let l = drive(target, cfg, seeds, |q| {
            let idx = chain.iter().position(|x| x.id == q.id).unwrap();
            Some(if idx == 0 {
                vec![]
            } else {
                vec![chain[idx - 1]]
            })
        });
        let got = l.closest_responded();
        assert_eq!(got[0], chain[0]);
        assert_eq!(l.hops(), 10, "walked the full referral chain");
    }

    #[test]
    fn failures_do_not_stall_termination() {
        let all: Vec<Contact> = (1..=16u64).map(|i| c(i * 7)).collect();
        let target = NodeId(50);
        let cfg = LookupConfig { k: 4, alpha: 2 };
        // Every odd peer is dead.
        let l = drive(target, cfg, all.clone(), |q| {
            if q.peer % 2 == 1 {
                None
            } else {
                Some(all.clone())
            }
        });
        assert!(l.is_done());
        assert!(!l.closest_responded().is_empty());
        // The window widened past failed entries: responded set contains
        // only even peers.
        assert!(l.closest_responded().iter().all(|x| x.peer % 2 == 0));
    }

    #[test]
    fn all_dead_terminates_empty() {
        let seeds: Vec<Contact> = (1..=5u64).map(c).collect();
        let l = drive(NodeId(9), LookupConfig::default(), seeds, |_q| None);
        assert!(l.is_done());
        assert!(l.closest_responded().is_empty());
        assert_eq!(l.queried(), 5);
    }

    #[test]
    fn no_seeds_is_immediately_done() {
        let l = Lookup::new(NodeId(1), LookupConfig::default(), vec![]);
        assert!(l.is_done());
        assert_eq!(l.hops(), 0);
    }

    #[test]
    fn alpha_bounds_in_flight() {
        let seeds: Vec<Contact> = (1..=10u64).map(c).collect();
        let mut l = Lookup::new(NodeId(0), LookupConfig { k: 8, alpha: 3 }, seeds);
        assert_eq!(l.next_batch().len(), 3);
        assert_eq!(l.next_batch().len(), 0, "alpha exhausted until replies");
        l.on_reply(NodeId(1), vec![]);
        assert_eq!(l.next_batch().len(), 1, "one slot freed");
    }
}
