//! The identifier space: 64-bit node and content IDs under the XOR metric.
//!
//! Kademlia's single trick is that `d(a, b) = a XOR b` is a metric with
//! unidirectional lookups: every step that fixes one more high bit of the
//! distance at least halves it, so iterative lookups converge in O(log n)
//! hops. 64 bits is plenty for the simulated populations (collisions at
//! 10⁶ peers have probability ~5·10⁻⁸ per pair) and keeps distances in a
//! machine word.

use std::fmt;

/// A point in the 64-bit XOR-metric identifier space. Both peers and
/// content keys live here; a provider record for key `K` is stored on the
/// k peers whose [`NodeId`]s are XOR-closest to `K`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{:016x}", self.0)
    }
}

/// Finalizer of splitmix64: a strong 64→64 mixer, used so consecutive
/// peer indices land uniformly in the ID space.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes: the content-key hash (same family the store layer
/// uses for blob ids).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl NodeId {
    /// Deterministic node ID for a peer, derived from its overlay index.
    /// Identity is stable across sessions of the same world, so routing
    /// tables can be rebuilt byte-identically.
    pub fn from_peer_index(index: u32) -> NodeId {
        NodeId(mix64(index as u64))
    }

    /// Content key for a namespaced name, e.g. `("svc", "triana")`.
    pub fn from_name(namespace: &str, name: &str) -> NodeId {
        let mut buf = Vec::with_capacity(namespace.len() + 1 + name.len());
        buf.extend_from_slice(namespace.as_bytes());
        buf.push(b':');
        buf.extend_from_slice(name.as_bytes());
        NodeId(fnv1a64(&buf))
    }

    /// Content key for a namespaced integer (blob hashes, versions).
    pub fn from_u64(namespace: &str, value: u64) -> NodeId {
        let mut buf = Vec::with_capacity(namespace.len() + 9);
        buf.extend_from_slice(namespace.as_bytes());
        buf.push(b':');
        buf.extend_from_slice(&value.to_le_bytes());
        NodeId(fnv1a64(&buf))
    }

    /// XOR distance to another ID.
    #[inline]
    pub fn distance(self, other: NodeId) -> u64 {
        self.0 ^ other.0
    }

    /// Index of the k-bucket this distance falls into for a flat table:
    /// position of the highest set bit of the distance (`None` for self).
    pub fn bucket_index(self, other: NodeId) -> Option<u32> {
        let d = self.distance(other);
        if d == 0 {
            None
        } else {
            Some(63 - d.leading_zeros())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_distance_is_a_metric() {
        let a = NodeId(0b1010);
        let b = NodeId(0b0110);
        let c = NodeId(0b0001);
        assert_eq!(a.distance(a), 0);
        assert_eq!(a.distance(b), b.distance(a));
        // Triangle inequality holds for XOR (in fact d(a,c) <= d(a,b)^d(b,c)
        // bitwise, which implies <= d(a,b)+d(b,c)).
        assert!(a.distance(c) <= a.distance(b) + b.distance(c));
    }

    #[test]
    fn peer_ids_spread_across_the_space() {
        let ids: Vec<u64> = (0..64).map(|i| NodeId::from_peer_index(i).0).collect();
        let top_bits: std::collections::HashSet<u64> = ids.iter().map(|v| v >> 60).collect();
        assert!(
            top_bits.len() > 8,
            "mixer should spread indices over high nibbles, got {}",
            top_bits.len()
        );
        let uniq: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(uniq.len(), 64, "no collisions among small indices");
    }

    #[test]
    fn content_keys_are_namespaced() {
        assert_ne!(
            NodeId::from_name("svc", "triana"),
            NodeId::from_name("pipe", "triana")
        );
        assert_eq!(
            NodeId::from_u64("blob", 0xFEED),
            NodeId::from_u64("blob", 0xFEED)
        );
        assert_ne!(
            NodeId::from_u64("blob", 0xFEED),
            NodeId::from_u64("blob", 0xFEEE)
        );
    }

    #[test]
    fn bucket_index_is_highest_differing_bit() {
        let a = NodeId(0);
        assert_eq!(a.bucket_index(a), None);
        assert_eq!(a.bucket_index(NodeId(1)), Some(0));
        assert_eq!(a.bucket_index(NodeId(0b1000_0000)), Some(7));
        assert_eq!(a.bucket_index(NodeId(u64::MAX)), Some(63));
    }
}
