//! The provider-record store: what a DHT node holds for keys it is close
//! to.
//!
//! Records are opaque to this crate (the p2p layer stores whole
//! advertisements); each carries the providing peer and an expiry
//! instant. The store is bounded per key — a hot key (the capability
//! index, a popular service) cannot grow without limit: when full, the
//! earliest-expiring record is evicted, which under the republish
//! protocol means the *stalest* provider. TTL expiry is the forget half
//! of Kademlia's store/republish pair; the publish half lives with the
//! record's owner, which re-runs its publish before the TTL lapses.

use netsim::SimTime;
use std::collections::HashMap;

/// One stored provider record.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredRecord<R> {
    /// The providing peer (p2p peer index).
    pub provider: u32,
    pub expires: SimTime,
    pub record: R,
}

/// Key → bounded set of provider records.
pub struct ProviderStore<R> {
    map: HashMap<u64, Vec<StoredRecord<R>>>,
    cap_per_key: usize,
    /// Cumulative evictions under the per-key bound (diagnostics).
    pub evictions: u64,
}

impl<R> ProviderStore<R> {
    pub fn new(cap_per_key: usize) -> Self {
        assert!(cap_per_key >= 1);
        ProviderStore {
            map: HashMap::new(),
            cap_per_key,
            evictions: 0,
        }
    }

    /// Insert or refresh a record. A record from a provider already
    /// present under the key replaces the old one (a republish extends
    /// the TTL); a new provider on a full key evicts the
    /// earliest-expiring record (ties broken by provider index for
    /// determinism).
    pub fn insert(&mut self, key: u64, rec: StoredRecord<R>) {
        let v = self.map.entry(key).or_default();
        if let Some(pos) = v.iter().position(|r| r.provider == rec.provider) {
            v[pos] = rec;
            return;
        }
        if v.len() >= self.cap_per_key {
            let (pos, _) = v
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| (r.expires, r.provider))
                .expect("full bucket is non-empty");
            v.remove(pos);
            self.evictions += 1;
        }
        v.push(rec);
    }

    /// Live records under a key (expired ones are pruned on access).
    pub fn get(&mut self, key: u64, now: SimTime) -> &[StoredRecord<R>] {
        match self.map.get_mut(&key) {
            Some(v) => {
                v.retain(|r| now < r.expires);
                v.as_slice()
            }
            None => &[],
        }
    }

    /// Drop every expired record; returns how many were discarded.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let mut dropped = 0;
        self.map.retain(|_, v| {
            let before = v.len();
            v.retain(|r| now < r.expires);
            dropped += before - v.len();
            !v.is_empty()
        });
        dropped
    }

    /// Total live-or-stale records currently held.
    pub fn len(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(provider: u32, expires: u64) -> StoredRecord<&'static str> {
        StoredRecord {
            provider,
            expires: SimTime(expires),
            record: "ad",
        }
    }

    #[test]
    fn republish_refreshes_instead_of_duplicating() {
        let mut s = ProviderStore::new(4);
        s.insert(1, rec(7, 100));
        s.insert(1, rec(7, 500));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(1, SimTime(0))[0].expires, SimTime(500));
    }

    #[test]
    fn bound_evicts_earliest_expiring() {
        let mut s = ProviderStore::new(2);
        s.insert(1, rec(1, 300));
        s.insert(1, rec(2, 100));
        s.insert(1, rec(3, 200));
        assert_eq!(s.len(), 2);
        assert_eq!(s.evictions, 1);
        let provs: Vec<u32> = s.get(1, SimTime(0)).iter().map(|r| r.provider).collect();
        assert_eq!(provs, vec![1, 3], "the stalest (expires=100) was evicted");
    }

    #[test]
    fn expiry_is_inclusive_at_ttl() {
        let mut s = ProviderStore::new(4);
        s.insert(9, rec(1, 50));
        assert_eq!(s.get(9, SimTime(49)).len(), 1);
        assert_eq!(s.get(9, SimTime(50)).len(), 0, "now >= expires is expired");
    }

    #[test]
    fn purge_drops_only_expired_and_reports_count() {
        let mut s = ProviderStore::new(4);
        s.insert(1, rec(1, 10));
        s.insert(1, rec(2, 100));
        s.insert(2, rec(3, 10));
        assert_eq!(s.purge_expired(SimTime(10)), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.purge_expired(SimTime(10)), 0, "idempotent");
    }
}
