//! The Kademlia routing table: prefix-split k-buckets with LRU order.
//!
//! The table starts as one bucket covering the whole ID space. When a
//! bucket fills and it covers the node's *own* ID, it splits into two
//! half-range buckets; buckets away from the own ID never split, which is
//! what bounds the table at O(k log n) contacts while keeping complete
//! knowledge of the node's own neighbourhood.
//!
//! Within a bucket, contacts sit in least-recently-seen order: position 0
//! is the LRU candidate for eviction. The table itself never decides
//! liveness — a full bucket surfaces its LRU contact through
//! [`Insert::Full`] and the network layer pings it, then calls
//! [`RoutingTable::replace_lru`] (evict the dead) or
//! [`RoutingTable::touch`] (refresh the live, dropping the newcomer, which
//! is Kademlia's bias toward long-lived peers).

use crate::id::NodeId;

/// A routing-table entry: an overlay ID plus the opaque peer handle the
/// network layer routes by (the p2p peer index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Contact {
    pub id: NodeId,
    pub peer: u32,
}

/// Outcome of [`RoutingTable::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Insert {
    /// New contact stored.
    Added,
    /// Already present; moved to most-recently-seen.
    Refreshed,
    /// Own ID or malformed; not stored.
    Ignored,
    /// The covering bucket is full and unsplittable. The caller should
    /// ping `lru` and either [`RoutingTable::replace_lru`] (dead) or
    /// [`RoutingTable::touch`] it (alive; newcomer is dropped).
    Full { lru: Contact },
}

struct Bucket {
    /// Top `plen` bits that every member ID shares.
    prefix: u64,
    plen: u32,
    /// LRU order: index 0 = least recently seen.
    contacts: Vec<Contact>,
}

impl Bucket {
    fn covers(&self, id: NodeId) -> bool {
        self.plen == 0 || (id.0 ^ self.prefix) >> (64 - self.plen) == 0
    }
}

/// One peer's view of the overlay.
pub struct RoutingTable {
    own: NodeId,
    k: usize,
    buckets: Vec<Bucket>,
}

impl RoutingTable {
    pub fn new(own: NodeId, k: usize) -> Self {
        assert!(k >= 1, "bucket capacity must be at least 1");
        RoutingTable {
            own,
            k,
            buckets: vec![Bucket {
                prefix: 0,
                plen: 0,
                contacts: Vec::new(),
            }],
        }
    }

    pub fn own_id(&self) -> NodeId {
        self.own
    }

    pub fn k(&self) -> usize {
        self.k
    }

    fn bucket_of(&self, id: NodeId) -> usize {
        self.buckets
            .iter()
            .position(|b| b.covers(id))
            .expect("buckets partition the ID space")
    }

    /// Offer a contact to the table.
    pub fn insert(&mut self, c: Contact) -> Insert {
        if c.id == self.own {
            return Insert::Ignored;
        }
        loop {
            let bi = self.bucket_of(c.id);
            let b = &mut self.buckets[bi];
            if let Some(pos) = b.contacts.iter().position(|x| x.id == c.id) {
                let existing = b.contacts.remove(pos);
                b.contacts.push(existing);
                return Insert::Refreshed;
            }
            if b.contacts.len() < self.k {
                b.contacts.push(c);
                return Insert::Added;
            }
            if b.covers(self.own) && b.plen < 63 {
                self.split(bi);
                continue;
            }
            return Insert::Full { lru: b.contacts[0] };
        }
    }

    /// Split bucket `bi` into its two half-prefix children, redistributing
    /// contacts. Only ever called for the bucket covering the own ID.
    fn split(&mut self, bi: usize) {
        let b = self.buckets.remove(bi);
        let plen = b.plen + 1;
        let bit = 1u64 << (64 - plen);
        let mut zero = Bucket {
            prefix: b.prefix,
            plen,
            contacts: Vec::new(),
        };
        let mut one = Bucket {
            prefix: b.prefix | bit,
            plen,
            contacts: Vec::new(),
        };
        for c in b.contacts {
            if c.id.0 & bit == 0 {
                zero.contacts.push(c);
            } else {
                one.contacts.push(c);
            }
        }
        self.buckets.insert(bi, one);
        self.buckets.insert(bi, zero);
    }

    /// Mark a contact as just-seen (moves it to the MRU end).
    pub fn touch(&mut self, id: NodeId) -> bool {
        let bi = self.bucket_of(id);
        let b = &mut self.buckets[bi];
        if let Some(pos) = b.contacts.iter().position(|x| x.id == id) {
            let c = b.contacts.remove(pos);
            b.contacts.push(c);
            true
        } else {
            false
        }
    }

    /// Evict the LRU contact of the bucket covering `c.id` and store `c`
    /// in its place (the liveness ping failed). Returns the evicted
    /// contact, or `None` if the bucket had room after all (then `c` is
    /// simply inserted).
    pub fn replace_lru(&mut self, c: Contact) -> Option<Contact> {
        if c.id == self.own {
            return None;
        }
        let bi = self.bucket_of(c.id);
        let b = &mut self.buckets[bi];
        if b.contacts.iter().any(|x| x.id == c.id) {
            self.touch(c.id);
            return None;
        }
        let evicted = if b.contacts.len() >= self.k {
            Some(b.contacts.remove(0))
        } else {
            None
        };
        self.buckets[bi].contacts.push(c);
        evicted
    }

    /// Drop a contact wherever it is (routing-table poison repair, or a
    /// peer observed dead outside the ping path).
    pub fn remove(&mut self, id: NodeId) -> bool {
        let bi = self.bucket_of(id);
        let b = &mut self.buckets[bi];
        let before = b.contacts.len();
        b.contacts.retain(|x| x.id != id);
        b.contacts.len() != before
    }

    pub fn contains(&self, id: NodeId) -> bool {
        let bi = self.bucket_of(id);
        self.buckets[bi].contacts.iter().any(|x| x.id == id)
    }

    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.contacts.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn n_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// All contacts, bucket by bucket (test/diagnostic surface).
    pub fn contacts(&self) -> impl Iterator<Item = Contact> + '_ {
        self.buckets.iter().flat_map(|b| b.contacts.iter().copied())
    }

    /// The `count` known contacts closest to `target` by XOR distance,
    /// ascending. Ties cannot occur (IDs are unique), so the order is
    /// deterministic.
    pub fn closest(&self, target: NodeId, count: usize) -> Vec<Contact> {
        let mut all = Vec::new();
        self.closest_into(target, count, &mut all);
        all
    }

    /// [`closest`](Self::closest) into a caller-owned buffer (cleared
    /// first). Hot reply paths pass a recycled scratch vector so serving a
    /// lookup step does not allocate.
    pub fn closest_into(&self, target: NodeId, count: usize, out: &mut Vec<Contact>) {
        out.clear();
        out.extend(self.contacts());
        out.sort_unstable_by_key(|c| c.id.distance(target));
        out.truncate(count);
    }

    /// Test/diagnostic: per-bucket `(prefix, plen, len)` snapshot.
    pub fn bucket_shapes(&self) -> Vec<(u64, u32, usize)> {
        self.buckets
            .iter()
            .map(|b| (b.prefix, b.plen, b.contacts.len()))
            .collect()
    }

    /// Internal consistency: buckets partition the space, every contact
    /// lies in its bucket's range, no bucket exceeds k, and only the chain
    /// of prefixes of the own ID may have split. Used by proptests.
    pub fn check_invariants(&self) -> Result<(), String> {
        for b in &self.buckets {
            if b.contacts.len() > self.k {
                return Err(format!(
                    "bucket {:#x}/{} holds {} > k={}",
                    b.prefix,
                    b.plen,
                    b.contacts.len(),
                    self.k
                ));
            }
            for c in &b.contacts {
                if !b.covers(c.id) {
                    return Err(format!(
                        "contact {:?} outside bucket {:#x}/{}",
                        c, b.prefix, b.plen
                    ));
                }
                if c.id == self.own {
                    return Err("own ID stored as a contact".into());
                }
            }
        }
        // Partition: every ID pattern is covered exactly once. Check the
        // prefixes pairwise: no bucket's range may nest inside another's.
        for (i, a) in self.buckets.iter().enumerate() {
            for b in self.buckets.iter().skip(i + 1) {
                let plen = a.plen.min(b.plen);
                if plen == 0 || (a.prefix ^ b.prefix) >> (64 - plen) == 0 {
                    return Err(format!(
                        "buckets {:#x}/{} and {:#x}/{} overlap",
                        a.prefix, a.plen, b.prefix, b.plen
                    ));
                }
            }
        }
        let total_coverage: f64 = self
            .buckets
            .iter()
            .map(|b| (0.5f64).powi(b.plen as i32))
            .sum();
        if (total_coverage - 1.0).abs() > 1e-12 {
            return Err(format!("buckets cover {total_coverage} of the space"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(id: u64) -> Contact {
        Contact {
            id: NodeId(id),
            peer: (id & 0xFFFF) as u32,
        }
    }

    #[test]
    fn insert_refresh_and_lru_order() {
        let mut t = RoutingTable::new(NodeId(0), 3);
        assert_eq!(t.insert(c(1)), Insert::Added);
        assert_eq!(t.insert(c(2)), Insert::Added);
        assert_eq!(t.insert(c(1)), Insert::Refreshed);
        assert_eq!(t.len(), 2);
        assert_eq!(t.insert(c(0)), Insert::Ignored, "own id is never stored");
        t.check_invariants().unwrap();
    }

    #[test]
    fn full_far_bucket_surfaces_lru_without_splitting() {
        // Own ID has top bit 0; contacts with top bit 1 all land in the
        // far half, which must not split.
        let mut t = RoutingTable::new(NodeId(0), 2);
        let far = 1u64 << 63;
        assert_eq!(t.insert(c(far | 1)), Insert::Added);
        assert_eq!(t.insert(c(far | 2)), Insert::Added);
        match t.insert(c(far | 3)) {
            Insert::Full { lru } => assert_eq!(lru, c(far | 1), "LRU is the oldest"),
            other => panic!("expected Full, got {other:?}"),
        }
        // Liveness ping says the LRU is alive: touch it; newcomer dropped.
        assert!(t.touch(NodeId(far | 1)));
        match t.insert(c(far | 3)) {
            Insert::Full { lru } => assert_eq!(lru, c(far | 2), "LRU rotated after touch"),
            other => panic!("expected Full, got {other:?}"),
        }
        // Ping failed: evict and admit.
        let evicted = t.replace_lru(c(far | 3));
        assert_eq!(evicted, Some(c(far | 2)));
        assert!(t.contains(NodeId(far | 3)));
        t.check_invariants().unwrap();
    }

    #[test]
    fn near_bucket_splits_instead_of_refusing() {
        let mut t = RoutingTable::new(NodeId(0), 2);
        // All contacts near own ID: bucket covering own ID keeps splitting.
        for id in 1..=8u64 {
            assert_ne!(
                t.insert(c(id)),
                Insert::Ignored,
                "near inserts must be accepted or split"
            );
        }
        assert!(t.n_buckets() > 1, "table must have split");
        assert!(t.len() >= 4);
        t.check_invariants().unwrap();
    }

    #[test]
    fn closest_returns_sorted_by_distance() {
        let mut t = RoutingTable::new(NodeId(0), 8);
        for id in [5u64, 9, 3, 200, 17] {
            t.insert(c(id));
        }
        let near = t.closest(NodeId(4), 3);
        let dists: Vec<u64> = near.iter().map(|x| x.id.distance(NodeId(4))).collect();
        let mut sorted = dists.clone();
        sorted.sort_unstable();
        assert_eq!(dists, sorted);
        assert_eq!(near[0].id, NodeId(5), "5 ^ 4 = 1 is the closest");
    }

    #[test]
    fn remove_repairs_poisoned_entries() {
        let mut t = RoutingTable::new(NodeId(0), 4);
        t.insert(c(42));
        assert!(t.contains(NodeId(42)));
        assert!(t.remove(NodeId(42)));
        assert!(!t.contains(NodeId(42)));
        assert!(!t.remove(NodeId(42)));
        t.check_invariants().unwrap();
    }
}
