//! Overlay wire messages, their size model, and the event type.

use crate::advert::Advertisement;
use crate::overlay::PeerId;
use crate::pipe::PipeId;
use crate::sym::Sym;

/// Discovery query identifier (unique per origin query).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueryId(pub u64);

/// Identifier of one iterative routed lookup (`DiscoveryMode::Routed`).
/// A query or publish may spawn several lookups (one per derived key).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LookupId(pub u64);

/// What a discovery query is looking for.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryKind {
    /// Peers offering a named service.
    ByService(Sym),
    /// A pipe advertised under a unique connection name (§3.4 binding).
    ByPipeName(Sym),
    /// A code module by name and minimum version (§3.3 on-demand download).
    ByModule { name: Sym, min_version: u32 },
    /// Peers meeting capability thresholds ("CPU capability and available
    /// free memory", §3.7).
    ByCapability { min_cpu_ghz: f64, min_ram_mib: u32 },
    /// Providers of a content-addressed blob (swarm module distribution).
    ByBlob { hash: u64 },
}

impl QueryKind {
    fn wire_size(&self) -> u64 {
        match self {
            QueryKind::ByService(s) => 16 + s.len() as u64,
            QueryKind::ByPipeName(s) => 16 + s.len() as u64,
            QueryKind::ByModule { name, .. } => 24 + name.len() as u64,
            QueryKind::ByCapability { .. } => 32,
            QueryKind::ByBlob { .. } => 24,
        }
    }
}

/// A message travelling between peers.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Flooded (or rendezvous-routed) discovery query.
    Query {
        id: QueryId,
        origin: PeerId,
        prev_hop: PeerId,
        ttl: u8,
        kind: QueryKind,
    },
    /// Direct response to the query origin.
    QueryHit { id: QueryId, advert: Advertisement },
    /// Publish an advertisement to a rendezvous peer.
    Publish { advert: Advertisement },
    /// Application payload over a pipe. The payload itself stays in the
    /// embedding layer; only its size and an opaque tag travel here.
    PipeData { pipe: PipeId, tag: u64, bytes: u64 },
    /// One replicated-scheduler delta, gossiped leader → follower. Like
    /// pipe data, the delta contents stay in the embedding layer (applied
    /// out of the shared log at delivery); only the sequence number and a
    /// size estimate travel here.
    OrchDelta { seq: u64, bytes: u64 },
    /// Anti-entropy catch-up batch: log entries `[from_seq, from_seq +
    /// count)` pushed to a lagging replica in one transfer.
    OrchSync {
        from_seq: u64,
        count: u64,
        bytes: u64,
    },
    /// Routed discovery: ask a node for its contacts closest to `key`
    /// (Kademlia `FIND_NODE`). `from` is the lookup executor the reply
    /// goes back to.
    FindNode {
        lid: LookupId,
        from: PeerId,
        key: u64,
    },
    /// Reply to [`Message::FindNode`]: the responder's closest known
    /// `(node-id, peer)` contacts, plus `from` so the executor can learn
    /// the responder itself.
    FindNodeReply {
        lid: LookupId,
        from: PeerId,
        closer: Vec<(u64, PeerId)>,
    },
    /// Routed discovery: `FIND_NODE` that additionally returns any
    /// provider records under `key` matching `kind` (Kademlia
    /// `FIND_VALUE`).
    FindValue {
        lid: LookupId,
        from: PeerId,
        key: u64,
        kind: QueryKind,
    },
    /// Reply to [`Message::FindValue`]: closer contacts and/or matching
    /// provider records.
    FindValueReply {
        lid: LookupId,
        from: PeerId,
        closer: Vec<(u64, PeerId)>,
        providers: Vec<Advertisement>,
    },
    /// Store a provider record on one of the k nodes closest to `key`.
    StoreProvider {
        from: PeerId,
        key: u64,
        advert: Advertisement,
    },
}

impl Message {
    /// Approximate size on the wire, driving the link model.
    pub fn wire_size(&self) -> u64 {
        match self {
            Message::Query { kind, .. } => 48 + kind.wire_size(),
            Message::QueryHit { advert, .. } => 32 + advert.wire_size(),
            Message::Publish { advert } => 24 + advert.wire_size(),
            Message::PipeData { bytes, .. } => 40 + bytes,
            Message::OrchDelta { bytes, .. } => 24 + bytes,
            Message::OrchSync { bytes, .. } => 32 + bytes,
            Message::FindNode { .. } => 48,
            Message::FindNodeReply { closer, .. } => 24 + 12 * closer.len() as u64,
            Message::FindValue { kind, .. } => 48 + kind.wire_size(),
            Message::FindValueReply {
                closer, providers, ..
            } => {
                24 + 12 * closer.len() as u64 + providers.iter().map(|a| a.wire_size()).sum::<u64>()
            }
            Message::StoreProvider { advert, .. } => 32 + advert.wire_size(),
        }
    }
}

/// The overlay's event type; embed it in a larger enum via `From`.
#[derive(Clone, Debug, PartialEq)]
pub enum P2pEvent {
    /// A message finished arriving at `to`.
    Delivered { to: PeerId, msg: Message },
    /// Local timer on a lookup executor: if the routed request sent to the
    /// contact with claimed node-id `node` is still unanswered, fail it
    /// and advance the lookup. Not a network message — never counted in
    /// the sent/received/lost conservation identity.
    LookupTimeout {
        executor: PeerId,
        lid: LookupId,
        node: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advert::{AdvertBody, PeerAdvert};
    use netsim::SimTime;

    #[test]
    fn pipe_data_size_is_dominated_by_payload() {
        let m = Message::PipeData {
            pipe: PipeId(1),
            tag: 9,
            bytes: 1_000_000,
        };
        assert_eq!(m.wire_size(), 1_000_040);
    }

    #[test]
    fn query_size_reflects_kind() {
        let small = Message::Query {
            id: QueryId(1),
            origin: PeerId(0),
            prev_hop: PeerId(0),
            ttl: 7,
            kind: QueryKind::ByService("x".into()),
        };
        let large = Message::Query {
            id: QueryId(1),
            origin: PeerId(0),
            prev_hop: PeerId(0),
            ttl: 7,
            kind: QueryKind::ByService("a-much-longer-service-name".into()),
        };
        assert!(large.wire_size() > small.wire_size());
    }

    #[test]
    fn gossip_sizes_are_header_plus_payload() {
        assert_eq!(Message::OrchDelta { seq: 7, bytes: 24 }.wire_size(), 48);
        let sync = Message::OrchSync {
            from_seq: 3,
            count: 5,
            bytes: 120,
        };
        assert_eq!(sync.wire_size(), 152);
    }

    #[test]
    fn hit_carries_advert_size() {
        let advert = Advertisement {
            body: AdvertBody::Peer(PeerAdvert {
                peer: PeerId(3),
                cpu_ghz: 1.0,
                free_ram_mib: 64,
                services: vec!["triana".into()],
            }),
            expires: SimTime(10),
        };
        let m = Message::QueryHit {
            id: QueryId(4),
            advert: advert.clone(),
        };
        assert_eq!(m.wire_size(), 32 + advert.wire_size());
    }
}
