//! Advertisements: the self-describing records peers publish and discover.
//!
//! The paper relies "on Triana peers to be discovered based on very simple
//! attributes – such as CPU capability and available free memory"; module
//! adverts additionally carry (name, version, hash) so on-demand code
//! download always fetches a consistent executable (§3.3).

use crate::message::QueryKind;
use crate::overlay::PeerId;
use crate::pipe::PipeId;
use crate::sym::Sym;
use netsim::SimTime;

/// A peer offering computational service.
#[derive(Clone, Debug, PartialEq)]
pub struct PeerAdvert {
    pub peer: PeerId,
    pub cpu_ghz: f64,
    pub free_ram_mib: u32,
    /// Service names offered, e.g. `"triana"`, `"data-access"` (interned:
    /// ten thousand peers advertising `"triana"` share one allocation).
    pub services: Vec<Sym>,
}

/// A named pipe endpoint (an input node advertised for binding, §3.4).
#[derive(Clone, Debug, PartialEq)]
pub struct PipeAdvert {
    pub pipe: PipeId,
    /// The connection's unique name ("for each input connection, the remote
    /// service advertises an input pipe with that connection's unique name").
    pub name: Sym,
    pub peer: PeerId,
}

/// A code module available for on-demand download from its owner.
#[derive(Clone, Debug, PartialEq)]
pub struct ModuleAdvert {
    pub name: Sym,
    pub version: u32,
    pub hash: u64,
    pub size_bytes: u64,
    pub owner: PeerId,
}

/// A peer holding a complete, content-addressed blob (a cached module's
/// bytes) and willing to serve its chunks to other peers — the provider
/// record behind peer-assisted swarm distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct BlobAdvert {
    /// Content hash of the blob (`tvm::ModuleBlob::hash`).
    pub blob: u64,
    pub size_bytes: u64,
    /// Chunk count under the provider's layout.
    pub chunks: u32,
    pub provider: PeerId,
}

/// Any advertisement, with its expiry instant.
#[derive(Clone, Debug, PartialEq)]
pub struct Advertisement {
    pub body: AdvertBody,
    pub expires: SimTime,
}

#[derive(Clone, Debug, PartialEq)]
pub enum AdvertBody {
    Peer(PeerAdvert),
    Pipe(PipeAdvert),
    Module(ModuleAdvert),
    Blob(BlobAdvert),
}

impl Advertisement {
    pub fn peer(&self) -> PeerId {
        match &self.body {
            AdvertBody::Peer(a) => a.peer,
            AdvertBody::Pipe(a) => a.peer,
            AdvertBody::Module(a) => a.owner,
            AdvertBody::Blob(a) => a.provider,
        }
    }

    pub fn is_expired(&self, now: SimTime) -> bool {
        now >= self.expires
    }

    /// Does this advertisement satisfy a discovery query?
    pub fn matches(&self, kind: &QueryKind, now: SimTime) -> bool {
        if self.is_expired(now) {
            return false;
        }
        match (&self.body, kind) {
            (AdvertBody::Peer(a), QueryKind::ByService(s)) => a.services.iter().any(|x| x == s),
            (
                AdvertBody::Peer(a),
                QueryKind::ByCapability {
                    min_cpu_ghz,
                    min_ram_mib,
                },
            ) => a.cpu_ghz >= *min_cpu_ghz && a.free_ram_mib >= *min_ram_mib,
            (AdvertBody::Pipe(a), QueryKind::ByPipeName(n)) => &a.name == n,
            (AdvertBody::Module(a), QueryKind::ByModule { name, min_version }) => {
                &a.name == name && a.version >= *min_version
            }
            (AdvertBody::Blob(a), QueryKind::ByBlob { hash }) => a.blob == *hash,
            _ => false,
        }
    }

    /// Approximate wire size in bytes (for the network model).
    pub fn wire_size(&self) -> u64 {
        match &self.body {
            AdvertBody::Peer(a) => 64 + a.services.iter().map(|s| s.len() as u64 + 4).sum::<u64>(),
            AdvertBody::Pipe(a) => 48 + a.name.len() as u64,
            AdvertBody::Module(a) => 64 + a.name.len() as u64,
            AdvertBody::Blob(_) => 56,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peer_ad(expires: SimTime) -> Advertisement {
        Advertisement {
            body: AdvertBody::Peer(PeerAdvert {
                peer: PeerId(1),
                cpu_ghz: 2.0,
                free_ram_mib: 512,
                services: vec!["triana".into(), "data-access".into()],
            }),
            expires,
        }
    }

    #[test]
    fn service_match_requires_exact_name() {
        let ad = peer_ad(SimTime(100));
        let now = SimTime(10);
        assert!(ad.matches(&QueryKind::ByService("triana".into()), now));
        assert!(!ad.matches(&QueryKind::ByService("trian".into()), now));
    }

    #[test]
    fn capability_match_is_threshold() {
        let ad = peer_ad(SimTime(100));
        let now = SimTime(10);
        let ok = QueryKind::ByCapability {
            min_cpu_ghz: 1.5,
            min_ram_mib: 256,
        };
        let too_fast = QueryKind::ByCapability {
            min_cpu_ghz: 2.5,
            min_ram_mib: 256,
        };
        let too_big = QueryKind::ByCapability {
            min_cpu_ghz: 1.0,
            min_ram_mib: 1024,
        };
        assert!(ad.matches(&ok, now));
        assert!(!ad.matches(&too_fast, now));
        assert!(!ad.matches(&too_big, now));
    }

    #[test]
    fn expired_ads_never_match() {
        let ad = peer_ad(SimTime(100));
        assert!(!ad.matches(&QueryKind::ByService("triana".into()), SimTime(100)));
        assert!(ad.is_expired(SimTime(100)));
        assert!(!ad.is_expired(SimTime(99)));
    }

    #[test]
    fn module_match_accepts_newer_versions() {
        let ad = Advertisement {
            body: AdvertBody::Module(ModuleAdvert {
                name: "FFT".into(),
                version: 3,
                hash: 0xAB,
                size_bytes: 1000,
                owner: PeerId(2),
            }),
            expires: SimTime(100),
        };
        let now = SimTime(0);
        let want = |v| QueryKind::ByModule {
            name: "FFT".into(),
            min_version: v,
        };
        assert!(ad.matches(&want(3), now));
        assert!(ad.matches(&want(1), now));
        assert!(!ad.matches(&want(4), now));
    }

    #[test]
    fn kinds_do_not_cross_match() {
        let ad = peer_ad(SimTime(100));
        assert!(!ad.matches(&QueryKind::ByPipeName("triana".into()), SimTime(0)));
        assert!(!ad.matches(
            &QueryKind::ByModule {
                name: "triana".into(),
                min_version: 0
            },
            SimTime(0)
        ));
    }

    #[test]
    fn wire_size_grows_with_content() {
        let small = peer_ad(SimTime(1));
        let mut big = peer_ad(SimTime(1));
        if let AdvertBody::Peer(p) = &mut big.body {
            p.services.push("a-very-long-service-name".into());
        }
        assert!(big.wire_size() > small.wire_size());
    }
}
