//! `p2p` — a JXTA-like peer-to-peer substrate over the simulated network.
//!
//! Triana's Consumer Grid implementation (paper §3.4) rides on JXTA: peers
//! and their services are described by **advertisements**, located via
//! **discovery**, and connected with virtual **pipes**. JXTA itself is long
//! gone; this crate reimplements the three facilities Triana used, over
//! `netsim`'s consumer-link network:
//!
//! * [`advert`] — peer / pipe / module advertisements with expiry,
//! * [`overlay`] — the peer table, neighbour graph, and the two discovery
//!   modes the paper discusses: Gnutella-style **flooding** (whose
//!   scalability problems §3.7 and ref \[7\] call out) and JXTA-style
//!   **rendezvous** super-peers,
//! * [`pipe`] — named unidirectional pipes ("its input and output nodes are
//!   advertised as JXTAServe input and output pipes"),
//! * [`message`] — the wire messages and their size model.
//!
//! Everything is event-driven through `netsim::Sim`; the embedding layer
//! owns the event enum and forwards [`P2pEvent`]s to [`overlay::P2p::handle`].

pub mod advert;
pub mod groups;
pub mod message;
pub mod overlay;
pub mod pipe;
pub mod routed;
pub mod sym;
pub mod wire;

pub use advert::{AdvertBody, Advertisement, BlobAdvert, ModuleAdvert, PeerAdvert, PipeAdvert};
pub use groups::{CapabilityPredicate, PeerGroup};
pub use message::{LookupId, Message, P2pEvent, QueryId, QueryKind};
pub use overlay::{DiscoveryMode, Incoming, P2p, PeerId, QueryStatus, SEEN_CACHE_CAP};
pub use pipe::PipeId;
pub use routed::{RoutedConfig, RoutedNode};
pub use sym::Sym;
pub use wire::WireError;
