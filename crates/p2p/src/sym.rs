//! Interned strings for the overlay's repeated names.
//!
//! A consumer-grid world repeats a handful of names millions of times:
//! every peer advertises `"triana"`, every module query carries `"FFT"`,
//! every decoded message re-materialises the same service strings. Storing
//! them as `String` made every advert clone and every wire decode allocate.
//! A [`Sym`] is an `Arc<str>` deduplicated through a thread-local intern
//! table: constructing one from text the table has seen before is a hash
//! lookup plus a reference-count bump — no allocation — and cloning is
//! always just the bump.
//!
//! `Sym` derefs to `str` and compares against `str`/`String`/`&str`, so
//! call sites read exactly like the `String` code they replace. Equality
//! between two `Sym`s compares contents, not pointers: two worlds (or two
//! threads) may intern the same text into different allocations, and the
//! overlay only ever relies on value equality.
//!
//! The table is thread-local and unbounded; a simulation's name universe
//! is tiny (dozens of distinct strings), and keeping it per-thread means
//! no locks and no cross-run nondeterminism.

use std::cell::RefCell;
use std::collections::HashSet;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

thread_local! {
    static INTERN: RefCell<HashSet<Arc<str>>> = RefCell::new(HashSet::new());
}

/// An interned, cheaply-cloneable, immutable string.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(Arc<str>);

impl Sym {
    /// Intern `s`: returns the canonical shared allocation for this text,
    /// creating it only the first time the text is seen on this thread.
    pub fn new(s: &str) -> Sym {
        INTERN.with(|t| {
            let mut t = t.borrow_mut();
            if let Some(hit) = t.get(s) {
                return Sym(Arc::clone(hit));
            }
            let arc: Arc<str> = Arc::from(s);
            t.insert(Arc::clone(&arc));
            Sym(arc)
        })
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Deref for Sym {
    type Target = str;
    fn deref(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Sym {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl std::borrow::Borrow<str> for Sym {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<&String> for Sym {
    fn from(s: &String) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::new(&s)
    }
}

impl PartialEq<str> for Sym {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Sym {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Sym {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Sym> for str {
    fn eq(&self, other: &Sym) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Sym> for &str {
    fn eq(&self, other: &Sym) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Sym> for String {
    fn eq(&self, other: &Sym) -> bool {
        self.as_str() == other.as_str()
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self.as_str(), f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups_within_a_thread() {
        let a = Sym::new("triana");
        let b = Sym::new("triana");
        assert!(Arc::ptr_eq(&a.0, &b.0), "same text shares one allocation");
        let c = Sym::new("other");
        assert!(!Arc::ptr_eq(&a.0, &c.0));
    }

    #[test]
    fn equality_is_by_contents() {
        let a = Sym::new("data-access");
        assert_eq!(a, "data-access");
        assert_eq!("data-access", a);
        assert_eq!(a, String::from("data-access"));
        assert_ne!(a.as_str(), "data");
        let b: Sym = String::from("data-access").into();
        assert_eq!(a, b);
    }

    #[test]
    fn deref_gives_str_methods() {
        let s = Sym::new("FFT");
        assert_eq!(s.len(), 3);
        assert!(s.starts_with('F'));
        assert_eq!(format!("{s}"), "FFT");
        assert_eq!(format!("{s:?}"), "\"FFT\"");
    }

    #[test]
    fn ordering_matches_str_ordering() {
        let mut v = [Sym::new("b"), Sym::new("a"), Sym::new("c")];
        v.sort();
        let strs: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
        assert_eq!(strs, ["a", "b", "c"]);
    }
}
