//! `DiscoveryMode::Routed` — Kademlia-routed discovery over the
//! `triana-overlay` structures, with a super-peer tier.
//!
//! The flooding mode the paper leans on "severely restricts the
//! scalability" of discovery (§3.7); this module replaces it with a
//! structured overlay while keeping the advert/query surface identical,
//! so every experiment runs unchanged on either mode:
//!
//! * Every peer derives a 64-bit node ID from its peer index; adverts
//!   derive provider-record **keys** from what they offer (service name,
//!   pipe name, module name, blob hash, plus a well-known capability
//!   index key for `ByCapability` scans).
//! * **Publish** stores a provider record on the k DHT nodes closest to
//!   each derived key, found by an iterative `FIND_NODE` walk.
//! * **Query** runs an iterative `FIND_VALUE` toward the key and
//!   terminates as soon as a node returns matching provider records —
//!   O(log n) hops instead of an O(n)-message flood.
//! * The **super-peer tier** (see `overlay::super_peer`) classifies peers
//!   hot/warm/cold from their trust profiles. Hot and warm peers are DHT
//!   nodes; cold peers hold no routing state and delegate every publish
//!   and query to their assigned hot rendezvous in one hop.
//!
//! Liveness pings are modelled synchronously: when a bucket is full the
//! table owner "pings" the least-recently-seen contact by consulting the
//! network's online state (metered as `p2p.overlay_pings`, no wire
//! message — the real protocol's ping RTT is negligible next to lookup
//! traffic). Request timeouts are local [`P2pEvent::LookupTimeout`]
//! timers: they fire unconditionally, so every lookup terminates even if
//! all its targets die; they are never metered in the
//! sent/received/lost conservation identity.

use crate::advert::{AdvertBody, Advertisement};
use crate::message::{LookupId, Message, P2pEvent, QueryId, QueryKind};
use crate::overlay::{DiscoveryMode, P2p, PeerId};
use ::overlay as kad;
use kad::{Contact, Insert, NodeId, Role};
use netsim::{Duration, Network, Pcg32, Sim, SimTime};

/// Tuning for routed mode. Read at bootstrap and per lookup.
#[derive(Clone, Copy, Debug)]
pub struct RoutedConfig {
    /// Bucket size, lookup result width, and store replication factor.
    pub k: usize,
    /// Lookup parallelism (α).
    pub alpha: usize,
    /// Per-request timeout before a queried contact is marked failed.
    pub request_timeout: Duration,
    /// Provider records a DHT node keeps per key.
    pub store_cap_per_key: usize,
    /// Bootstrap: ring neighbours (each side, in node-ID order) seeded
    /// into every table — guarantees the ID space is connected.
    pub bootstrap_adjacency: usize,
    /// Bootstrap: random extra contacts per table — gives lookups their
    /// long-range shortcuts.
    pub bootstrap_sample: usize,
    /// Super-peer classification thresholds.
    pub tier: kad::TierConfig,
}

impl Default for RoutedConfig {
    fn default() -> Self {
        RoutedConfig {
            k: 8,
            alpha: 3,
            request_timeout: Duration::from_secs(3),
            store_cap_per_key: 64,
            bootstrap_adjacency: 8,
            bootstrap_sample: 32,
            tier: kad::TierConfig::default(),
        }
    }
}

/// Per-peer structured-overlay state (absent until bootstrap).
pub struct RoutedNode {
    pub id: NodeId,
    pub role: Role,
    /// K-bucket routing table (empty and unused for cold peers).
    pub table: kad::RoutingTable,
    /// Provider records this node holds for keys it is close to.
    pub store: kad::ProviderStore<Advertisement>,
}

/// Why a lookup is running; decides what happens when it resolves.
pub(crate) enum Purpose {
    /// A discovery query: hits stream back to `origin` as they surface.
    Query {
        id: QueryId,
        origin: PeerId,
        kind: QueryKind,
    },
    /// A publish: on completion, store the advert on the k closest nodes.
    Publish { advert: Advertisement },
}

/// One in-progress iterative lookup, owned by `executor`.
pub(crate) struct ActiveLookup {
    pub(crate) lookup: kad::Lookup,
    pub(crate) executor: PeerId,
    pub(crate) key: u64,
    pub(crate) purpose: Purpose,
}

impl ActiveLookup {
    /// The query this lookup's wire traffic is attributed to, if any.
    pub(crate) fn query_id(&self) -> Option<QueryId> {
        match &self.purpose {
            Purpose::Query { id, .. } => Some(*id),
            Purpose::Publish { .. } => None,
        }
    }
}

/// The DHT key a query kind routes toward.
pub(crate) fn key_for_kind(kind: &QueryKind) -> u64 {
    match kind {
        QueryKind::ByService(s) => NodeId::from_name("svc", s).0,
        QueryKind::ByPipeName(s) => NodeId::from_name("pipe", s).0,
        QueryKind::ByModule { name, .. } => NodeId::from_name("mod", name).0,
        QueryKind::ByBlob { hash } => NodeId::from_u64("blob", *hash).0,
        // Capability scans have no content key; all peer adverts are also
        // indexed under one well-known key so the scan is a single lookup.
        QueryKind::ByCapability { .. } => NodeId::from_name("cap", "index").0,
    }
}

/// Every DHT key an advert is stored under.
pub(crate) fn keys_for_advert(ad: &Advertisement) -> Vec<u64> {
    match &ad.body {
        AdvertBody::Peer(p) => {
            let mut keys: Vec<u64> = p
                .services
                .iter()
                .map(|s| NodeId::from_name("svc", s).0)
                .collect();
            keys.push(NodeId::from_name("cap", "index").0);
            keys
        }
        AdvertBody::Pipe(p) => vec![NodeId::from_name("pipe", &p.name).0],
        AdvertBody::Module(m) => vec![NodeId::from_name("mod", &m.name).0],
        AdvertBody::Blob(b) => vec![NodeId::from_u64("blob", b.blob).0],
    }
}

impl P2p {
    fn node_key(p: PeerId) -> NodeId {
        NodeId::from_peer_index(p.0)
    }

    /// Number of iterative lookups currently in flight (chaos invariant:
    /// zero once the event queue drains).
    pub fn active_lookups(&self) -> usize {
        self.lookups.len()
    }

    /// The super-peer role assigned to `p` (None before bootstrap).
    pub fn routed_role(&self, p: PeerId) -> Option<Role> {
        self.peers[p.0 as usize].routed.as_ref().map(|r| r.role)
    }

    /// Provider records held by `p`'s DHT store (0 before bootstrap).
    pub fn routed_store_len(&self, p: PeerId) -> usize {
        self.peers[p.0 as usize]
            .routed
            .as_ref()
            .map_or(0, |r| r.store.len())
    }

    /// Bootstrap the structured overlay over the current peer set.
    ///
    /// `profiles` gives each peer's `(availability, speed)` trust profile;
    /// roles come from [`kad::assign_roles`] (which guarantees a ⌈√n⌉ hot
    /// minimum). Non-cold peers get a routing table seeded with their
    /// `bootstrap_adjacency` ring neighbours in node-ID order plus
    /// `bootstrap_sample` random contacts; cold peers are assigned their
    /// nearest (by XOR) hot rendezvous. Existing provider stores survive a
    /// re-bootstrap (tables and roles are rebuilt).
    pub fn enable_routed(&mut self, profiles: &[(f64, f64)], rng: &mut Pcg32) {
        let n = self.peers.len();
        assert_eq!(profiles.len(), n, "one profile per peer");
        if n == 0 {
            self.routed_peers = 0;
            return;
        }
        let mut roles = kad::assign_roles(profiles, &self.routed_cfg.tier);
        if !roles.contains(&Role::Hot) {
            // Degenerate world where everyone classifies cold: promotion
            // never promotes cold peers, but a functioning overlay needs a
            // hot tier — fall back to neutral profiles.
            let neutral = vec![(0.7, 1.0); n];
            roles = kad::assign_roles(&neutral, &self.routed_cfg.tier);
        }
        let ids: Vec<NodeId> = (0..n as u32).map(NodeId::from_peer_index).collect();
        // DHT members (non-cold), sorted by node ID: the bootstrap ring.
        let mut members: Vec<usize> = (0..n).filter(|&i| roles[i] != Role::Cold).collect();
        members.sort_unstable_by_key(|&i| ids[i].0);
        let hot: Vec<usize> = (0..n).filter(|&i| roles[i] == Role::Hot).collect();
        let m = members.len();
        for (pos, &i) in members.iter().enumerate() {
            let mut table = kad::RoutingTable::new(ids[i], self.routed_cfg.k);
            for d in 1..=self.routed_cfg.bootstrap_adjacency.min(m / 2) {
                for j in [members[(pos + d) % m], members[(pos + m - d) % m]] {
                    if j != i {
                        let _ = table.insert(Contact {
                            id: ids[j],
                            peer: j as u32,
                        });
                    }
                }
            }
            for _ in 0..self.routed_cfg.bootstrap_sample {
                let j = members[rng.below(m as u64) as usize];
                if j != i {
                    let _ = table.insert(Contact {
                        id: ids[j],
                        peer: j as u32,
                    });
                }
            }
            let store = match self.peers[i].routed.take() {
                Some(old) => old.store,
                None => kad::ProviderStore::new(self.routed_cfg.store_cap_per_key),
            };
            self.peers[i].routed = Some(RoutedNode {
                id: ids[i],
                role: roles[i],
                table,
                store,
            });
        }
        self.rendezvous_peers = hot.iter().map(|&i| PeerId(i as u32)).collect();
        for i in 0..n {
            self.peers[i].is_rendezvous = roles[i] == Role::Hot;
            if roles[i] == Role::Cold {
                let near = hot
                    .iter()
                    .copied()
                    .min_by_key(|&h| ids[h].distance(ids[i]))
                    .expect("hot tier is non-empty");
                self.peers[i].rendezvous = Some(PeerId(near as u32));
                // Cold peers hold no routing state; role recorded for the
                // delegation decision, table left empty.
                self.peers[i].routed = Some(RoutedNode {
                    id: ids[i],
                    role: Role::Cold,
                    table: kad::RoutingTable::new(ids[i], self.routed_cfg.k),
                    store: kad::ProviderStore::new(1),
                });
            } else {
                self.peers[i].rendezvous = None;
            }
        }
        self.routed_peers = n;
        self.obs.incr("p2p.routed_bootstraps");
    }

    /// Lazy bootstrap: scenarios that construct a routed world without an
    /// explicit `enable_routed` call (or that add peers afterwards) get a
    /// deterministic neutral-profile bootstrap on first publish/query.
    pub(crate) fn ensure_routed<E: From<P2pEvent>>(&mut self, sim: &mut Sim<E>) {
        if self.mode != DiscoveryMode::Routed || self.routed_peers == self.peers.len() {
            return;
        }
        let profiles = vec![(0.7, 1.0); self.peers.len()];
        let mut rng = sim.stream(0x0D17_B007);
        self.enable_routed(&profiles, &mut rng);
    }

    /// Learn a live contact: the sender of any routed message we just
    /// processed. Full buckets ping their LRU contact (synchronous
    /// online-state check) and only evict it if it is down.
    fn routed_learn(&mut self, net: &Network, at: PeerId, sender: PeerId) {
        if at == sender {
            return;
        }
        let lru_host = |p: &Self, peer: u32| p.peers[peer as usize].host;
        let Some(node) = self.peers[at.0 as usize].routed.as_ref() else {
            return;
        };
        if node.role == Role::Cold {
            return;
        }
        let c = Contact {
            id: Self::node_key(sender),
            peer: sender.0,
        };
        let full = {
            let node = self.peers[at.0 as usize].routed.as_mut().unwrap();
            match node.table.insert(c) {
                Insert::Full { lru } => Some(lru),
                _ => None,
            }
        };
        if let Some(lru) = full {
            self.obs.incr("p2p.overlay_pings");
            let alive = net.is_online(lru_host(self, lru.peer));
            let node = self.peers[at.0 as usize].routed.as_mut().unwrap();
            if alive {
                node.table.touch(lru.id);
            } else {
                node.table.replace_lru(c);
            }
        }
    }

    /// Routed publish entry point (local ad already recorded by `publish`).
    pub(crate) fn routed_publish<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        peer: PeerId,
        advert: Advertisement,
    ) {
        match self.routed_role(peer) {
            Some(Role::Cold) => {
                // One hop to the rendezvous, which runs the store lookups.
                if let Some(r) = self.peers[peer.0 as usize].rendezvous {
                    self.obs.incr("p2p.cold_delegated_publishes");
                    self.send(sim, net, peer, r, Message::Publish { advert });
                }
            }
            Some(_) => self.routed_publish_lookups(sim, net, peer, advert),
            None => {}
        }
    }

    /// Start one FIND_NODE lookup per derived key; records are stored on
    /// the k closest responders when each lookup resolves.
    pub(crate) fn routed_publish_lookups<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        executor: PeerId,
        advert: Advertisement,
    ) {
        for key in keys_for_advert(&advert) {
            self.spawn_lookup(
                sim,
                net,
                executor,
                key,
                Purpose::Publish {
                    advert: advert.clone(),
                },
            );
        }
    }

    /// Routed query entry point.
    pub(crate) fn routed_query<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        origin: PeerId,
        id: QueryId,
        kind: QueryKind,
    ) {
        match self.routed_role(origin) {
            Some(Role::Cold) => {
                if let Some(r) = self.peers[origin.0 as usize].rendezvous {
                    self.obs.incr("p2p.cold_delegated_queries");
                    let msg = Message::Query {
                        id,
                        origin,
                        prev_hop: origin,
                        ttl: 1,
                        kind,
                    };
                    self.send(sim, net, origin, r, msg);
                }
            }
            Some(_) => self.routed_start_query(sim, net, origin, id, origin, &kind),
            None => {}
        }
    }

    /// Run the iterative FIND_VALUE for a query at `executor` (the origin
    /// itself, or a hot rendezvous acting for a cold origin).
    pub(crate) fn routed_start_query<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        executor: PeerId,
        id: QueryId,
        origin: PeerId,
        kind: &QueryKind,
    ) {
        let key = key_for_kind(kind);
        let now = sim.now();
        // FIND_VALUE semantics: a local store hit resolves the query
        // without touching the network.
        let local: Vec<Advertisement> = match self.peers[executor.0 as usize].routed.as_mut() {
            Some(node) => node
                .store
                .get(key, now)
                .iter()
                .filter(|r| r.record.matches(kind, now))
                .map(|r| r.record.clone())
                .collect(),
            None => Vec::new(),
        };
        if !local.is_empty() {
            self.obs.incr("p2p.lookup_local_hits");
            for advert in local {
                self.deliver_hit(sim, net, executor, origin, id, advert);
            }
            return;
        }
        self.spawn_lookup(
            sim,
            net,
            executor,
            key,
            Purpose::Query {
                id,
                origin,
                kind: kind.clone(),
            },
        );
    }

    /// A provider record surfaced for a query: record it at the origin, or
    /// ship it there if the executor is acting on the origin's behalf.
    fn deliver_hit<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        executor: PeerId,
        origin: PeerId,
        id: QueryId,
        advert: Advertisement,
    ) {
        if executor == origin {
            let now = sim.now();
            if let Some(q) = self.queries.get_mut(&id) {
                q.hits.push((now, advert));
            }
            self.obs.incr("p2p.query_hits");
        } else {
            self.send(sim, net, executor, origin, Message::QueryHit { id, advert });
        }
    }

    fn spawn_lookup<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        executor: PeerId,
        key: u64,
        purpose: Purpose,
    ) {
        let seeds = match self.peers[executor.0 as usize].routed.as_ref() {
            Some(node) => node.table.closest(NodeId(key), self.routed_cfg.k),
            None => return,
        };
        let cfg = kad::LookupConfig {
            k: self.routed_cfg.k,
            alpha: self.routed_cfg.alpha,
        };
        let lid = LookupId(self.next_lookup);
        self.next_lookup += 1;
        self.obs.incr("p2p.lookups_started");
        self.lookups.insert(
            lid,
            ActiveLookup {
                lookup: kad::Lookup::new(NodeId(key), cfg, seeds),
                executor,
                key,
                purpose,
            },
        );
        self.advance_lookup(sim, net, lid);
    }

    /// Issue the next batch of requests for a lookup; failed sends fail
    /// their entries immediately (freeing α budget for the next round),
    /// successful ones arm a per-request timeout. Finishes the lookup if
    /// it is done.
    fn advance_lookup<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        lid: LookupId,
    ) {
        loop {
            let (batch, executor, key, kind) = match self.lookups.get_mut(&lid) {
                None => return,
                Some(al) => {
                    let b = al.lookup.next_batch();
                    if b.is_empty() {
                        break;
                    }
                    let kind = match &al.purpose {
                        Purpose::Query { kind, .. } => Some(kind.clone()),
                        Purpose::Publish { .. } => None,
                    };
                    (b, al.executor, al.key, kind)
                }
            };
            let mut failed: Vec<NodeId> = Vec::new();
            for c in batch {
                let msg = match &kind {
                    Some(kind) => Message::FindValue {
                        lid,
                        from: executor,
                        key,
                        kind: kind.clone(),
                    },
                    None => Message::FindNode {
                        lid,
                        from: executor,
                        key,
                    },
                };
                if self.send(sim, net, executor, PeerId(c.peer), msg) {
                    sim.schedule(
                        self.routed_cfg.request_timeout,
                        P2pEvent::LookupTimeout {
                            executor,
                            lid,
                            node: c.id.0,
                        }
                        .into(),
                    );
                } else {
                    failed.push(c.id);
                }
            }
            if failed.is_empty() {
                break;
            }
            if let Some(al) = self.lookups.get_mut(&lid) {
                for id in failed {
                    al.lookup.on_fail(id);
                }
            }
        }
        if self.lookups.get(&lid).is_some_and(|al| al.lookup.is_done()) {
            self.finish_lookup(sim, net, lid);
        }
    }

    /// Serve a FIND_NODE / FIND_VALUE request at `to`.
    #[allow(clippy::too_many_arguments)] // wire dispatch: all fields are live request state
    pub(crate) fn routed_serve_find<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        to: PeerId,
        lid: LookupId,
        from: PeerId,
        key: u64,
        kind: Option<QueryKind>,
    ) {
        self.routed_learn(net, to, from);
        let now = sim.now();
        // A cold (or unbootstrapped) peer holds no routing state: it still
        // answers — with nothing — so a misdirected lookup step fails fast
        // instead of eating a timeout.
        // Reply payloads come from the recycled pools: the reply handler
        // drains them and returns the capacity, so a steady stream of
        // lookup steps serves without allocating.
        let mut closer = self.take_contact_buf();
        let mut providers = self.take_advert_buf();
        let mut scratch = std::mem::take(&mut self.closest_scratch);
        if let Some(node) = self.peers[to.0 as usize].routed.as_mut() {
            if node.role != Role::Cold {
                node.table
                    .closest_into(NodeId(key), self.routed_cfg.k, &mut scratch);
                closer.extend(
                    scratch
                        .iter()
                        .filter(|c| c.peer != from.0)
                        .map(|c| (c.id.0, PeerId(c.peer))),
                );
                if let Some(kind) = &kind {
                    providers.extend(
                        node.store
                            .get(key, now)
                            .iter()
                            .filter(|r| r.record.matches(kind, now))
                            .map(|r| r.record.clone()),
                    );
                }
            }
        }
        self.closest_scratch = scratch;
        if !providers.is_empty() {
            self.obs
                .add("p2p.provider_record_hits", providers.len() as u64);
        }
        let reply = match kind {
            Some(_) => Message::FindValueReply {
                lid,
                from: to,
                closer,
                providers,
            },
            None => {
                self.recycle_advert_buf(providers);
                Message::FindNodeReply {
                    lid,
                    from: to,
                    closer,
                }
            }
        };
        self.send(sim, net, to, from, reply);
    }

    /// Process a FIND_NODE / FIND_VALUE reply arriving at executor `to`.
    #[allow(clippy::too_many_arguments)] // wire dispatch: all fields are live reply state
    pub(crate) fn routed_on_reply<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        to: PeerId,
        lid: LookupId,
        from: PeerId,
        mut closer: Vec<(u64, PeerId)>,
        mut providers: Vec<Advertisement>,
        out: &mut Vec<crate::overlay::Incoming>,
    ) {
        // Learning the responder under its *real* ID is what heals a
        // poisoned routing table: a fabricated contact that answers gets
        // re-filed correctly, one that never answers gets evicted by the
        // ping-or-evict path.
        self.routed_learn(net, to, from);
        let stale = match self.lookups.get(&lid) {
            None => true, // late reply: lookup already resolved or was reset
            Some(al) => al.executor != to,
        };
        if stale {
            self.recycle_contact_buf(closer);
            self.recycle_advert_buf(providers);
            return;
        }
        {
            let al = self.lookups.get_mut(&lid).unwrap();
            al.lookup.on_reply(
                Self::node_key(from),
                closer.drain(..).map(|(id, p)| Contact {
                    id: NodeId(id),
                    peer: p.0,
                }),
            );
        }
        self.recycle_contact_buf(closer);
        let now = sim.now();
        if !providers.is_empty() {
            let al = self.lookups.get(&lid).unwrap();
            if let Purpose::Query { id, origin, kind } = &al.purpose {
                let (id, origin, kind) = (*id, *origin, kind.clone());
                let hops = al.lookup.hops() as u64;
                let mut live = self.take_advert_buf();
                live.extend(providers.drain(..).filter(|ad| ad.matches(&kind, now)));
                if !live.is_empty() {
                    // FIND_VALUE early termination: first matching records
                    // resolve the query; in-flight requests are left to
                    // their (no-op) timeouts.
                    for advert in live.drain(..) {
                        if to == origin {
                            if let Some(q) = self.queries.get_mut(&id) {
                                q.hits.push((now, advert.clone()));
                            }
                            self.obs.incr("p2p.query_hits");
                            out.push(crate::overlay::Incoming::QueryHit { id, advert });
                        } else {
                            self.send(sim, net, to, origin, Message::QueryHit { id, advert });
                        }
                    }
                    if let Some(q) = self.queries.get_mut(&id) {
                        q.hops = q.hops.max(hops);
                    }
                    self.obs.incr("p2p.lookups_converged");
                    self.obs.add("p2p.lookup_hops", hops);
                    self.recycle_advert_buf(live);
                    self.recycle_advert_buf(providers);
                    self.lookups.remove(&lid);
                    return;
                }
                self.recycle_advert_buf(live);
            }
        }
        self.recycle_advert_buf(providers);
        self.advance_lookup(sim, net, lid);
    }

    /// A per-request timeout fired at `executor` for the contact with
    /// claimed node-id `node`.
    pub(crate) fn routed_on_timeout<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        executor: PeerId,
        lid: LookupId,
        node: u64,
    ) {
        if !self.lookups.contains_key(&lid) {
            return;
        }
        if !net.is_online(self.peers[executor.0 as usize].host) {
            // The executor itself died mid-lookup: abandon. Remaining
            // timers find the map empty and no-op.
            self.lookups.remove(&lid);
            self.obs.incr("p2p.lookups_abandoned");
            return;
        }
        let timed_out = {
            let al = self.lookups.get_mut(&lid).unwrap();
            al.lookup.on_fail(NodeId(node))
        };
        if timed_out {
            self.obs.incr("p2p.lookup_timeouts");
        }
        self.advance_lookup(sim, net, lid);
    }

    /// A lookup ran to completion (no early value termination).
    fn finish_lookup<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        lid: LookupId,
    ) {
        let Some(al) = self.lookups.remove(&lid) else {
            return;
        };
        let hops = al.lookup.hops() as u64;
        self.obs.incr("p2p.lookups_converged");
        self.obs.add("p2p.lookup_hops", hops);
        match al.purpose {
            Purpose::Query { id, .. } => {
                if let Some(q) = self.queries.get_mut(&id) {
                    q.hops = q.hops.max(hops);
                }
            }
            Purpose::Publish { advert } => {
                let targets = al.lookup.closest_responded();
                // The executor itself may be one of the k closest.
                let own = Self::node_key(al.executor);
                let own_d = own.distance(NodeId(al.key));
                let in_k = targets.len() < self.routed_cfg.k
                    || targets
                        .iter()
                        .any(|c| own_d < c.id.distance(NodeId(al.key)));
                if in_k {
                    self.routed_store(
                        net,
                        sim.now(),
                        al.executor,
                        al.executor,
                        al.key,
                        advert.clone(),
                    );
                }
                for c in targets {
                    if c.peer != al.executor.0 {
                        self.send(
                            sim,
                            net,
                            al.executor,
                            PeerId(c.peer),
                            Message::StoreProvider {
                                from: al.executor,
                                key: al.key,
                                advert: advert.clone(),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Store a provider record at `to` (a STORE arriving over the wire, or
    /// the executor's own local store step).
    pub(crate) fn routed_store(
        &mut self,
        net: &Network,
        _now: SimTime,
        to: PeerId,
        from: PeerId,
        key: u64,
        advert: Advertisement,
    ) {
        self.routed_learn(net, to, from);
        let expires = advert.expires;
        let provider = advert.peer().0;
        if let Some(node) = self.peers[to.0 as usize].routed.as_mut() {
            if node.role != Role::Cold {
                node.store.insert(
                    key,
                    kad::StoredRecord {
                        provider,
                        expires,
                        record: advert,
                    },
                );
                self.obs.incr("p2p.provider_records_stored");
            }
        }
    }

    /// Chaos hook (`rtbl`): corrupt roughly half of a DHT node's routing
    /// table by replacing entries with fabricated (node-id, peer)
    /// mappings. Returns how many contacts were poisoned. The overlay
    /// self-heals: fabricated contacts that answer are re-learned under
    /// their real IDs; ones that do not are evicted on failure.
    pub fn poison_routing_table(&mut self, peer: PeerId, rng: &mut Pcg32) -> u64 {
        let n = self.peers.len() as u64;
        let Some(node) = self.peers[peer.0 as usize].routed.as_mut() else {
            return 0;
        };
        if node.role == Role::Cold {
            return 0;
        }
        let contacts: Vec<Contact> = node.table.contacts().collect();
        let mut poisoned = 0;
        for c in contacts {
            if rng.below(2) == 0 {
                node.table.remove(c.id);
                let _ = node.table.insert(Contact {
                    id: NodeId(rng.next_u64()),
                    peer: rng.below(n) as u32,
                });
                poisoned += 1;
            }
        }
        self.obs.add("p2p.routing_poisoned", poisoned);
        poisoned
    }

    /// Re-publish every live local advert (the republish half of the
    /// store/expire pair — owners call this before their records' TTLs
    /// lapse, and after churn re-homes records).
    pub fn routed_republish<E: From<P2pEvent>>(
        &mut self,
        sim: &mut Sim<E>,
        net: &mut Network,
        peer: PeerId,
    ) {
        let now = sim.now();
        let live: Vec<Advertisement> = self.peers[peer.0 as usize]
            .ads
            .iter()
            .filter(|ad| !ad.is_expired(now))
            .cloned()
            .collect();
        for advert in live {
            self.obs.incr("p2p.republishes");
            self.routed_publish(sim, net, peer, advert);
        }
    }
}
