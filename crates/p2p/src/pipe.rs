//! Virtual pipes: named unidirectional channels between peers.
//!
//! §3.4: "for each input connection, the remote service advertises an input
//! pipe with that connection's unique name. Since the local service knows
//! the connection's unique name it locates the pipe with that name and binds
//! to it." A [`PipeTable`] tracks advertised endpoints and bound senders;
//! actual transfer timing is handled by the overlay via the network model.

use crate::overlay::PeerId;
use std::collections::HashMap;
use std::fmt;

/// Identifier of an advertised pipe endpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PipeId(pub u64);

impl fmt::Display for PipeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipe{}", self.0)
    }
}

/// One advertised input pipe.
#[derive(Clone, Debug, PartialEq)]
pub struct PipeEndpoint {
    pub id: PipeId,
    pub name: String,
    /// The receiving peer (which advertised the endpoint).
    pub receiver: PeerId,
    /// The peer currently bound as sender, if any.
    pub sender: Option<PeerId>,
}

/// Registry of pipes known to the local overlay instance.
#[derive(Debug, Default)]
pub struct PipeTable {
    pipes: HashMap<PipeId, PipeEndpoint>,
    by_name: HashMap<String, PipeId>,
    next_id: u64,
}

/// Pipe operation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PipeError {
    DuplicateName(String),
    UnknownPipe(PipeId),
    AlreadyBound(PipeId),
    NotBound(PipeId),
    WrongSender { pipe: PipeId, expected: PeerId },
}

impl fmt::Display for PipeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipeError::DuplicateName(n) => write!(f, "pipe name `{n}` already advertised"),
            PipeError::UnknownPipe(p) => write!(f, "unknown {p}"),
            PipeError::AlreadyBound(p) => write!(f, "{p} already bound"),
            PipeError::NotBound(p) => write!(f, "{p} has no bound sender"),
            PipeError::WrongSender { pipe, expected } => {
                write!(f, "{pipe} is bound to peer {}", expected.0)
            }
        }
    }
}

impl std::error::Error for PipeError {}

impl PipeTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advertise an input pipe under a unique connection name.
    pub fn advertise(&mut self, name: &str, receiver: PeerId) -> Result<PipeId, PipeError> {
        if self.by_name.contains_key(name) {
            return Err(PipeError::DuplicateName(name.to_string()));
        }
        let id = PipeId(self.next_id);
        self.next_id += 1;
        self.pipes.insert(
            id,
            PipeEndpoint {
                id,
                name: name.to_string(),
                receiver,
                sender: None,
            },
        );
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Look a pipe up by its unique connection name.
    pub fn lookup(&self, name: &str) -> Option<&PipeEndpoint> {
        self.by_name.get(name).and_then(|id| self.pipes.get(id))
    }

    pub fn get(&self, id: PipeId) -> Option<&PipeEndpoint> {
        self.pipes.get(&id)
    }

    /// Bind `sender` to the pipe (one sender per pipe).
    pub fn bind(&mut self, id: PipeId, sender: PeerId) -> Result<(), PipeError> {
        let p = self.pipes.get_mut(&id).ok_or(PipeError::UnknownPipe(id))?;
        if p.sender.is_some() {
            return Err(PipeError::AlreadyBound(id));
        }
        p.sender = Some(sender);
        Ok(())
    }

    /// Validate that `from` may send on `id` and return the receiver.
    pub fn route(&self, id: PipeId, from: PeerId) -> Result<PeerId, PipeError> {
        let p = self.pipes.get(&id).ok_or(PipeError::UnknownPipe(id))?;
        match p.sender {
            None => Err(PipeError::NotBound(id)),
            Some(s) if s == from => Ok(p.receiver),
            Some(s) => Err(PipeError::WrongSender {
                pipe: id,
                expected: s,
            }),
        }
    }

    /// Re-point an advertised pipe at a new receiving peer — service
    /// failover: the successor re-advertises the endpoint under the same
    /// connection name, and bound senders keep sending unchanged.
    pub fn rebind_receiver(&mut self, id: PipeId, receiver: PeerId) -> Result<(), PipeError> {
        let p = self.pipes.get_mut(&id).ok_or(PipeError::UnknownPipe(id))?;
        p.receiver = receiver;
        Ok(())
    }

    /// Replace a pipe's bound sender (failover of the sending service).
    pub fn rebind_sender(&mut self, id: PipeId, sender: PeerId) -> Result<(), PipeError> {
        let p = self.pipes.get_mut(&id).ok_or(PipeError::UnknownPipe(id))?;
        p.sender = Some(sender);
        Ok(())
    }

    /// Remove a pipe (e.g. when its owner leaves).
    pub fn remove(&mut self, id: PipeId) -> Option<PipeEndpoint> {
        let p = self.pipes.remove(&id)?;
        self.by_name.remove(&p.name);
        Some(p)
    }

    pub fn len(&self) -> usize {
        self.pipes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pipes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advertise_lookup_bind_route() {
        let mut t = PipeTable::new();
        let id = t.advertise("job42.group0.node0", PeerId(7)).unwrap();
        assert_eq!(t.lookup("job42.group0.node0").unwrap().id, id);
        t.bind(id, PeerId(3)).unwrap();
        assert_eq!(t.route(id, PeerId(3)), Ok(PeerId(7)));
    }

    #[test]
    fn names_are_unique() {
        let mut t = PipeTable::new();
        t.advertise("n", PeerId(1)).unwrap();
        assert_eq!(
            t.advertise("n", PeerId(2)),
            Err(PipeError::DuplicateName("n".into()))
        );
    }

    #[test]
    fn single_sender_enforced() {
        let mut t = PipeTable::new();
        let id = t.advertise("n", PeerId(1)).unwrap();
        t.bind(id, PeerId(2)).unwrap();
        assert_eq!(t.bind(id, PeerId(3)), Err(PipeError::AlreadyBound(id)));
        assert_eq!(
            t.route(id, PeerId(3)),
            Err(PipeError::WrongSender {
                pipe: id,
                expected: PeerId(2)
            })
        );
    }

    #[test]
    fn unbound_pipe_rejects_send() {
        let mut t = PipeTable::new();
        let id = t.advertise("n", PeerId(1)).unwrap();
        assert_eq!(t.route(id, PeerId(2)), Err(PipeError::NotBound(id)));
    }

    #[test]
    fn remove_frees_the_name() {
        let mut t = PipeTable::new();
        let id = t.advertise("n", PeerId(1)).unwrap();
        assert_eq!(t.remove(id).unwrap().name, "n");
        assert!(t.lookup("n").is_none());
        assert!(t.is_empty());
        // the name can be re-advertised afterwards
        t.advertise("n", PeerId(2)).unwrap();
    }

    #[test]
    fn failover_rebinds_endpoints() {
        let mut t = PipeTable::new();
        let id = t.advertise("n", PeerId(1)).unwrap();
        t.bind(id, PeerId(2)).unwrap();
        t.rebind_receiver(id, PeerId(5)).unwrap();
        t.rebind_sender(id, PeerId(6)).unwrap();
        assert_eq!(t.route(id, PeerId(6)), Ok(PeerId(5)));
        assert_eq!(
            t.rebind_receiver(PipeId(99), PeerId(0)),
            Err(PipeError::UnknownPipe(PipeId(99)))
        );
    }

    #[test]
    fn unknown_pipe_errors() {
        let mut t = PipeTable::new();
        assert_eq!(
            t.bind(PipeId(99), PeerId(0)),
            Err(PipeError::UnknownPipe(PipeId(99)))
        );
        assert!(t.get(PipeId(99)).is_none());
    }
}
