//! Binary wire codec for overlay messages.
//!
//! The sim-only world never needed real bytes: `Message::wire_size` fed
//! the link model and the enum value itself travelled through the event
//! queue. A socket transport does need real bytes, so this module gives
//! every [`Message`] (and the [`Advertisement`]s they carry) a canonical
//! little-endian encoding with a strict decoder: truncated, corrupted or
//! trailing input is rejected with a typed [`WireError`], never a panic.
//!
//! Format conventions: fixed-width integers are little-endian; strings
//! and vectors are `u32` length-prefixed; enums are one `u8` tag followed
//! by the variant's fields; `f64` travels as its IEEE-754 bit pattern.

use crate::advert::{Advertisement, BlobAdvert, ModuleAdvert, PeerAdvert, PipeAdvert};
use crate::message::{LookupId, Message, QueryId, QueryKind};
use crate::overlay::PeerId;
use crate::pipe::PipeId;
use crate::sym::Sym;
use netsim::SimTime;
use std::cell::RefCell;
use std::fmt;

/// Decoder failure. Every malformed input maps to one of these; the
/// decoder never panics and never reads past the buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before a fixed-width field or declared length.
    Truncated { need: usize, have: usize },
    /// An enum tag byte is outside the known range.
    BadTag { what: &'static str, tag: u8 },
    /// A declared length exceeds the sanity bound (corrupt or hostile).
    LengthOverflow { what: &'static str, len: u64 },
    /// A length-prefixed string is not valid UTF-8.
    BadUtf8,
    /// Decoding finished with bytes left over.
    TrailingBytes { extra: usize },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { need, have } => {
                write!(f, "truncated: need {need} bytes, have {have}")
            }
            WireError::BadTag { what, tag } => write!(f, "bad {what} tag {tag}"),
            WireError::LengthOverflow { what, len } => {
                write!(f, "{what} length {len} exceeds sanity bound")
            }
            WireError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            WireError::TrailingBytes { extra } => write!(f, "{extra} trailing byte(s)"),
        }
    }
}

impl std::error::Error for WireError {}

/// Upper bound on any single length prefix (strings, vectors, chunk
/// payloads). Generous for real traffic, small enough that a corrupt
/// length cannot drive a huge allocation.
pub const MAX_LEN: u64 = 16 << 20;

/// Little-endian byte writer over a growable buffer.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer::default()
    }

    /// A writer that appends to an existing buffer (pooled encode paths;
    /// the buffer is *not* cleared, so framing layers can prefix bytes).
    pub fn over(buf: Vec<u8>) -> Self {
        Writer { buf }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Bounds-checked little-endian byte reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u32` length prefix, validated against [`MAX_LEN`] *and* the
    /// bytes actually remaining, so corrupt lengths fail fast instead of
    /// allocating.
    pub fn length(&mut self, what: &'static str) -> Result<usize, WireError> {
        let len = self.u32()? as u64;
        if len > MAX_LEN {
            return Err(WireError::LengthOverflow { what, len });
        }
        if len as usize > self.remaining() {
            return Err(WireError::Truncated {
                need: len as usize,
                have: self.remaining(),
            });
        }
        Ok(len as usize)
    }

    pub fn bytes(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let len = self.length(what)?;
        Ok(self.take(len)?.to_vec())
    }

    pub fn str(&mut self, what: &'static str) -> Result<String, WireError> {
        String::from_utf8(self.bytes(what)?).map_err(|_| WireError::BadUtf8)
    }

    /// A length-prefixed string, interned. Text the intern table already
    /// holds decodes without allocating — which is the common case, since
    /// wire traffic repeats the same few service/module names endlessly.
    pub fn sym(&mut self, what: &'static str) -> Result<Sym, WireError> {
        let len = self.length(what)?;
        let raw = self.take(len)?;
        let text = std::str::from_utf8(raw).map_err(|_| WireError::BadUtf8)?;
        Ok(Sym::new(text))
    }

    /// Decoding must consume the whole buffer; anything left is an error.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

// ---- QueryKind ----

const QK_SERVICE: u8 = 0;
const QK_PIPE: u8 = 1;
const QK_MODULE: u8 = 2;
const QK_CAPABILITY: u8 = 3;
const QK_BLOB: u8 = 4;

pub fn encode_query_kind(w: &mut Writer, k: &QueryKind) {
    match k {
        QueryKind::ByService(s) => {
            w.u8(QK_SERVICE);
            w.str(s);
        }
        QueryKind::ByPipeName(s) => {
            w.u8(QK_PIPE);
            w.str(s);
        }
        QueryKind::ByModule { name, min_version } => {
            w.u8(QK_MODULE);
            w.str(name);
            w.u32(*min_version);
        }
        QueryKind::ByCapability {
            min_cpu_ghz,
            min_ram_mib,
        } => {
            w.u8(QK_CAPABILITY);
            w.f64(*min_cpu_ghz);
            w.u32(*min_ram_mib);
        }
        QueryKind::ByBlob { hash } => {
            w.u8(QK_BLOB);
            w.u64(*hash);
        }
    }
}

pub fn decode_query_kind(r: &mut Reader) -> Result<QueryKind, WireError> {
    Ok(match r.u8()? {
        QK_SERVICE => QueryKind::ByService(r.sym("service name")?),
        QK_PIPE => QueryKind::ByPipeName(r.sym("pipe name")?),
        QK_MODULE => QueryKind::ByModule {
            name: r.sym("module name")?,
            min_version: r.u32()?,
        },
        QK_CAPABILITY => QueryKind::ByCapability {
            min_cpu_ghz: r.f64()?,
            min_ram_mib: r.u32()?,
        },
        QK_BLOB => QueryKind::ByBlob { hash: r.u64()? },
        tag => {
            return Err(WireError::BadTag {
                what: "query kind",
                tag,
            })
        }
    })
}

// ---- Advertisement ----

const AD_PEER: u8 = 0;
const AD_PIPE: u8 = 1;
const AD_MODULE: u8 = 2;
const AD_BLOB: u8 = 3;

pub fn encode_advert(w: &mut Writer, ad: &Advertisement) {
    w.u64(ad.expires.0);
    match &ad.body {
        crate::advert::AdvertBody::Peer(a) => {
            w.u8(AD_PEER);
            w.u32(a.peer.0);
            w.f64(a.cpu_ghz);
            w.u32(a.free_ram_mib);
            w.u32(a.services.len() as u32);
            for s in &a.services {
                w.str(s);
            }
        }
        crate::advert::AdvertBody::Pipe(a) => {
            w.u8(AD_PIPE);
            w.u64(a.pipe.0);
            w.str(&a.name);
            w.u32(a.peer.0);
        }
        crate::advert::AdvertBody::Module(a) => {
            w.u8(AD_MODULE);
            w.str(&a.name);
            w.u32(a.version);
            w.u64(a.hash);
            w.u64(a.size_bytes);
            w.u32(a.owner.0);
        }
        crate::advert::AdvertBody::Blob(a) => {
            w.u8(AD_BLOB);
            w.u64(a.blob);
            w.u64(a.size_bytes);
            w.u32(a.chunks);
            w.u32(a.provider.0);
        }
    }
}

pub fn decode_advert(r: &mut Reader) -> Result<Advertisement, WireError> {
    let expires = SimTime(r.u64()?);
    let body = match r.u8()? {
        AD_PEER => {
            let peer = PeerId(r.u32()?);
            let cpu_ghz = r.f64()?;
            let free_ram_mib = r.u32()?;
            let n = r.u32()? as u64;
            if n > MAX_LEN {
                return Err(WireError::LengthOverflow {
                    what: "service list",
                    len: n,
                });
            }
            let mut services = Vec::new();
            for _ in 0..n {
                services.push(r.sym("service name")?);
            }
            crate::advert::AdvertBody::Peer(PeerAdvert {
                peer,
                cpu_ghz,
                free_ram_mib,
                services,
            })
        }
        AD_PIPE => crate::advert::AdvertBody::Pipe(PipeAdvert {
            pipe: PipeId(r.u64()?),
            name: r.sym("pipe name")?,
            peer: PeerId(r.u32()?),
        }),
        AD_MODULE => crate::advert::AdvertBody::Module(ModuleAdvert {
            name: r.sym("module name")?,
            version: r.u32()?,
            hash: r.u64()?,
            size_bytes: r.u64()?,
            owner: PeerId(r.u32()?),
        }),
        AD_BLOB => crate::advert::AdvertBody::Blob(BlobAdvert {
            blob: r.u64()?,
            size_bytes: r.u64()?,
            chunks: r.u32()?,
            provider: PeerId(r.u32()?),
        }),
        tag => {
            return Err(WireError::BadTag {
                what: "advert body",
                tag,
            })
        }
    };
    Ok(Advertisement { body, expires })
}

// ---- Message ----

const MSG_QUERY: u8 = 0;
const MSG_QUERY_HIT: u8 = 1;
const MSG_PUBLISH: u8 = 2;
const MSG_PIPE_DATA: u8 = 3;
const MSG_ORCH_DELTA: u8 = 4;
const MSG_ORCH_SYNC: u8 = 5;
const MSG_FIND_NODE: u8 = 6;
const MSG_FIND_NODE_REPLY: u8 = 7;
const MSG_FIND_VALUE: u8 = 8;
const MSG_FIND_VALUE_REPLY: u8 = 9;
const MSG_STORE_PROVIDER: u8 = 10;

fn encode_closer(w: &mut Writer, closer: &[(u64, PeerId)]) {
    w.u32(closer.len() as u32);
    for (id, peer) in closer {
        w.u64(*id);
        w.u32(peer.0);
    }
}

fn decode_closer(r: &mut Reader) -> Result<Vec<(u64, PeerId)>, WireError> {
    let n = r.u32()? as u64;
    if n > MAX_LEN {
        return Err(WireError::LengthOverflow {
            what: "contact list",
            len: n,
        });
    }
    let mut closer = Vec::new();
    for _ in 0..n {
        let id = r.u64()?;
        let peer = PeerId(r.u32()?);
        closer.push((id, peer));
    }
    Ok(closer)
}

impl Message {
    /// Canonical byte encoding of this message.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode_body(&mut w);
        w.into_bytes()
    }

    /// Encode into a caller-owned buffer, appending; with a pooled or
    /// recycled buffer this is the zero-allocation encode path.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let mut w = Writer::over(std::mem::take(out));
        self.encode_body(&mut w);
        *out = w.into_bytes();
    }

    fn encode_body(&self, w: &mut Writer) {
        match self {
            Message::Query {
                id,
                origin,
                prev_hop,
                ttl,
                kind,
            } => {
                w.u8(MSG_QUERY);
                w.u64(id.0);
                w.u32(origin.0);
                w.u32(prev_hop.0);
                w.u8(*ttl);
                encode_query_kind(w, kind);
            }
            Message::QueryHit { id, advert } => {
                w.u8(MSG_QUERY_HIT);
                w.u64(id.0);
                encode_advert(w, advert);
            }
            Message::Publish { advert } => {
                w.u8(MSG_PUBLISH);
                encode_advert(w, advert);
            }
            Message::PipeData { pipe, tag, bytes } => {
                w.u8(MSG_PIPE_DATA);
                w.u64(pipe.0);
                w.u64(*tag);
                w.u64(*bytes);
            }
            Message::OrchDelta { seq, bytes } => {
                w.u8(MSG_ORCH_DELTA);
                w.u64(*seq);
                w.u64(*bytes);
            }
            Message::OrchSync {
                from_seq,
                count,
                bytes,
            } => {
                w.u8(MSG_ORCH_SYNC);
                w.u64(*from_seq);
                w.u64(*count);
                w.u64(*bytes);
            }
            Message::FindNode { lid, from, key } => {
                w.u8(MSG_FIND_NODE);
                w.u64(lid.0);
                w.u32(from.0);
                w.u64(*key);
            }
            Message::FindNodeReply { lid, from, closer } => {
                w.u8(MSG_FIND_NODE_REPLY);
                w.u64(lid.0);
                w.u32(from.0);
                encode_closer(w, closer);
            }
            Message::FindValue {
                lid,
                from,
                key,
                kind,
            } => {
                w.u8(MSG_FIND_VALUE);
                w.u64(lid.0);
                w.u32(from.0);
                w.u64(*key);
                encode_query_kind(w, kind);
            }
            Message::FindValueReply {
                lid,
                from,
                closer,
                providers,
            } => {
                w.u8(MSG_FIND_VALUE_REPLY);
                w.u64(lid.0);
                w.u32(from.0);
                encode_closer(w, closer);
                w.u32(providers.len() as u32);
                for ad in providers {
                    encode_advert(w, ad);
                }
            }
            Message::StoreProvider { from, key, advert } => {
                w.u8(MSG_STORE_PROVIDER);
                w.u32(from.0);
                w.u64(*key);
                encode_advert(w, advert);
            }
        }
    }

    /// Decode a message, consuming the entire buffer.
    pub fn decode(buf: &[u8]) -> Result<Message, WireError> {
        let mut r = Reader::new(buf);
        let msg = Self::decode_from(&mut r)?;
        r.finish()?;
        Ok(msg)
    }

    /// Decode a message from a reader (leaves trailing bytes untouched,
    /// for embedding inside larger frames).
    pub fn decode_from(r: &mut Reader) -> Result<Message, WireError> {
        Ok(match r.u8()? {
            MSG_QUERY => Message::Query {
                id: QueryId(r.u64()?),
                origin: PeerId(r.u32()?),
                prev_hop: PeerId(r.u32()?),
                ttl: r.u8()?,
                kind: decode_query_kind(r)?,
            },
            MSG_QUERY_HIT => Message::QueryHit {
                id: QueryId(r.u64()?),
                advert: decode_advert(r)?,
            },
            MSG_PUBLISH => Message::Publish {
                advert: decode_advert(r)?,
            },
            MSG_PIPE_DATA => Message::PipeData {
                pipe: PipeId(r.u64()?),
                tag: r.u64()?,
                bytes: r.u64()?,
            },
            MSG_ORCH_DELTA => Message::OrchDelta {
                seq: r.u64()?,
                bytes: r.u64()?,
            },
            MSG_ORCH_SYNC => Message::OrchSync {
                from_seq: r.u64()?,
                count: r.u64()?,
                bytes: r.u64()?,
            },
            MSG_FIND_NODE => Message::FindNode {
                lid: LookupId(r.u64()?),
                from: PeerId(r.u32()?),
                key: r.u64()?,
            },
            MSG_FIND_NODE_REPLY => Message::FindNodeReply {
                lid: LookupId(r.u64()?),
                from: PeerId(r.u32()?),
                closer: decode_closer(r)?,
            },
            MSG_FIND_VALUE => Message::FindValue {
                lid: LookupId(r.u64()?),
                from: PeerId(r.u32()?),
                key: r.u64()?,
                kind: decode_query_kind(r)?,
            },
            MSG_FIND_VALUE_REPLY => {
                let lid = LookupId(r.u64()?);
                let from = PeerId(r.u32()?);
                let closer = decode_closer(r)?;
                let n = r.u32()? as u64;
                if n > MAX_LEN {
                    return Err(WireError::LengthOverflow {
                        what: "provider list",
                        len: n,
                    });
                }
                let mut providers = Vec::new();
                for _ in 0..n {
                    providers.push(decode_advert(r)?);
                }
                Message::FindValueReply {
                    lid,
                    from,
                    closer,
                    providers,
                }
            }
            MSG_STORE_PROVIDER => Message::StoreProvider {
                from: PeerId(r.u32()?),
                key: r.u64()?,
                advert: decode_advert(r)?,
            },
            tag => {
                return Err(WireError::BadTag {
                    what: "message",
                    tag,
                })
            }
        })
    }
}

// ---- scratch-buffer pool ----

/// Running totals for the thread-local scratch-buffer pool.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufPoolStats {
    /// `with_buf` calls served by a recycled buffer.
    pub hits: u64,
    /// `with_buf` calls that had to create a buffer.
    pub misses: u64,
}

thread_local! {
    static BUF_POOL: RefCell<(Vec<Vec<u8>>, BufPoolStats)> =
        const { RefCell::new((Vec::new(), BufPoolStats { hits: 0, misses: 0 })) };
}

/// Run `f` with a cleared scratch buffer drawn from the thread-local pool,
/// returning the buffer to the pool afterwards. Encode-then-transmit call
/// sites that only need the bytes transiently (datagram sends, digests,
/// size probes) go through here so steady-state encoding never allocates:
/// after warm-up every call is a pool hit reusing retained capacity.
///
/// Calls may nest (an encode inside an encode draws a second buffer).
pub fn with_buf<R>(f: impl FnOnce(&mut Vec<u8>) -> R) -> R {
    let mut buf = BUF_POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.0.pop() {
            Some(b) => {
                p.1.hits += 1;
                b
            }
            None => {
                p.1.misses += 1;
                Vec::new()
            }
        }
    });
    buf.clear();
    let r = f(&mut buf);
    BUF_POOL.with(|p| p.borrow_mut().0.push(buf));
    r
}

/// Current pool counters for this thread.
pub fn buf_pool_stats() -> BufPoolStats {
    BUF_POOL.with(|p| p.borrow().1)
}

/// Reset the pool counters (the buffers themselves stay pooled), so a
/// deterministic run can snapshot exactly its own traffic.
pub fn buf_pool_stats_reset() {
    BUF_POOL.with(|p| p.borrow_mut().1 = BufPoolStats::default());
}

/// Drop every pooled buffer *and* reset the counters. Deterministic
/// harnesses call this at a run boundary so repeated runs on one thread
/// see an identical cold pool (same miss count), not whatever capacity a
/// previous run left behind.
pub fn buf_pool_reset() {
    BUF_POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.0.clear();
        p.1 = BufPoolStats::default();
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advert::AdvertBody;

    fn sample_adverts() -> Vec<Advertisement> {
        vec![
            Advertisement {
                body: AdvertBody::Peer(PeerAdvert {
                    peer: PeerId(7),
                    cpu_ghz: 2.4,
                    free_ram_mib: 512,
                    services: vec!["triana".into(), "data-access".into()],
                }),
                expires: SimTime(1_000),
            },
            Advertisement {
                body: AdvertBody::Pipe(PipeAdvert {
                    pipe: PipeId(9),
                    name: "gw-channel-3".into(),
                    peer: PeerId(2),
                }),
                expires: SimTime(2_000),
            },
            Advertisement {
                body: AdvertBody::Module(ModuleAdvert {
                    name: "FFT".into(),
                    version: 3,
                    hash: 0xDEAD_BEEF,
                    size_bytes: 4_096,
                    owner: PeerId(1),
                }),
                expires: SimTime(3_000),
            },
            Advertisement {
                body: AdvertBody::Blob(BlobAdvert {
                    blob: 0xABCD,
                    size_bytes: 10_000,
                    chunks: 3,
                    provider: PeerId(4),
                }),
                expires: SimTime(4_000),
            },
        ]
    }

    fn sample_messages() -> Vec<Message> {
        let ads = sample_adverts();
        vec![
            Message::Query {
                id: QueryId(1),
                origin: PeerId(2),
                prev_hop: PeerId(3),
                ttl: 7,
                kind: QueryKind::ByService("triana".into()),
            },
            Message::Query {
                id: QueryId(2),
                origin: PeerId(0),
                prev_hop: PeerId(0),
                ttl: 0,
                kind: QueryKind::ByCapability {
                    min_cpu_ghz: 1.5,
                    min_ram_mib: 256,
                },
            },
            Message::Query {
                id: QueryId(3),
                origin: PeerId(5),
                prev_hop: PeerId(5),
                ttl: 4,
                kind: QueryKind::ByModule {
                    name: "FFT".into(),
                    min_version: 2,
                },
            },
            Message::Query {
                id: QueryId(4),
                origin: PeerId(5),
                prev_hop: PeerId(6),
                ttl: 4,
                kind: QueryKind::ByBlob { hash: 42 },
            },
            Message::Query {
                id: QueryId(5),
                origin: PeerId(5),
                prev_hop: PeerId(6),
                ttl: 4,
                kind: QueryKind::ByPipeName("p".into()),
            },
            Message::QueryHit {
                id: QueryId(9),
                advert: ads[0].clone(),
            },
            Message::Publish {
                advert: ads[1].clone(),
            },
            Message::PipeData {
                pipe: PipeId(3),
                tag: 77,
                bytes: 1_000_000,
            },
            Message::OrchDelta { seq: 12, bytes: 48 },
            Message::OrchSync {
                from_seq: 3,
                count: 5,
                bytes: 120,
            },
            Message::FindNode {
                lid: LookupId(8),
                from: PeerId(1),
                key: 0xF00D,
            },
            Message::FindNodeReply {
                lid: LookupId(8),
                from: PeerId(2),
                closer: vec![(1, PeerId(10)), (2, PeerId(20))],
            },
            Message::FindValue {
                lid: LookupId(9),
                from: PeerId(1),
                key: 0xF00D,
                kind: QueryKind::ByBlob { hash: 0xF00D },
            },
            Message::FindValueReply {
                lid: LookupId(9),
                from: PeerId(2),
                closer: vec![(3, PeerId(30))],
                providers: vec![ads[2].clone(), ads[3].clone()],
            },
            Message::StoreProvider {
                from: PeerId(6),
                key: 0xBEE,
                advert: ads[3].clone(),
            },
        ]
    }

    #[test]
    fn every_message_round_trips() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            let back = Message::decode(&bytes).expect("decodes");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn every_truncation_is_rejected_without_panic() {
        for msg in sample_messages() {
            let bytes = msg.encode();
            for cut in 0..bytes.len() {
                let err = Message::decode(&bytes[..cut]);
                assert!(err.is_err(), "truncation at {cut} must fail: {msg:?}");
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_messages()[0].encode();
        bytes.push(0);
        assert_eq!(
            Message::decode(&bytes),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert_eq!(
            Message::decode(&[0xFF]),
            Err(WireError::BadTag {
                what: "message",
                tag: 0xFF
            })
        );
        // Corrupt the query-kind tag inside an otherwise valid message.
        let msg = Message::Query {
            id: QueryId(1),
            origin: PeerId(2),
            prev_hop: PeerId(3),
            ttl: 7,
            kind: QueryKind::ByBlob { hash: 42 },
        };
        let mut bytes = msg.encode();
        let kind_tag = 1 + 8 + 4 + 4 + 1; // msg tag + id + origin + prev_hop + ttl
        bytes[kind_tag] = 0xEE;
        assert_eq!(
            Message::decode(&bytes),
            Err(WireError::BadTag {
                what: "query kind",
                tag: 0xEE
            })
        );
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        // A Publish whose advert claims a 4 GiB service list.
        let mut w = Writer::new();
        w.u8(super::MSG_PUBLISH);
        w.u64(123); // expires
        w.u8(super::AD_PEER);
        w.u32(1); // peer
        w.f64(1.0);
        w.u32(64);
        w.u32(u32::MAX); // service count
        let err = Message::decode(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, WireError::LengthOverflow { .. }));
    }

    #[test]
    fn string_length_is_validated_against_remaining() {
        let mut w = Writer::new();
        w.u8(super::MSG_QUERY);
        w.u64(1);
        w.u32(2);
        w.u32(3);
        w.u8(7);
        w.u8(super::QK_SERVICE);
        w.u32(1_000); // claims 1000 bytes, provides none
        let err = Message::decode(&w.into_bytes()).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
    }
}
